// Ablation study over SELECT's design choices (DESIGN.md §6):
//   1. identifier reassignment on/off (projection only),
//   2. LSH bucket link selection vs random friend links,
//   3. CMA recovery vs always-replace under churn,
//   4. lookahead on/off for routing,
//   5. invitation projection vs uniform-hash join (via enable_invite_projection).
#include "bench/bench_common.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"
#include "sim/trial.hpp"

namespace {

struct Variant {
  const char* name;
  sel::core::SelectParams params;
  bool lookahead = true;
};

}  // namespace

int main() {
  using namespace sel;
  bench::print_banner(
      "ablation — SELECT design choices",
      "DESIGN.md §6: contribution of each mechanism",
      "full SELECT dominates each ablated variant on its target metric");

  const std::size_t n = scaled(800, 200);
  const std::size_t trials = trial_count(2);
  const auto& profile = graph::profile_by_name("facebook");

  std::vector<Variant> variants;
  variants.push_back({"full", core::SelectParams{}});
  {
    core::SelectParams p;
    p.enable_id_reassignment = false;
    variants.push_back({"no-id-reassign", p});
  }
  {
    core::SelectParams p;
    p.enable_lsh_selection = false;
    variants.push_back({"random-links", p});
  }
  {
    core::SelectParams p;
    p.enable_cma_recovery = false;
    variants.push_back({"no-cma", p});
  }
  {
    core::SelectParams p;
    p.enable_invite_projection = false;  // uniform-hash join for everyone
    variants.push_back({"no-invite-projection", p});
  }

  CsvWriter csv(bench::output_path("ablation.csv"),
                {"variant", "hops", "relays_per_path", "iterations",
                 "availability_under_churn"});
  TablePrinter table({"variant", "hops", "relays/path", "iterations",
                      "avail@churn"});

  for (const auto& variant : variants) {
    const auto summary = sim::run_trials(
        trials, 0xAB1A7E,
        [&](std::uint64_t seed) {
          const auto g = graph::make_dataset_graph(profile, n, seed);
          core::SelectSystem sys(g, variant.params, seed);
          sys.build();
          const overlay::PubSubSystem ps(sys);
          const auto hops = pubsub::measure_hops(ps, 250, seed);
          const auto publishers = bench::workload_publishers(g, 20, seed);
          const auto relays = pubsub::measure_relays(ps, publishers);

          // Churn phase: 30% of peers cycle off/on for several epochs.
          sim::SessionChurn::Params churn_params;
          churn_params.session_median_s = 1200.0;
          churn_params.offline_median_s = 900.0;
          sim::SessionChurn churn(n, churn_params, seed);
          RunningStats avail;
          for (int epoch = 1; epoch <= 5; ++epoch) {
            churn.advance_to(epoch * 900.0);
            for (overlay::PeerId p = 0; p < n; ++p) {
              sys.set_peer_online(p, churn.online(p));
            }
            sys.maintenance_round();
            avail.add(
                pubsub::measure_availability(ps, publishers).availability());
          }
          return sim::MetricMap{
              {"hops", hops.hops.mean()},
              {"relays", relays.relays_per_path.mean()},
              {"iters", static_cast<double>(sys.build_iterations())},
              {"avail", avail.mean()},
          };
        });
    table.add_row({variant.name, fmt(summary.mean("hops")),
                   fmt(summary.mean("relays"), 3),
                   fmt(summary.mean("iters"), 1),
                   fmt(100.0 * summary.mean("avail"), 2) + "%"});
    csv.row(std::vector<std::string>{
        variant.name, fmt(summary.mean("hops"), 4),
        fmt(summary.mean("relays"), 4), fmt(summary.mean("iters"), 2),
        fmt(summary.mean("avail"), 4)});
  }
  table.print();
  std::printf("\nwrote %s\n", csv.path().c_str());
  bench::write_run_report("ablation", csv.path());
  return 0;
}
