// Chaos soak: reliable dissemination under an injected fault plan.
//
// Drives the notification engine through epochs of session churn while a
// seeded FaultPlan drops, duplicates, delays, stalls and crashes transfers,
// then repeats the identical run with the recovery machinery (acks, retry,
// failover, store-and-forward replay) disabled. The gap between the two
// rows is what the reliability layer buys; the report carries the
// `pubsub.delivery_rate` gauge and the full fault.*/pubsub.* counter set so
// `scripts/compare_reports.py --fail-on pubsub.delivery_rate=...` can gate
// regressions (two same-seed runs are bit-identical).
//
// Knobs: SEL_FAULT overrides the default chaos mix (drop=0.05,dup=0.01,
// spike=0.02,stall=0.01,crash=0.001); SEL_RETRY* tune the recovery ladder
// for the reliable row. `--runtime=superstep|async` (or SEL_RUNTIME)
// selects the execution mode; the superstep run writes its own
// chaos_superstep.csv/report so cross-mode artifacts sit side by side.
//
// `--runtime=socket` (or SEL_TRANSPORT=socket) hosts the peers on
// SEL_SHARDS forked shard-server processes behind the wire codec; the
// driver pulls every child's MetricsSnapshot at the end and merges it into
// the single report, so pubsub.*/fault.*/mem.* totals match the inproc run
// for the same seed (receiver-side draws are pure functions of the shared
// plan parameters, not of which process hosts the peer).
//
// `--adversarial` (ISSUE 9) escalates to the durability tier: the fault mix
// gains byzantine mailbox acceptors and correlated crash bursts
// (byz=0.15,bursts=2,burst_width=16,burst_spacing_s=450 over the default
// mix), the replicated-mailbox tier is armed (CMA-aware placement, quorum
// writes, anti-entropy handoff), and one publisher is force-crashed
// mid-dissemination each burst epoch. The report is written as
// `chaos_adversarial` and carries the full mailbox.* family next to
// fault.*/pubsub.*, which CI's durability job gates on. SEL_MAILBOX=1 arms
// the mailbox in the plain soak too (to isolate its overhead).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "bench/bench_common.hpp"
#include "fault/fault.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/mailbox.hpp"
#include "pubsub/multipath.hpp"
#include "runtime/socket_transport.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

namespace {

constexpr const char* kDefaultMix =
    "drop=0.05,dup=0.01,spike=0.02,stall=0.01,crash=0.001";
constexpr const char* kAdversarialMix =
    "drop=0.05,dup=0.01,spike=0.02,stall=0.01,crash=0.001,"
    "byz=0.15,bursts=2,burst_width=16,burst_spacing_s=450";

bool parse_adversarial_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adversarial") == 0) return true;
  }
  return false;
}

struct SoakRow {
  sel::pubsub::EngineStats stats;
  std::size_t replayed_on_return = 0;  ///< natural-return replays mid-soak
  std::size_t pending_replays = 0;     ///< queue depth at soak end
  sel::fault::FaultPlan::Stats faults;
  sel::pubsub::MailboxStats mailbox;   ///< zero when the tier is unarmed
};

SoakRow run_soak(const sel::graph::SocialGraph& g,
                 sel::core::SelectSystem& sys, sel::net::NetworkModel& net,
                 const sel::fault::FaultSpec& spec, std::uint64_t seed,
                 bool reliable, bool use_mailbox, bool adversarial,
                 const sel::runtime::Options& runtime_opts,
                 const sel::runtime::SpawnedShards* shards) {
  using namespace sel;
  for (overlay::PeerId p = 0; p < g.num_nodes(); ++p) {
    sys.set_peer_online(p, true);
  }
  fault::FaultPlan plan(spec, seed, g.num_nodes());
  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);
  engine.set_runtime_options(runtime_opts);
  engine.set_fault_plan(&plan);
  // Durability tier: replicate every store-and-forward miss to k mailbox
  // peers, placed by the recovery layer's CMA (paper Sec. III-F).
  std::optional<pubsub::MailboxManager> mailbox;
  if (reliable && use_mailbox) {
    mailbox.emplace(engine.event_engine(), sys, net,
                    pubsub::MailboxPolicy::from_env(), seed);
    mailbox->set_fault_plan(&plan);
    mailbox->set_availability_fn(
        [&sys](overlay::PeerId p) { return sys.cma_of(p); });
    engine.set_mailbox(&*mailbox);
  }
  // Socket backend: hop arrivals to remote-shard peers do their
  // receiver-side draw in the child process over the wire. Both soak rows
  // reuse the same shard servers, so each row starts by resetting the
  // shards' plan state (stall windows, crash set, draw sequence) to match
  // the fresh driver-side plan above — without it, row 2's draws diverge
  // from an in-process run.
  std::optional<runtime::SocketTransport> socket_transport;
  if (shards != nullptr) {
    shards->reset_plans();
    socket_transport.emplace(engine.event_engine(), net, *shards,
                             runtime_opts, &plan);
    engine.set_transport(&*socket_transport);
  }
  pubsub::RetryPolicy policy = pubsub::RetryPolicy::from_env();
  policy.enabled = reliable;
  policy.ack_timeout_s = std::min(policy.ack_timeout_s, 2.0);
  engine.set_retry_policy(policy);
  if (reliable) {
    engine.set_multipath_planner([&](overlay::PeerId b) {
      return pubsub::plan_multipath(sys, g, b);
    });
    engine.set_availability_observer([&](overlay::PeerId p, bool up) {
      sys.observe_availability(p, up);
    });
  }

  sim::SessionChurn::Params churn_params;
  churn_params.session_median_s = 3600.0;
  churn_params.offline_median_s = 600.0;
  sim::SessionChurn churn(g.num_nodes(), churn_params, derive_seed(seed, 1));

  const auto publishers =
      bench::workload_publishers(g, 8, derive_seed(seed, 2));
  constexpr double kEpochS = 300.0;
  const std::size_t epochs = std::max<std::size_t>(4, trial_count());
  SoakRow row;
  std::size_t next_pub = 0;
  std::size_t next_burst = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const double t0 = static_cast<double>(epoch) * kEpochS;
    // Correlated crash bursts: whole failure domains die together on the
    // plan's precomputed schedule, and the engine drops their local replay
    // queues (the mailbox replicas, when armed, survive the burst).
    while (adversarial && next_burst < plan.bursts().size() &&
           plan.bursts()[next_burst].at_s <= t0) {
      const auto& burst = plan.bursts()[next_burst++];
      plan.apply_burst(burst);
      for (const auto p : burst.peers) {
        sys.set_peer_online(p, false);
        engine.on_peer_crashed(p, t0);
      }
      // The adversarial scenario of ROADMAP item 4: a *publisher* crashes
      // with disseminations (and its store-and-forward queue) in flight.
      const auto victim = publishers[next_burst % publishers.size()];
      plan.force_crash(victim);
      sys.set_peer_online(victim, false);
      engine.on_peer_crashed(victim, t0);
    }
    churn.advance_to(t0);
    for (const auto p : churn.last_departures()) {
      sys.set_peer_online(p, false);
    }
    for (const auto p : churn.last_arrivals()) {
      if (!plan.crashed(p)) {
        sys.set_peer_online(p, true);
        row.replayed_on_return += engine.replay_missed(p, t0);
      }
    }
    for (const auto c : plan.crashed_peers()) {
      sys.set_peer_online(c, false);
    }
    engine.invalidate_trees();
    for (std::size_t m = 0; m < 5; ++m) {
      auto pub = publishers[next_pub++ % publishers.size()];
      // Adversarial tier: dead publishers publish nothing — rotate to the
      // next surviving one (same-seed runs rotate identically).
      if (adversarial) {
        std::size_t scanned = 0;
        while (plan.crashed(pub) && ++scanned < publishers.size()) {
          pub = publishers[next_pub++ % publishers.size()];
        }
        if (plan.crashed(pub)) break;
      }
      engine.publish(pub, t0 + static_cast<double>(m));
    }
    engine.run_until(t0 + kEpochS);
  }
  engine.run_all();
  row.stats = engine.stats();
  row.pending_replays = engine.pending_replays();
  row.faults = plan.stats();
  if (mailbox) row.mailbox = mailbox->stats();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sel;
  const runtime::Options runtime_opts = bench::parse_runtime_flag(argc, argv);
  const bool adversarial = parse_adversarial_flag(argc, argv);
  const bool use_mailbox =
      adversarial || env::get_bool("SEL_MAILBOX", false);
  bench::print_banner(
      adversarial ? "Chaos soak — adversarial durability tier"
                  : "Chaos soak — reliable dissemination under faults",
      adversarial
          ? "durability extension (ISSUE 9): replicated mailboxes + quorum "
            "acks vs byzantine acceptors, crash bursts and publisher crashes"
          : "robustness extension (ISSUE 4): acks + retry/backoff + failover "
            "+ offline replay vs a fault plan",
      adversarial
          ? "queued messages survive publisher crashes via mailbox replicas; "
            "mailbox.quorum_writes > 0 and the control row loses messages"
          : "reliable delivery rate stays near 1.0 under drops/crashes; the "
            "control row (no retries, same fault seed) visibly loses "
            "messages");

  const std::size_t n = scaled(300, 128);
  const std::uint64_t seed = 42;
  const fault::FaultSpec spec = fault::FaultSpec::parse(env::get_string(
      "SEL_FAULT", adversarial ? kAdversarialMix : kDefaultMix));
  std::printf("fault mix: %s\n", spec.to_string().c_str());
  std::printf("mailbox: %s\n", use_mailbox ? "armed" : "off");
  std::printf("runtime: %s\n",
              std::string(runtime::to_string(runtime_opts.mode)).c_str());

  const auto g =
      graph::make_dataset_graph(graph::profile_by_name("facebook"), n, seed);

  // Fork the shard servers BEFORE anything that might create threads
  // (SelectSystem::build uses the executor pool); children only run the
  // serve loop. SEL_SHARDS sizes the fleet (driver included).
  std::optional<runtime::SpawnedShards> shards;
  if (runtime_opts.transport == runtime::TransportKind::kSocket) {
    const auto num_shards = static_cast<std::uint32_t>(
        env::get_int("SEL_SHARDS", 2, 1, 64));
    shards.emplace(runtime::SpawnedShards::spawn_loopback(
        num_shards, spec, seed, g.num_nodes()));
    std::printf("transport: socket (%u shards)\n", num_shards);
  }

  net::NetworkModel net(g.num_nodes(), seed);
  core::SelectSystem sys(g, core::SelectParams{}, seed, &net);
  sys.build();

  const char* base_name = adversarial ? "chaos_adversarial" : "chaos";
  CsvWriter csv(bench::output_path(
                    bench::runtime_csv_name(runtime_opts, base_name)),
                {"config", "published", "wanted", "delivered",
                 "delivery_rate", "retries", "failovers", "replays",
                 "mailbox_replays", "missed", "dup_suppressed",
                 "pending_replays", "injected_drops", "injected_crashes",
                 "burst_crashes", "quorum_writes", "quorum_degraded",
                 "handoffs"});
  TablePrinter table({"config", "delivery", "retries", "failovers",
                      "replays", "mbox_replays", "missed"});

  SoakRow reliable_row;
  for (const bool reliable : {true, false}) {
    const auto row = run_soak(g, sys, net, spec, seed, reliable,
                              use_mailbox, adversarial, runtime_opts,
                              shards ? &*shards : nullptr);
    if (reliable) reliable_row = row;
    const char* name = reliable ? "reliable" : "control";
    table.add_row({name, fmt(row.stats.delivery_rate(), 4),
                   std::to_string(row.stats.retries),
                   std::to_string(row.stats.failovers),
                   std::to_string(row.stats.replays),
                   std::to_string(row.stats.mailbox_replays),
                   std::to_string(row.stats.missed)});
    csv.row(std::vector<std::string>{
        name, std::to_string(row.stats.messages_published),
        std::to_string(row.stats.wanted),
        std::to_string(row.stats.deliveries),
        fmt(row.stats.delivery_rate(), 6), std::to_string(row.stats.retries),
        std::to_string(row.stats.failovers),
        std::to_string(row.stats.replays),
        std::to_string(row.stats.mailbox_replays),
        std::to_string(row.stats.missed),
        std::to_string(row.stats.duplicates_suppressed),
        std::to_string(row.pending_replays),
        std::to_string(row.faults.drops),
        std::to_string(row.faults.crashes),
        std::to_string(row.faults.burst_crashes),
        std::to_string(row.mailbox.quorum_writes),
        std::to_string(row.mailbox.quorum_degraded),
        std::to_string(row.mailbox.handoffs)});
  }
  table.print();

  // The regression gate: compare_reports.py --fail-on pubsub.delivery_rate
  // diffs this gauge between a baseline and a candidate run.
  obs::MetricsRegistry::global().gauge("pubsub.delivery_rate")
      .set(reliable_row.stats.delivery_rate());

  // Socket backend: pull every child's full metrics snapshot and merge it
  // into the driver registry (ascending shard id) so the report below is
  // the single source of truth for the whole process fleet — child-side
  // fault.* draws included, per-shard mem.* republished as mem.shard<k>.*.
  // NOTE the CSV's injected_* columns count only driver-side plan draws;
  // the merged fault.* counters in the report are the fleet totals.
  if (shards) {
    const std::size_t merged =
        shards->collect_snapshots(obs::MetricsRegistry::global());
    std::printf("merged %zu shard snapshot(s)\n", merged);
    shards->shutdown();
  }

  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report(
      base_name, csv.path(),
      {{"seed", std::to_string(seed)},
       {"fault_mix", spec.to_string()},
       {"n", std::to_string(n)},
       {"mailbox", use_mailbox ? "1" : "0"},
       {"runtime", std::string(runtime::to_string(runtime_opts.mode))},
       {"transport",
        std::string(runtime::to_string(runtime_opts.transport))}});
  return 0;
}
