// Chaos soak: reliable dissemination under an injected fault plan.
//
// Drives the notification engine through epochs of session churn while a
// seeded FaultPlan drops, duplicates, delays, stalls and crashes transfers,
// then repeats the identical run with the recovery machinery (acks, retry,
// failover, store-and-forward replay) disabled. The gap between the two
// rows is what the reliability layer buys; the report carries the
// `pubsub.delivery_rate` gauge and the full fault.*/pubsub.* counter set so
// `scripts/compare_reports.py --fail-on pubsub.delivery_rate=...` can gate
// regressions (two same-seed runs are bit-identical).
//
// Knobs: SEL_FAULT overrides the default chaos mix (drop=0.05,dup=0.01,
// spike=0.02,stall=0.01,crash=0.001); SEL_RETRY* tune the recovery ladder
// for the reliable row. `--runtime=superstep|async` (or SEL_RUNTIME)
// selects the execution mode; the superstep run writes its own
// chaos_superstep.csv/report so cross-mode artifacts sit side by side.
#include <algorithm>
#include <cstdlib>

#include "bench/bench_common.hpp"
#include "fault/fault.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/multipath.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

namespace {

constexpr const char* kDefaultMix =
    "drop=0.05,dup=0.01,spike=0.02,stall=0.01,crash=0.001";

struct SoakRow {
  sel::pubsub::EngineStats stats;
  std::size_t replayed_on_return = 0;  ///< natural-return replays mid-soak
  std::size_t pending_replays = 0;     ///< queue depth at soak end
  sel::fault::FaultPlan::Stats faults;
};

SoakRow run_soak(const sel::graph::SocialGraph& g,
                 sel::core::SelectSystem& sys, sel::net::NetworkModel& net,
                 const sel::fault::FaultSpec& spec, std::uint64_t seed,
                 bool reliable, const sel::runtime::Options& runtime_opts) {
  using namespace sel;
  for (overlay::PeerId p = 0; p < g.num_nodes(); ++p) {
    sys.set_peer_online(p, true);
  }
  fault::FaultPlan plan(spec, seed, g.num_nodes());
  pubsub::NotificationEngine engine(sys, net);
  engine.set_runtime_options(runtime_opts);
  engine.set_fault_plan(&plan);
  pubsub::RetryPolicy policy = pubsub::RetryPolicy::from_env();
  policy.enabled = reliable;
  policy.ack_timeout_s = std::min(policy.ack_timeout_s, 2.0);
  engine.set_retry_policy(policy);
  if (reliable) {
    engine.set_multipath_planner([&](overlay::PeerId b) {
      return pubsub::plan_multipath(sys.overlay(), g, b);
    });
    engine.set_availability_observer([&](overlay::PeerId p, bool up) {
      sys.observe_availability(p, up);
    });
  }

  sim::SessionChurn::Params churn_params;
  churn_params.session_median_s = 3600.0;
  churn_params.offline_median_s = 600.0;
  sim::SessionChurn churn(g.num_nodes(), churn_params, derive_seed(seed, 1));

  const auto publishers =
      bench::workload_publishers(g, 8, derive_seed(seed, 2));
  constexpr double kEpochS = 300.0;
  const std::size_t epochs = std::max<std::size_t>(4, trial_count());
  SoakRow row;
  std::size_t next_pub = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const double t0 = static_cast<double>(epoch) * kEpochS;
    churn.advance_to(t0);
    for (const auto p : churn.last_departures()) {
      sys.set_peer_online(p, false);
    }
    for (const auto p : churn.last_arrivals()) {
      if (!plan.crashed(p)) {
        sys.set_peer_online(p, true);
        row.replayed_on_return += engine.replay_missed(p, t0);
      }
    }
    for (const auto c : plan.crashed_peers()) {
      sys.set_peer_online(c, false);
    }
    engine.invalidate_trees();
    for (std::size_t m = 0; m < 5; ++m) {
      engine.publish(publishers[next_pub++ % publishers.size()],
                     t0 + static_cast<double>(m));
    }
    engine.run_until(t0 + kEpochS);
  }
  engine.run_all();
  row.stats = engine.stats();
  row.pending_replays = engine.pending_replays();
  row.faults = plan.stats();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sel;
  const runtime::Options runtime_opts = bench::parse_runtime_flag(argc, argv);
  bench::print_banner(
      "Chaos soak — reliable dissemination under faults",
      "robustness extension (ISSUE 4): acks + retry/backoff + failover + "
      "offline replay vs a fault plan",
      "reliable delivery rate stays near 1.0 under drops/crashes; the "
      "control row (no retries, same fault seed) visibly loses messages");

  const std::size_t n = scaled(300, 128);
  const std::uint64_t seed = 42;
  const fault::FaultSpec spec =
      fault::FaultSpec::parse(env::get_string("SEL_FAULT", kDefaultMix));
  std::printf("fault mix: %s\n", spec.to_string().c_str());
  std::printf("runtime: %s\n",
              std::string(runtime::to_string(runtime_opts.mode)).c_str());

  const auto g =
      graph::make_dataset_graph(graph::profile_by_name("facebook"), n, seed);
  net::NetworkModel net(g.num_nodes(), seed);
  core::SelectSystem sys(g, core::SelectParams{}, seed, &net);
  sys.build();

  CsvWriter csv(bench::output_path(
                    bench::runtime_csv_name(runtime_opts, "chaos")),
                {"config", "published", "wanted", "delivered",
                 "delivery_rate", "retries", "failovers", "replays",
                 "missed", "dup_suppressed", "pending_replays",
                 "injected_drops", "injected_crashes"});
  TablePrinter table({"config", "delivery", "retries", "failovers",
                      "replays", "missed"});

  SoakRow reliable_row;
  for (const bool reliable : {true, false}) {
    const auto row = run_soak(g, sys, net, spec, seed, reliable,
                              runtime_opts);
    if (reliable) reliable_row = row;
    const char* name = reliable ? "reliable" : "control";
    table.add_row({name, fmt(row.stats.delivery_rate(), 4),
                   std::to_string(row.stats.retries),
                   std::to_string(row.stats.failovers),
                   std::to_string(row.stats.replays),
                   std::to_string(row.stats.missed)});
    csv.row(std::vector<std::string>{
        name, std::to_string(row.stats.messages_published),
        std::to_string(row.stats.wanted),
        std::to_string(row.stats.deliveries),
        fmt(row.stats.delivery_rate(), 6), std::to_string(row.stats.retries),
        std::to_string(row.stats.failovers),
        std::to_string(row.stats.replays), std::to_string(row.stats.missed),
        std::to_string(row.stats.duplicates_suppressed),
        std::to_string(row.pending_replays),
        std::to_string(row.faults.drops),
        std::to_string(row.faults.crashes)});
  }
  table.print();

  // The regression gate: compare_reports.py --fail-on pubsub.delivery_rate
  // diffs this gauge between a baseline and a candidate run.
  obs::MetricsRegistry::global().gauge("pubsub.delivery_rate")
      .set(reliable_row.stats.delivery_rate());

  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report(
      "chaos", csv.path(),
      {{"seed", std::to_string(seed)},
       {"fault_mix", spec.to_string()},
       {"n", std::to_string(n)},
       {"runtime", std::string(runtime::to_string(runtime_opts.mode))}});
  return 0;
}
