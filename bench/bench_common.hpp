// Shared plumbing for the figure/table harnesses.
//
// Every harness prints the paper-style series to stdout AND writes a CSV
// next to the binary. Sizes honour SELECT_BENCH_SCALE; trial counts honour
// SELECT_TRIALS. The paper averages 100 trials; defaults here are laptop
// sized — crank SELECT_TRIALS/SELECT_BENCH_SCALE for paper-scale runs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/profiles.hpp"
#include "overlay/system.hpp"
#include "sim/workload.hpp"

namespace sel::bench {

/// Network-size sweep used by the N-sweep figures.
inline std::vector<std::size_t> default_sizes() {
  return {scaled(250), scaled(500), scaled(1000)};
}

/// Publishers drawn from the Jiang et al. posting model (rate-weighted), so
/// prolific users publish more often — as in the paper's workload.
inline std::vector<overlay::PeerId> workload_publishers(
    const graph::SocialGraph& g, std::size_t count, std::uint64_t seed) {
  sim::PublicationWorkload workload(g, sim::WorkloadParams{}, seed);
  const auto nodes = workload.sample_publishers(count, derive_seed(seed, 1));
  return {nodes.begin(), nodes.end()};
}

inline void print_banner(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("scale=%.2f trials=%zu\n\n", bench_scale(), trial_count());
}

}  // namespace sel::bench
