// Shared plumbing for the figure/table harnesses.
//
// Every harness prints the paper-style series to stdout AND writes a CSV
// next to the binary. Sizes honour SELECT_BENCH_SCALE; trial counts honour
// SELECT_TRIALS. The paper averages 100 trials; defaults here are laptop
// sized — crank SELECT_TRIALS/SELECT_BENCH_SCALE for paper-scale runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "check/memory_checks.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/profiles.hpp"
#include "obs/memory.hpp"
#include "obs/perfetto.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "overlay/system.hpp"
#include "runtime/runtime.hpp"
#include "sim/workload.hpp"

namespace sel::bench {

/// Directory all bench artifacts (CSV, report, trace) land in. Defaults to
/// `results/` under the working directory (gitignored); override with
/// SELECT_RESULTS_DIR. Created on first use; falls back to "." when the
/// directory cannot be created (read-only working dir).
inline const std::string& results_dir() {
  static const std::string dir = [] {
    std::string d = env::get_string("SELECT_RESULTS_DIR", "results");
    std::error_code ec;
    std::filesystem::create_directories(d, ec);
    if (ec) return std::string(".");
    return d;
  }();
  return dir;
}

/// `results_dir()/filename` — pass to CsvWriter so artifacts stay out of
/// the source tree.
inline std::string output_path(const std::string& filename) {
  return results_dir() + "/" + filename;
}

/// Network-size sweep used by the N-sweep figures.
inline std::vector<std::size_t> default_sizes() {
  return {scaled(250), scaled(500), scaled(1000)};
}

/// Publishers drawn from the Jiang et al. posting model (rate-weighted), so
/// prolific users publish more often — as in the paper's workload.
inline std::vector<overlay::PeerId> workload_publishers(
    const graph::SocialGraph& g, std::size_t count, std::uint64_t seed) {
  sim::PublicationWorkload workload(g, sim::WorkloadParams{}, seed);
  const auto nodes = workload.sample_publishers(count, derive_seed(seed, 1));
  return {nodes.begin(), nodes.end()};
}

/// Runtime options for a harness: SEL_RUNTIME/SEL_TRANSPORT from the
/// environment, overridden by a `--runtime=superstep|async|socket|inproc`
/// CLI flag (mode and transport share the flag — the values are disjoint).
/// Other arguments are ignored here; `--mem-profile` is picked up
/// process-wide by obs::mem_profile_enabled() without per-harness parsing.
inline runtime::Options parse_runtime_flag(int argc, char** argv) {
  runtime::Options opts = runtime::Options::from_env();
  constexpr std::string_view kPrefix = "--runtime=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.substr(0, kPrefix.size()) == kPrefix) {
      const std::string_view value = arg.substr(kPrefix.size());
      if (value == "socket") {
        opts.transport = runtime::TransportKind::kSocket;
      } else if (value == "inproc") {
        opts.transport = runtime::TransportKind::kInProc;
      } else {
        opts.mode = runtime::parse_mode(value, opts.mode);
      }
    }
  }
  return opts;
}

/// Per-mode artifact name: `<stem>.csv` for the default async/inproc
/// runtime, `<stem>_superstep.csv` / `<stem>_socket.csv` for the
/// barrier-quantized mode and the multi-process transport — so cross-mode
/// report JSONs land side by side instead of clobbering each other.
inline std::string runtime_csv_name(const runtime::Options& opts,
                                    const std::string& stem) {
  std::string name = stem;
  if (opts.mode != runtime::Mode::kAsync) {
    name += "_" + std::string(runtime::to_string(opts.mode));
  }
  if (opts.transport != runtime::TransportKind::kInProc) {
    name += "_" + std::string(runtime::to_string(opts.transport));
  }
  return name + ".csv";
}

inline void print_banner(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("scale=%.2f trials=%zu\n\n", bench_scale(), trial_count());
}

/// Emits `<csv stem>.report.json` next to the harness CSV: run metadata
/// (scale, trials, git describe, extras like seed/N) plus a full snapshot of
/// the global metrics registry — counters, spans and per-round telemetry
/// accumulated over the whole run. `scripts/compare_reports.py` diffs two.
inline void write_run_report(
    const std::string& experiment, const std::string& csv_path,
    std::map<std::string, std::string> extra = {}) {
  // Touch the canonical protocol/message-plane counters so every report
  // carries them (as 0) even when the harness never exercised a subsystem —
  // report diffs stay schema-stable across experiments.
  auto& reg = obs::MetricsRegistry::global();
  for (const char* name :
       {"select.gossip_exchanges", "select.id_reassignments",
        "select.link_reassignments", "select.link_establishments",
        "select.rounds", "pubsub.publishes", "pubsub.deliveries",
        "pubsub.relay_forwards", "sim.superstep.rounds",
        "sim.superstep.messages", "sim.trials_run"}) {
    reg.counter(name);
  }
  obs::RunReport report;
  report.experiment = experiment;
  report.git_describe = obs::git_describe();
  report.metadata = std::move(extra);
  report.metadata.emplace("scale", fmt(bench_scale(), 2));
  report.metadata.emplace("trials", std::to_string(trial_count()));
  report.metadata.emplace("obs", obs::enabled() ? "on" : "off");
  // End-of-run resource summary (schema v3): refresh the mem.* gauges so
  // the snapshot and the flat `memory` section agree, and give
  // SEL_MEM_BUDGET one last chance to fire before the artifact is written.
  obs::poll_memory_gauges();
  check::check_memory_budget();
  report.snapshot = reg.snapshot();
  report.timeseries = obs::RoundSampler::global().snapshot();
  report.memory = obs::memory_values();
  const std::string path = obs::report_path_for_csv(csv_path);
  if (report.write(path)) {
    std::printf("wrote %s\n", path.c_str());
  }
  if (obs::enabled()) {
    const std::string trace_path = obs::trace_path_for_csv(csv_path);
    if (obs::write_trace_file(trace_path)) {
      std::printf("wrote %s (open in ui.perfetto.dev)\n", trace_path.c_str());
    }
  }
}

}  // namespace sel::bench
