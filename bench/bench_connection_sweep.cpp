// Sec. IV-C preliminary: hops vs number of direct connections per peer.
// The paper observes >90% hop reduction as links grow, flattening once the
// link count passes log2(N) — which motivates K = log2(N) everywhere else.
#include "bench/bench_common.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "connection sweep — hops vs direct connections",
      "Sec. IV-C: as direct connections increase, hops drop >90%, with no "
      "further gain past log2(N) links",
      "steep drop then a plateau at K ~ log2 N");

  const std::size_t n = scaled(1000, 200);
  const auto log2n = static_cast<std::size_t>(
      std::log2(static_cast<double>(n)));
  const std::size_t trials = trial_count(2);
  CsvWriter csv(bench::output_path("connection_sweep.csv"), {"k_links", "hops", "success"});

  const auto& profile = graph::profile_by_name("facebook");
  TablePrinter table({"K", "hops", "delivered%"});
  for (std::size_t k = 1; k <= 2 * log2n; k = k < 4 ? k + 1 : k + 2) {
    const auto summary = sim::run_trials(
        trials, derive_seed(0xC0111ULL, k),
        [&](std::uint64_t seed) {
          const auto g = graph::make_dataset_graph(profile, n, seed);
          core::SelectParams params;
          params.k_links = k;
          core::SelectSystem sys(g, params, seed);
          sys.build();
          const overlay::PubSubSystem ps(sys);
          const auto hops = pubsub::measure_hops(ps, 250, seed);
          return sim::MetricMap{{"hops", hops.hops.mean()},
                                {"success", hops.success_rate()}};
        });
    table.add_row({std::to_string(k), fmt(summary.mean("hops")),
                   fmt(100.0 * summary.mean("success"), 1)});
    csv.row({static_cast<double>(k), summary.mean("hops"),
             summary.mean("success")});
  }
  table.print();
  std::printf("\nlog2(N) = %zu for N = %zu — the paper's chosen operating "
              "point\nwrote %s\n",
              log2n, n, csv.path().c_str());
  bench::write_run_report("connection_sweep", csv.path());
  return 0;
}
