// Figure 2: average number of hops per social lookup, per data set, as the
// network grows — SELECT vs Symphony, Bayeux, Vitis, OMen.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "pubsub/metrics.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 2 — hops per social lookup",
      "Fig. 2(a-d): avg hops publisher->subscriber vs network size, 5 systems "
      "x 4 data sets",
      "SELECT stays at 1-2 hops; Symphony grows ~log N; SELECT >=43-85% fewer "
      "hops than every baseline");

  const auto sizes = bench::default_sizes();
  const std::size_t trials = trial_count(2);
  CsvWriter csv(bench::output_path("fig2_hops.csv"),
                {"dataset", "n", "system", "hops", "ci95", "success_rate"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s ---\n", std::string(profile.name).c_str());
    std::vector<std::string> header{"n"};
    for (const auto name : baselines::all_system_names()) {
      header.emplace_back(name);
    }
    TablePrinter table(header);
    for (const std::size_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto name : baselines::all_system_names()) {
        const auto summary = sim::run_trials(
            trials, derive_seed(0xF16'2, n),
            [&](std::uint64_t seed) {
              const auto g = graph::make_dataset_graph(profile, n, seed);
              auto sys = baselines::make_system(name, g, {.seed = seed});
              sys->build();
              const auto hops = pubsub::measure_hops(*sys, 300, seed);
              return sim::MetricMap{
                  {"hops", hops.hops.mean()},
                  {"success", hops.success_rate()},
              };
            });
        row.push_back(fmt(summary.mean("hops")));
        csv.row(std::vector<std::string>{
            std::string(profile.name), std::to_string(n), std::string(name),
            fmt(summary.mean("hops"), 4), fmt(summary.ci95("hops"), 4),
            fmt(summary.mean("success"), 4)});
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig2_hops", csv.path());
  return 0;
}
