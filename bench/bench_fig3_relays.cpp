// Figure 3: average number of relay nodes per pub/sub routing path, per
// data set — SELECT vs Symphony, Bayeux, Vitis, OMen.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "pubsub/metrics.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 3 — relay nodes per pub/sub routing path",
      "Fig. 3(a-d): avg relay nodes publisher->subscriber vs network size",
      "SELECT near zero (>=89-98% reduction); Bayeux worst (rendezvous "
      "trees); Symphony/Vitis in between");

  const auto sizes = bench::default_sizes();
  const std::size_t trials = trial_count(2);
  CsvWriter csv(bench::output_path("fig3_relays.csv"),
                {"dataset", "n", "system", "relays_per_path",
                 "relays_per_tree", "coverage"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s ---\n", std::string(profile.name).c_str());
    std::vector<std::string> header{"n"};
    for (const auto name : baselines::all_system_names()) {
      header.emplace_back(name);
    }
    TablePrinter table(header);
    for (const std::size_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto name : baselines::all_system_names()) {
        const auto summary = sim::run_trials(
            trials, derive_seed(0xF16'3, n),
            [&](std::uint64_t seed) {
              const auto g = graph::make_dataset_graph(profile, n, seed);
              auto sys = baselines::make_system(name, g, {.seed = seed});
              sys->build();
              const auto publishers =
                  bench::workload_publishers(g, 25, seed);
              const auto relays = pubsub::measure_relays(*sys, publishers);
              return sim::MetricMap{
                  {"per_path", relays.relays_per_path.mean()},
                  {"per_tree", relays.relays_per_tree.mean()},
                  {"coverage", relays.coverage.mean()},
              };
            });
        row.push_back(fmt(summary.mean("per_path")));
        csv.row(std::vector<std::string>{
            std::string(profile.name), std::to_string(n), std::string(name),
            fmt(summary.mean("per_path"), 4),
            fmt(summary.mean("per_tree"), 4),
            fmt(summary.mean("coverage"), 4)});
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig3_relays", csv.path());
  return 0;
}
