// Figure 4: load balance — percentage of messages each peer forwards in the
// routing tree, bucketed by social degree.
//
// We report (a) the forwarding share of each social-degree decile, (b) the
// share handled by the top-degree 10% of peers, (c) the Gini coefficient of
// per-peer forwards, and (d) the share of forwards done by non-subscribers
// (pure relay traffic). SELECT's claim is that forwarding work sits with
// interested subscribers and no peer class is overloaded; Vitis/OMen
// concentrate load on high-degree hubs.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "pubsub/metrics.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 4 — messages forwarded per social degree",
      "Fig. 4(a-d): % of messages forwarded vs peer social degree",
      "SELECT avoids hotspots (>=46-73% better balance than socially-aware "
      "baselines); Vitis concentrates load on hubs; SELECT's relay traffic "
      "share is near zero");

  const std::size_t n = scaled(1000, 200);
  const std::size_t trials = trial_count(2);
  CsvWriter csv(bench::output_path("fig4_load.csv"),
                {"dataset", "system", "top_decile_share_pct", "gini",
                 "relay_forward_share", "forwards_per_delivery",
                 "decile0", "decile9"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s (N=%zu) ---\n", std::string(profile.name).c_str(), n);
    TablePrinter table({"system", "top-10% deg share", "gini",
                        "relay fwd share", "fwd/delivery"});
    for (const auto name : baselines::all_system_names()) {
      const auto summary = sim::run_trials(
          trials, derive_seed(0xF16'4, n),
          [&](std::uint64_t seed) {
            const auto g = graph::make_dataset_graph(profile, n, seed);
            auto sys = baselines::make_system(name, g, {.seed = seed});
            sys->build();
            const auto publishers = bench::workload_publishers(g, 40, seed);
            const auto load = pubsub::measure_load(*sys, publishers);
            return sim::MetricMap{
                {"top", load.top_decile_share},
                {"gini", load.gini},
                {"relay_share", load.relay_forward_share},
                {"fwd_per_delivery", load.forwards_per_delivery},
                {"d0", load.share_by_degree_decile.front()},
                {"d9", load.share_by_degree_decile.back()},
            };
          });
      table.add_row({std::string(name),
                     fmt(summary.mean("top"), 1) + "%",
                     fmt(summary.mean("gini")),
                     fmt(summary.mean("relay_share"), 3),
                     fmt(summary.mean("fwd_per_delivery"))});
      csv.row(std::vector<std::string>{
          std::string(profile.name), std::string(name),
          fmt(summary.mean("top"), 3), fmt(summary.mean("gini"), 4),
          fmt(summary.mean("relay_share"), 4),
          fmt(summary.mean("fwd_per_delivery"), 4),
          fmt(summary.mean("d0"), 3), fmt(summary.mean("d9"), 3)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig4_load", csv.path());
  return 0;
}
