// Figure 5: number of iterations required to construct the overlay.
// Symphony and Bayeux are excluded (non-iterative), exactly as in the paper.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 5 — iterations to construct the overlay",
      "Fig. 5: convergence iterations, SELECT vs Vitis vs OMen (Symphony/"
      "Bayeux excluded: no iterative process)",
      "SELECT converges in up to ~75% fewer iterations; its links start "
      "social and only need refinement, while Vitis/OMen must discover "
      "structure from random starts");

  std::vector<std::size_t> sizes = bench::default_sizes();
  sizes.push_back(scaled(2000));
  const std::size_t trials = trial_count(2);
  const char* systems[] = {"select", "vitis", "omen"};
  CsvWriter csv(bench::output_path("fig5_convergence.csv"),
                {"dataset", "n", "system", "iterations", "ci95"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s ---\n", std::string(profile.name).c_str());
    TablePrinter table({"n", "select", "vitis", "omen"});
    for (const std::size_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto name : systems) {
        const auto summary = sim::run_trials(
            trials, derive_seed(0xF16'5, n),
            [&](std::uint64_t seed) {
              const auto g = graph::make_dataset_graph(profile, n, seed);
              auto sys = baselines::make_system(name, g, {.seed = seed});
              sys->build();
              return sim::MetricMap{
                  {"iters", static_cast<double>(sys->build_iterations())}};
            });
        row.push_back(fmt(summary.mean("iters"), 1));
        csv.row(std::vector<std::string>{
            std::string(profile.name), std::to_string(n), std::string(name),
            fmt(summary.mean("iters"), 2), fmt(summary.ci95("iters"), 2)});
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig5_convergence", csv.path());
  return 0;
}
