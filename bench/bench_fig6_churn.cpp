// Figure 6: communication availability under churn over time.
//
// A long-running session-churn process (log-normal on/off durations, total
// availability floored at 50% as in the paper) drives peers off- and online;
// after each epoch SELECT runs its recovery round (CMA + same-LSH-bucket
// replacement) and we measure the fraction of online subscribers that
// publications still reach. The dashed line of the paper's figure (node
// churn) is the online fraction; the continuous line is availability.
#include "bench/bench_common.hpp"
#include "select/protocol.hpp"
#include "pubsub/metrics.hpp"
#include "sim/churn.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 6 — availability under churn",
      "Fig. 6: data availability during information propagation under churn "
      "(10h run, up to 50% of peers offline)",
      "SELECT's recovery keeps availability at ~100% for every data set "
      "while up to half the network is offline");

  const std::size_t n = scaled(600, 128);
  const std::size_t epochs = 20;
  const double epoch_s = 1800.0;  // 20 x 30min = 10 hours
  CsvWriter csv(bench::output_path("fig6_churn.csv"),
                {"dataset", "time_s", "online_fraction", "availability",
                 "availability_no_recovery"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s (N=%zu, 10h simulated) ---\n",
                std::string(profile.name).c_str(), n);
    const std::uint64_t seed = derive_seed(0xF16'6, profile.name.size());
    const auto g = graph::make_dataset_graph(profile, n, seed);

    core::SelectSystem sys(g, core::SelectParams{}, seed);
    sys.build();
    core::SelectParams no_recovery_params;
    no_recovery_params.enable_cma_recovery = false;
    core::SelectSystem no_maint(g, no_recovery_params, seed);
    no_maint.build();
    const overlay::PubSubSystem ps(sys);
    const overlay::PubSubSystem ps_no_maint(no_maint);

    sim::SessionChurn::Params churn_params;
    churn_params.session_median_s = 2400.0;
    churn_params.offline_median_s = 1800.0;
    churn_params.min_online_fraction = 0.5;
    sim::SessionChurn churn(n, churn_params, seed);

    const auto publishers = bench::workload_publishers(g, 25, seed);
    TablePrinter table({"t(h)", "online%", "avail% (recovery)",
                        "avail% (no maintenance)"});
    for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
      churn.advance_to(static_cast<double>(epoch) * epoch_s);
      for (overlay::PeerId p = 0; p < n; ++p) {
        sys.set_peer_online(p, churn.online(p));
        no_maint.set_peer_online(p, churn.online(p));
      }
      sys.maintenance_round();  // recovery ON
      // no_maint gets NO maintenance_round: dead links stay dead.
      const auto avail = pubsub::measure_availability(ps, publishers);
      const auto avail_off =
          pubsub::measure_availability(ps_no_maint, publishers);
      table.add_row({fmt(epoch * epoch_s / 3600.0, 1),
                     fmt(100.0 * churn.online_fraction(), 1),
                     fmt(100.0 * avail.availability(), 2),
                     fmt(100.0 * avail_off.availability(), 2)});
      csv.row(std::vector<std::string>{
          std::string(profile.name), fmt(epoch * epoch_s, 0),
          fmt(churn.online_fraction(), 4), fmt(avail.availability(), 4),
          fmt(avail_off.availability(), 4)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig6_churn", csv.path());
  return 0;
}
