// Figure 7: average latency of data dissemination in the pub/sub routing
// tree (the "realistic" experiments: heterogeneous bandwidth, per-pair
// latency, 1.2 MB payloads, uplink shared across simultaneous transfers).
// Compares SELECT against the random overlay ("without selection
// algorithm") and the full baseline set.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "pubsub/metrics.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 7 — dissemination latency (realistic experiments)",
      "Fig. 7(a-d): avg latency of 1.2MB payload dissemination vs network "
      "size, random overlay vs SELECT (plus the other baselines)",
      "random overlay latency grows steeply with size; SELECT grows slowly "
      "(~linear), staying latency-aware");

  const auto sizes = bench::default_sizes();
  const std::size_t trials = trial_count(2);
  const char* systems[] = {"random", "select", "symphony", "bayeux", "vitis",
                           "omen"};
  CsvWriter csv(bench::output_path("fig7_latency.csv"),
                {"dataset", "n", "system", "tree_latency_s",
                 "subscriber_latency_s"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s ---\n", std::string(profile.name).c_str());
    std::vector<std::string> header{"n"};
    for (const auto name : systems) header.emplace_back(name);
    TablePrinter table(header);
    for (const std::size_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto name : systems) {
        const auto summary = sim::run_trials(
            trials, derive_seed(0xF16'7, n),
            [&](std::uint64_t seed) {
              const auto g = graph::make_dataset_graph(profile, n, seed);
              net::NetworkModel net(g.num_nodes(), seed);
              auto sys = baselines::make_system(name, g, seed, 0, &net);
              sys->build();
              const auto publishers =
                  bench::workload_publishers(g, 15, seed);
              const auto latency =
                  pubsub::measure_latency(*sys, net, publishers);
              return sim::MetricMap{
                  {"tree_s", latency.per_tree_s.mean()},
                  {"sub_s", latency.per_subscriber_s.mean()},
              };
            });
        row.push_back(fmt(summary.mean("tree_s")) + "s");
        csv.row(std::vector<std::string>{
            std::string(profile.name), std::to_string(n), std::string(name),
            fmt(summary.mean("tree_s"), 4), fmt(summary.mean("sub_s"), 4)});
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig7_latency", csv.path());
  return 0;
}
