// Figure 7: average latency of data dissemination in the pub/sub routing
// tree (the "realistic" experiments: heterogeneous bandwidth, per-pair
// latency, 1.2 MB payloads, uplink shared across simultaneous transfers).
// Compares SELECT against the random overlay ("without selection
// algorithm") and the full baseline set.
//
// The default (async) run keeps the closed-form tree walk of
// pubsub::measure_latency. `--runtime=superstep` (or SEL_RUNTIME) instead
// drives each dissemination through the NotificationEngine under the
// barrier-quantized runtime and writes fig7_latency_superstep.csv, so the
// two execution modes produce side-by-side latency artifacts.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "pubsub/engine.hpp"
#include "pubsub/metrics.hpp"
#include "sim/trial.hpp"

namespace {

/// Engine-backed replacement for the closed-form walk: one publish per
/// publisher (trees are independent; the engine splits uplink across a
/// node's own children only, matching measure_latency's contention model),
/// latencies read back from the per-message records.
sel::sim::MetricMap measure_engine_latency(
    const sel::overlay::PubSubSystem& sys, sel::net::NetworkModel& net,
    const std::vector<sel::overlay::PeerId>& publishers,
    const sel::runtime::Options& opts) {
  using namespace sel;
  pubsub::NotificationEngine engine(sys, net);
  engine.set_runtime_options(opts);
  std::vector<pubsub::MessageId> ids;
  for (const auto p : publishers) {
    ids.push_back(engine.publish(p, 0.0));
  }
  engine.run_all();
  RunningStats tree_s;
  RunningStats sub_s;
  for (const auto id : ids) {
    const auto& rec = engine.record(id);
    sub_s.merge(rec.delivery_latency_s);
    if (rec.completed_at_s.has_value()) {
      tree_s.add(*rec.completed_at_s - rec.publish_time_s);
    }
  }
  return sim::MetricMap{{"tree_s", tree_s.mean()}, {"sub_s", sub_s.mean()}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sel;
  const runtime::Options runtime_opts = bench::parse_runtime_flag(argc, argv);
  bench::print_banner(
      "Figure 7 — dissemination latency (realistic experiments)",
      "Fig. 7(a-d): avg latency of 1.2MB payload dissemination vs network "
      "size, random overlay vs SELECT (plus the other baselines)",
      "random overlay latency grows steeply with size; SELECT grows slowly "
      "(~linear), staying latency-aware");
  std::printf("runtime: %s\n",
              std::string(runtime::to_string(runtime_opts.mode)).c_str());

  const auto sizes = bench::default_sizes();
  const std::size_t trials = trial_count(2);
  const char* systems[] = {"random", "select", "symphony", "bayeux", "vitis",
                           "omen"};
  CsvWriter csv(bench::output_path(
                    bench::runtime_csv_name(runtime_opts, "fig7_latency")),
                {"dataset", "n", "system", "tree_latency_s",
                 "subscriber_latency_s"});

  for (const auto& profile : graph::all_profiles()) {
    std::printf("--- %s ---\n", std::string(profile.name).c_str());
    std::vector<std::string> header{"n"};
    for (const auto name : systems) header.emplace_back(name);
    TablePrinter table(header);
    for (const std::size_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto name : systems) {
        const auto summary = sim::run_trials(
            trials, derive_seed(0xF16'7, n),
            [&](std::uint64_t seed) {
              const auto g = graph::make_dataset_graph(profile, n, seed);
              net::NetworkModel net(g.num_nodes(), seed);
              auto sys = baselines::make_system(name, g, {.seed = seed, .net = &net});
              sys->build();
              const auto publishers =
                  bench::workload_publishers(g, 15, seed);
              if (runtime_opts.mode != runtime::Mode::kAsync) {
                return measure_engine_latency(*sys, net, publishers,
                                              runtime_opts);
              }
              const auto latency =
                  pubsub::measure_latency(*sys, net, publishers);
              return sim::MetricMap{
                  {"tree_s", latency.per_tree_s.mean()},
                  {"sub_s", latency.per_subscriber_s.mean()},
              };
            });
        row.push_back(fmt(summary.mean("tree_s")) + "s");
        csv.row(std::vector<std::string>{
            std::string(profile.name), std::to_string(n), std::string(name),
            fmt(summary.mean("tree_s"), 4), fmt(summary.mean("sub_s"), 4)});
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report(
      "fig7_latency", csv.path(),
      {{"runtime", std::string(runtime::to_string(runtime_opts.mode))}});
  return 0;
}
