// Figure 8: distribution of identifiers after applying SELECT.
//
// The paper's qualitative claim: identifiers clump into social regions
// (communities sit together) while still covering the whole ring (no dead
// zones that would break greedy routing). We print an ASCII histogram and
// quantify it: clumpiness (coefficient of variation of bin mass; 0 =
// uniform) and ring coverage (fraction of non-empty bins), before (uniform
// hash) and after SELECT's identifier reassignment.
#include "bench/bench_common.hpp"
#include "common/histogram.hpp"
#include "select/protocol.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Figure 8 — identifier distribution",
      "Fig. 8(a-d): identifier distribution over the ID space after SELECT",
      "socially clustered clumps (clumpiness up vs uniform) with the ring "
      "still fully covered");

  const std::size_t n = scaled(1000, 200);
  const std::size_t bins = 64;
  CsvWriter csv(bench::output_path("fig8_iddist.csv"),
                {"dataset", "stage", "clumpiness", "entropy_bits",
                 "coverage", "avg_friend_ring_distance"});

  for (const auto& profile : graph::all_profiles()) {
    const std::uint64_t seed = derive_seed(0xF16'8, profile.name.size());
    const auto g = graph::make_dataset_graph(profile, n, seed);
    core::SelectSystem sys(g, core::SelectParams{}, seed);

    auto snapshot = [&](const char* stage) {
      Histogram hist(0.0, 1.0, bins);
      for (overlay::PeerId p = 0; p < n; ++p) {
        hist.add(sys.overlay().id(p).value());
      }
      std::size_t nonempty = 0;
      for (std::size_t b = 0; b < bins; ++b) {
        if (hist.count(b) > 0) ++nonempty;
      }
      double friend_dist = 0.0;
      std::size_t pairs = 0;
      for (overlay::PeerId p = 0; p < n; ++p) {
        for (const auto q : g.neighbors(p)) {
          if (q > p) {
            friend_dist += net::ring_distance(sys.overlay().id(p),
                                              sys.overlay().id(q));
            ++pairs;
          }
        }
      }
      friend_dist /= static_cast<double>(pairs);
      const double coverage =
          static_cast<double>(nonempty) / static_cast<double>(bins);
      std::printf("%s/%s: clumpiness=%.2f entropy=%.2f bits coverage=%.0f%% "
                  "avg friend ring distance=%.4f\n",
                  std::string(profile.name).c_str(), stage, hist.clumpiness(),
                  hist.entropy_bits(), 100.0 * coverage, friend_dist);
      csv.row(std::vector<std::string>{
          std::string(profile.name), stage, fmt(hist.clumpiness(), 4),
          fmt(hist.entropy_bits(), 4), fmt(coverage, 4),
          fmt(friend_dist, 5)});
      return hist;
    };

    sys.join_all();
    snapshot("after_join");
    sys.run_to_convergence();
    const Histogram final_hist = snapshot("after_select");
    std::printf("%s id histogram after SELECT:\n%s\n",
                std::string(profile.name).c_str(),
                final_hist.render(48).c_str());
  }
  std::printf("wrote %s\n", csv.path().c_str());
  bench::write_run_report("fig8_iddist", csv.path());
  return 0;
}
