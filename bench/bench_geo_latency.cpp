// Extension bench (paper Sec. V Discussion): "a geographically distributed
// study would augment our findings." Peers are spread over regions with an
// inter-region latency penalty; we compare dissemination latency of SELECT
// vs the random overlay as the penalty grows, and split SELECT's tree edges
// into intra- vs inter-region hops.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "geo latency — geographically distributed peers",
      "Sec. V (Discussion): geographic distribution study (future work)",
      "inter-region penalties inflate the random overlay's latency much "
      "faster than SELECT's (social clusters correlate with regions only "
      "weakly, but shorter trees mean fewer crossings)");

  const std::size_t n = scaled(600, 150);
  const std::size_t trials = trial_count(2);
  const auto& profile = graph::profile_by_name("facebook");
  CsvWriter csv(bench::output_path("geo_latency.csv"),
                {"inter_region_ms", "system", "tree_latency_s",
                 "inter_region_edge_fraction"});
  TablePrinter table({"extra ms", "system", "tree latency (s)",
                      "inter-region edges"});

  for (const double extra_ms : {0.0, 40.0, 120.0, 240.0}) {
    for (const auto name : {"select", "random"}) {
      const auto summary = sim::run_trials(
          trials,
          derive_seed(0x3e0, static_cast<std::uint64_t>(extra_ms) + 7),
          [&](std::uint64_t seed) {
            const auto g = graph::make_dataset_graph(profile, n, seed);
            net::NetworkModel net(
                g.num_nodes(), seed, net::default_bandwidth_mix(), 40.0, 0.5,
                net::GeoParams{.regions = 6,
                               .inter_region_extra_ms = extra_ms});
            auto sys = baselines::make_system(name, g, {.seed = seed, .net = &net});
            sys->build();
            const auto publishers = bench::workload_publishers(g, 12, seed);
            const auto latency =
                pubsub::measure_latency(*sys, net, publishers);
            // Fraction of tree edges crossing regions.
            std::size_t cross = 0;
            std::size_t edges = 0;
            for (const auto b : publishers) {
              const auto tree = sys->build_tree(b);
              for (const auto node : tree.nodes()) {
                for (const auto child : tree.children(node)) {
                  ++edges;
                  if (net.region_of(node) != net.region_of(child)) ++cross;
                }
              }
            }
            return sim::MetricMap{
                {"tree_s", latency.per_tree_s.mean()},
                {"cross",
                 edges == 0 ? 0.0
                            : static_cast<double>(cross) /
                                  static_cast<double>(edges)},
            };
          });
      table.add_row({fmt(extra_ms, 0), std::string(name),
                     fmt(summary.mean("tree_s")),
                     fmt(100.0 * summary.mean("cross"), 1) + "%"});
      csv.row(std::vector<std::string>{
          fmt(extra_ms, 0), std::string(name), fmt(summary.mean("tree_s"), 4),
          fmt(summary.mean("cross"), 4)});
    }
  }
  table.print();
  std::printf("\nwrote %s\n", csv.path().c_str());
  bench::write_run_report("geo_latency", csv.path());
  return 0;
}
