// Micro-benchmarks (google-benchmark) for the hot paths: LSH indexing,
// greedy routing, graph generation, common-neighbour counting, superstep
// message delivery, gossip rounds and tree construction.
//
// The binary writes a RunReport (results/micro.report.json) on exit; the CI
// perf-smoke job runs it twice and gates with compare_reports.py, so the
// counter-ticking benchmarks (BM_Superstep*) pin their iteration counts —
// `sim.superstep.messages` must be bit-identical between same-flag runs.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "baselines/symphony.hpp"
#include "bench/bench_common.hpp"
#include "check/check.hpp"
#include "common/bitset.hpp"
#include "graph/generators.hpp"
#include "graph/profiles.hpp"
#include "graph/tie_strength.hpp"
#include "lsh/lsh.hpp"
#include "net/id_space.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "select/protocol.hpp"
#include "sim/superstep.hpp"

namespace {

using namespace sel;

void BM_SplitMix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = splitmix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SplitMix64);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_BitsetHamming(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  DynamicBitset a(bits);
  DynamicBitset b(bits);
  for (std::size_t i = 0; i < bits; i += 3) a.set(i);
  for (std::size_t i = 0; i < bits; i += 5) b.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming_distance(b));
  }
}
BENCHMARK(BM_BitsetHamming)->Arg(64)->Arg(256)->Arg(1024);

void BM_LshIndexInsert(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  lsh::LshIndex index(dim, 10, 12, 1);
  Rng rng(2);
  std::vector<DynamicBitset> bitmaps;
  for (std::uint32_t p = 0; p < 128; ++p) {
    DynamicBitset b(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      if (rng.chance(0.3)) b.set(i);
    }
    bitmaps.push_back(std::move(b));
  }
  std::uint32_t p = 0;
  for (auto _ : state) {
    index.insert(p % 128, bitmaps[p % 128]);
    ++p;
  }
}
BENCHMARK(BM_LshIndexInsert)->Arg(64)->Arg(256);

void BM_RingDistance(benchmark::State& state) {
  const net::OverlayId a(0.123);
  const net::OverlayId b(0.877);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ring_distance(a, b));
  }
}
BENCHMARK(BM_RingDistance);

void BM_CommonNeighbors(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 2000, 1);
  Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
    const auto v = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
    benchmark::DoNotOptimize(g.common_neighbors(u, v));
  }
}
BENCHMARK(BM_CommonNeighbors);

// Same access pattern as the gossip loop (random peer, random friend) —
// the workload the tie-strength cache serves. Naive row below for the
// speedup ratio.
void BM_TieStrengthFriendPairs(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 2000, 1);
  graph::TieStrengthIndex tie(g);
  Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    const auto v = nbrs[rng.below(nbrs.size())];
    benchmark::DoNotOptimize(tie.common_neighbors(u, v));
  }
}
BENCHMARK(BM_TieStrengthFriendPairs);

void BM_CommonNeighborsFriendPairs(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 2000, 1);
  Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    const auto v = nbrs[rng.below(nbrs.size())];
    benchmark::DoNotOptimize(g.common_neighbors(u, v));
  }
}
BENCHMARK(BM_CommonNeighborsFriendPairs);

/// Dense vertex program for the delivery benchmarks: every vertex floods
/// its social neighbourhood each round (~avg_degree messages per vertex, so
/// facebook @ 2500 vertices is >100k messages/round).
struct Flood {
  explicit Flood(const graph::SocialGraph& g) : graph(&g), sum(g.num_nodes(), 0) {}
  const graph::SocialGraph* graph;
  std::vector<std::uint64_t> sum;

  void compute(sim::VertexId v,
               std::span<const sim::Envelope<std::uint64_t>> inbox,
               sim::Mailbox<std::uint64_t>& out) {
    std::uint64_t acc = 1;
    for (const auto& m : inbox) acc += m.payload;
    sum[v] += acc;
    for (const auto w : graph->neighbors(v)) {
      out.send(w, acc % 1024);
    }
  }
};

/// Single-threaded replica of the pre-counting-sort delivery (fresh merged
/// vector + global O(M log M) comparison sort + offset rebuild every round)
/// — the in-binary baseline the counting-sort engine is measured against.
template <typename Program, typename TPayload>
class SortDeliveryEngine {
 public:
  SortDeliveryEngine(std::size_t n, Program& program)
      : n_(n), program_(program), offsets_(n + 1, 0) {}

  std::size_t step() {
    sim::EnvelopeArena<TPayload> outbox;
    for (std::size_t v = 0; v < n_; ++v) {
      const auto vid = static_cast<sim::VertexId>(v);
      sim::Mailbox<TPayload> mailbox(vid, outbox);
      program_.compute(vid,
                       std::span<const sim::Envelope<TPayload>>(
                           inbox_.data() + offsets_[v],
                           offsets_[v + 1] - offsets_[v]),
                       mailbox);
    }
    std::sort(outbox.begin(), outbox.end(),
              [](const auto& a, const auto& b) {
                if (a.dst != b.dst) return a.dst < b.dst;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    inbox_ = std::move(outbox);
    offsets_.assign(n_ + 1, 0);
    for (const auto& e : inbox_) ++offsets_[e.dst + 1];
    for (std::size_t v = 1; v <= n_; ++v) offsets_[v] += offsets_[v - 1];
    return inbox_.size();
  }

 private:
  std::size_t n_;
  Program& program_;
  sim::EnvelopeArena<TPayload> inbox_;
  std::vector<std::size_t> offsets_;
};

constexpr std::size_t kFloodVertices = 4200;  // >100k messages/round
constexpr int kFloodIterations = 12;  // pinned: counters must be exact in CI

void BM_SuperstepDelivery(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), kFloodVertices, 1);
  Flood program(g);
  sim::SuperstepEngine<Flood, std::uint64_t> engine(kFloodVertices, program);
  std::size_t messages = 0;
  for (int warm = 0; warm < 3; ++warm) messages = engine.step();
  const std::size_t growth_after_warmup = engine.buffer_growth_events();
  for (auto _ : state) {
    messages = engine.step();
  }
  if (engine.buffer_growth_events() != growth_after_warmup) {
    state.SkipWithError("steady-state step grew an engine buffer");
    return;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
  state.counters["messages_per_round"] =
      benchmark::Counter(static_cast<double>(messages));
}
BENCHMARK(BM_SuperstepDelivery)
    ->Iterations(kFloodIterations)
    ->Unit(benchmark::kMillisecond);

void BM_SuperstepDeliverySortBaseline(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), kFloodVertices, 1);
  Flood program(g);
  SortDeliveryEngine<Flood, std::uint64_t> engine(kFloodVertices, program);
  std::size_t messages = 0;
  for (int warm = 0; warm < 3; ++warm) messages = engine.step();
  for (auto _ : state) {
    messages = engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
  state.counters["messages_per_round"] =
      benchmark::Counter(static_cast<double>(messages));
}
BENCHMARK(BM_SuperstepDeliverySortBaseline)
    ->Iterations(kFloodIterations)
    ->Unit(benchmark::kMillisecond);

void BM_HolmeKimGenerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::holme_kim(n, 8, 0.6, ++seed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HolmeKimGenerate)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_SymphonyGreedyRoute(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 2000, 1);
  baselines::SymphonySystem sys(g, baselines::SymphonyParams{}, 1);
  sys.build();
  Rng rng(4);
  for (auto _ : state) {
    const auto a = static_cast<overlay::PeerId>(rng.below(2000));
    const auto b = static_cast<overlay::PeerId>(rng.below(2000));
    benchmark::DoNotOptimize(sys.route(a, b));
  }
}
BENCHMARK(BM_SymphonyGreedyRoute);

// Observability hot-path cost (run with SEL_OBS=off to see the disabled
// fast path — a single cached-flag branch).
void BM_ObsCounterAdd(benchmark::State& state) {
  auto& c = obs::MetricsRegistry::global().counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  auto& h = obs::MetricsRegistry::global().histogram("bench.histogram");
  double x = 0.0;
  for (auto _ : state) {
    h.observe(x);
    x += 0.1;
    if (x > 1000.0) x = 0.0;
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsScopedSpan(benchmark::State& state) {
  for (auto _ : state) {
    SEL_TRACE_SCOPE("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsScopedSpan);

// Provenance tracer cost on the publish path. With SEL_OBS=off this is the
// disabled fast path — a single cached-flag branch returning trace id 0.
// With SEL_OBS=on it pays the 1-in-N sampling decision (default N=64).
void BM_TraceBeginPublish(benchmark::State& state) {
  auto& tracer = obs::ProvenanceTracer::global();
  std::uint64_t msg = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.begin_publish(++msg, 7, 0.0));
  }
  tracer.reset();
}
BENCHMARK(BM_TraceBeginPublish);

// Same, with sampling effectively off (1-in-2^31): the sampled-out branch
// every non-traced publish takes under SEL_OBS=on.
void BM_TraceBeginPublishUnsampled(benchmark::State& state) {
  auto& tracer = obs::ProvenanceTracer::global();
  const std::size_t prev = tracer.sample_every();
  tracer.set_sample_every(1u << 31);
  std::uint64_t msg = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.begin_publish(++msg, 7, 0.0));
  }
  tracer.set_sample_every(prev);
  tracer.reset();
}
BENCHMARK(BM_TraceBeginPublishUnsampled);

// Hop recording for a sampled message (the per-edge cost of a traced
// dissemination); a no-op branch when tracing is disabled.
void BM_TraceRecordHop(benchmark::State& state) {
  auto& tracer = obs::ProvenanceTracer::global();
  tracer.reset();
  tracer.set_sample_every(1);
  const obs::TraceId trace = tracer.begin_publish(1, 7, 0.0);
  obs::HopRecord hop;
  hop.trace = trace == 0 ? 1 : trace;  // keep the hot path under SEL_OBS=off
  hop.msg = 1;
  hop.from = 7;
  hop.to = 8;
  hop.depth = 1;
  hop.send_s = 0.0;
  hop.arrive_s = 0.001;
  for (auto _ : state) {
    tracer.record_hop(hop);
  }
  tracer.set_sample_every(0);  // back to the SEL_TRACE_SAMPLE default
  tracer.reset();
}
BENCHMARK(BM_TraceRecordHop);

// Invariant-checker cost by level: kOff is the single-branch contract
// (check.hpp), kCheap the sampled default, kFull the complete ring walk —
// measured on the wired rebuild_ring() call site.
void BM_CheckRebuildRing(benchmark::State& state) {
  const check::ScopedLevel level(
      static_cast<check::Level>(state.range(1)));
  const auto n = static_cast<std::size_t>(state.range(0));
  overlay::RingSubstrate ov(n);
  Rng rng(3);
  for (overlay::PeerId p = 0; p < n; ++p) {
    ov.join(p, net::OverlayId(rng.uniform()));
  }
  for (auto _ : state) {
    ov.rebuild_ring();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CheckRebuildRing)
    ->ArgsProduct({{512, 2048}, {0, 1, 2}})
    ->ArgNames({"n", "sel_check"});

// Pure gate cost when disabled: what every wired call site pays at
// SEL_CHECK=off.
void BM_CheckEnabledOff(benchmark::State& state) {
  const check::ScopedLevel off(check::Level::kOff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check::enabled());
  }
}
BENCHMARK(BM_CheckEnabledOff);

void BM_SelectGossipRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), n, 1);
  core::SelectSystem sys(g, core::SelectParams{}, 1);
  sys.join_all();
  for (auto _ : state) {
    sys.run_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SelectGossipRound)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SelectBuildTree(benchmark::State& state) {
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), 1000, 1);
  core::SelectSystem sys(g, core::SelectParams{}, 1);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  Rng rng(5);
  for (auto _ : state) {
    const auto b = static_cast<overlay::PeerId>(rng.below(1000));
    benchmark::DoNotOptimize(ps.build_tree(b));
  }
}
BENCHMARK(BM_SelectBuildTree);

}  // namespace

// Custom main (instead of BENCHMARK_MAIN): after the benchmarks run, emit a
// RunReport next to the other harness artifacts so compare_reports.py can
// gate perf regressions (CI perf-smoke). The CSV path is only used to
// derive the report/trace file names; no CSV is written here.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sel::bench::write_run_report("micro",
                               sel::bench::output_path("micro.csv"));
  return 0;
}
