// Extension bench (paper Sec. V Discussion): multipath dissemination.
// "This issue can be optimized by having more than one paths to the
// subscribers in order to guarantee the transmission; however, it is
// unlikely to find paths of the same length and latency stability."
//
// Reports, per failure probability: delivery rate with the primary path
// only vs with a disjoint backup, plus the backup coverage and the hop
// stretch the paper predicts.
#include "bench/bench_common.hpp"
#include "pubsub/multipath.hpp"
#include "select/protocol.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "multipath — redundant paths under peer failures",
      "Sec. V (Discussion): multiple paths to guarantee transmission",
      "backup paths recover most failed deliveries at the cost of longer "
      "paths (positive stretch)");

  const std::size_t n = scaled(800, 200);
  const std::size_t trials = trial_count(2);
  const auto& profile = graph::profile_by_name("facebook");
  CsvWriter csv(bench::output_path("multipath.csv"),
                {"fail_probability", "single_path_delivery",
                 "single_path_half_width", "multi_path_delivery",
                 "multi_path_half_width", "backup_coverage",
                 "backup_stretch"});
  TablePrinter table({"P(fail)", "delivery (1 path)", "delivery (2 paths)",
                      "backup coverage", "stretch (hops)"});

  for (const double fail : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    const auto summary = sim::run_trials(
        trials, derive_seed(0x3a17, static_cast<std::uint64_t>(fail * 100)),
        [&](std::uint64_t seed) {
          const auto g = graph::make_dataset_graph(profile, n, seed);
          core::SelectSystem sys(g, core::SelectParams{}, seed);
          sys.build();
          std::vector<overlay::PeerId> publishers;
          for (overlay::PeerId p = 0; p < 15; ++p) {
            publishers.push_back(p * 29 %
                                 static_cast<overlay::PeerId>(n));
          }
          const auto result = pubsub::measure_fault_tolerance(
              sys, g, publishers, fail, 25, seed);
          return sim::MetricMap{
              {"single", result.single_path_delivery},
              {"single_hw", result.single_path_half_width},
              {"multi", result.multi_path_delivery},
              {"multi_hw", result.multi_path_half_width},
              {"coverage", result.backup_coverage},
              {"stretch", result.backup_stretch},
          };
        });
    // 95% Monte-Carlo half-widths (averaged across trials) bound how much
    // of the single-vs-multi gap could be estimator noise.
    table.add_row({fmt(fail),
                   fmt(100.0 * summary.mean("single"), 2) + "% ±" +
                       fmt(100.0 * summary.mean("single_hw"), 2),
                   fmt(100.0 * summary.mean("multi"), 2) + "% ±" +
                       fmt(100.0 * summary.mean("multi_hw"), 2),
                   fmt(100.0 * summary.mean("coverage"), 1) + "%",
                   fmt(summary.mean("stretch"))});
    csv.row({fail, summary.mean("single"), summary.mean("single_hw"),
             summary.mean("multi"), summary.mean("multi_hw"),
             summary.mean("coverage"), summary.mean("stretch")});
  }
  table.print();
  std::printf("\nwrote %s\n", csv.path().c_str());
  bench::write_run_report("multipath", csv.path());
  return 0;
}
