// Overlay comparison matrix: every overlay in the registry — SELECT, the
// five paper baselines, and the structured-overlay zoo (Kelips, Kademlia,
// socially-aware DHT, centrality-weighted SELECT) — measured through the
// one `overlay::Overlay` interface on the same graph and workload.
//
// Columns per system:
//   build_ms     wall time to construct the overlay (instrumentation only)
//   iters        convergence iterations (0 = non-iterative construction)
//   hops / ci95  social-lookup hop count (Fig. 2 metric)
//   success      fraction of lookups delivered
//   relays/path  relay ratio: non-subscriber intermediates per path (Fig. 3)
//   coverage     subscribers reached per dissemination tree
//   stretch      routed hops / BFS shortest path over the overlay's own
//                links — 1.0 means greedy routing is optimal on its topology
//   avail@churn  delivery availability with 20% of peers offline after
//                maintenance rounds (Fig. 6 condition)
//
// Adding an overlay to the registry adds a row here; no harness edits.
#include <queue>

#include "bench/bench_common.hpp"
#include "obs/time.hpp"
#include "overlay/registry.hpp"
#include "pubsub/metrics.hpp"

namespace {

using sel::overlay::kInvalidPeer;
using sel::overlay::Overlay;
using sel::overlay::PeerId;

/// BFS hop distance from `src` to `dst` over the overlay's link graph
/// (neighbors() closure), or 0 when unreachable. The denominator of the
/// stretch metric: the best any routing scheme could do on this topology.
std::size_t bfs_hops(const Overlay& ov, PeerId src, PeerId dst) {
  if (src == dst) return 0;
  const std::size_t n = ov.num_peers();
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<bool> seen(n, false);
  std::queue<PeerId> frontier;
  frontier.push(src);
  seen[src] = true;
  while (!frontier.empty()) {
    const PeerId u = frontier.front();
    frontier.pop();
    bool found = false;
    ov.for_each_neighbor(u, [&](PeerId v) {
      if (v >= n || seen[v] || found) return;
      seen[v] = true;
      dist[v] = dist[u] + 1;
      if (v == dst) {
        found = true;
        return;
      }
      frontier.push(v);
    });
    if (seen[dst]) return dist[dst];
  }
  return 0;
}

struct StretchResult {
  sel::RunningStats stretch;
  std::size_t probes = 0;
};

/// Routes sampled (publisher, friend) pairs and divides the routed hop
/// count by the BFS distance over the same links.
StretchResult measure_stretch(const Overlay& ov, std::size_t pairs,
                              std::uint64_t seed) {
  StretchResult out;
  const auto& g = ov.social();
  sel::Rng rng(sel::derive_seed(seed, 0x57E7C4));
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto src = static_cast<PeerId>(rng.below(g.num_nodes()));
    const auto& friends = g.neighbors(src);
    if (friends.empty()) continue;
    const PeerId dst = friends[rng.below(friends.size())];
    ++out.probes;
    const auto route = ov.route(src, dst);
    if (!route.success) continue;
    const std::size_t shortest = bfs_hops(ov, src, dst);
    if (shortest == 0) continue;  // unreachable on links: routed via luck
    out.stretch.add(static_cast<double>(route.hops()) /
                    static_cast<double>(shortest));
  }
  return out;
}

}  // namespace

int main() {
  using namespace sel;
  bench::print_banner(
      "overlay matrix — every registered overlay, one interface",
      "comparison platform for SELECT vs structured-overlay baselines",
      "SELECT: ~1-2 hops, relay ratio ~0, stretch ~1; DHTs: log-N hops, "
      "relay-heavy");

  const std::size_t n = scaled(600, 150);
  const std::uint64_t seed = 0x0E11A7;
  const std::size_t lookups = scaled(250, 60);
  const std::size_t stretch_pairs = scaled(60, 20);
  const double churn_fraction = 0.2;

  const auto g = graph::make_dataset_graph(graph::profile_by_name("facebook"),
                                           n, seed);
  const auto publishers = bench::workload_publishers(g, 15, seed);

  CsvWriter csv(bench::output_path("overlay_matrix.csv"),
                {"system", "build_ms", "iterations", "hops", "hops_ci95",
                 "success_rate", "relays_per_path", "coverage", "stretch",
                 "avail_churn"});
  TablePrinter table({"system", "build_ms", "iters", "hops", "success",
                      "relays/path", "coverage", "stretch", "avail@churn"});

  auto& registry = overlay::OverlayRegistry::instance();
  auto& metrics = obs::MetricsRegistry::global();
  const auto names = registry.names();
  std::printf("registered overlays: %zu\n\n", names.size());

  for (const auto& name : names) {
    auto ov = registry.create(name, g, {.seed = seed});

    const auto t0 = obs::wall_now();
    ov->build();
    const double build_ms = obs::ms_between(t0, obs::wall_now());

    const overlay::PubSubSystem ps(*ov);
    const auto hops = pubsub::measure_hops(ps, lookups, seed);
    const auto relays = pubsub::measure_relays(ps, publishers);
    const auto stretch = measure_stretch(*ov, stretch_pairs, seed);

    // Churn phase: knock a fixed fraction offline, let the overlay mend
    // itself, and measure what the trees still deliver.
    Rng churn_rng(derive_seed(seed, 0xC0DE));
    for (PeerId p = 0; p < n; ++p) {
      if (churn_rng.chance(churn_fraction)) ov->set_peer_online(p, false);
    }
    const std::size_t maintenance_rounds = 3;
    for (std::size_t r = 0; r < maintenance_rounds; ++r) {
      ov->maintenance_round();
    }
    const double avail = pubsub::measure_availability(ps, publishers)
                             .availability();

    // Per-overlay counter families (pre-registered by the registry): the
    // expected report pins these, so the CI smoke job catches routing
    // regressions in any single overlay.
    const std::string prefix = "overlay." + name;
    metrics.counter(prefix + ".routes_attempted")
        .add(static_cast<std::int64_t>(hops.attempted + stretch.probes));
    metrics.counter(prefix + ".routes_ok")
        .add(static_cast<std::int64_t>(hops.delivered +
                                       stretch.stretch.count()));
    metrics.counter(prefix + ".routes_failed")
        .add(static_cast<std::int64_t>((hops.attempted - hops.delivered) +
                                       (stretch.probes -
                                        stretch.stretch.count())));
    metrics.counter(prefix + ".maintenance_rounds")
        .add(static_cast<std::int64_t>(maintenance_rounds));
    metrics.gauge(prefix + ".relay_ratio").set(relays.relays_per_path.mean());
    metrics.gauge(prefix + ".delivery_rate").set(hops.success_rate());
    metrics.gauge(prefix + ".avail_churn").set(avail);

    table.add_row({name, fmt(build_ms, 1),
                   std::to_string(ov->build_iterations()),
                   fmt(hops.hops.mean()),
                   fmt(100.0 * hops.success_rate(), 1) + "%",
                   fmt(relays.relays_per_path.mean(), 3),
                   fmt(100.0 * relays.coverage.mean(), 1) + "%",
                   fmt(stretch.stretch.mean(), 3),
                   fmt(100.0 * avail, 1) + "%"});
    csv.row(std::vector<std::string>{
        name, fmt(build_ms, 3), std::to_string(ov->build_iterations()),
        fmt(hops.hops.mean(), 4), fmt(hops.hops.ci95_halfwidth(), 4),
        fmt(hops.success_rate(), 4), fmt(relays.relays_per_path.mean(), 4),
        fmt(relays.coverage.mean(), 4), fmt(stretch.stretch.mean(), 4),
        fmt(avail, 4)});
  }

  table.print();
  std::printf("\nwrote %s\n", csv.path().c_str());
  bench::write_run_report("overlay_matrix", csv.path(),
                          {{"n", std::to_string(n)},
                           {"seed", std::to_string(seed)},
                           {"overlays", std::to_string(names.size())}});
  return 0;
}
