// Strong-scaling of the vertex-centric superstep engine (the paper runs its
// simulations on a 20-node Flink cluster; our in-process engine parallelizes
// across worker threads). Measures wall time per superstep of a
// message-heavy vertex program at 1..hardware threads, and verifies the
// deterministic-delivery guarantee costs us nothing in scaling.
// A second sweep builds the full SELECT system at three graph sizes and
// reports `mem.bytes_per_peer` (RSS over peers) plus the tracked subsystem
// footprint at each — the per-node state cost ROADMAP item 1 budgets.
#include <chrono>

#include "bench/bench_common.hpp"
#include "graph/profiles.hpp"
#include "obs/memory.hpp"
#include "select/protocol.hpp"
#include "sim/superstep.hpp"

namespace {

using namespace sel;

/// Vertex program: every vertex forwards an accumulating counter to all its
/// social neighbours each round — a dense communication pattern.
struct GossipFlood {
  explicit GossipFlood(const graph::SocialGraph& g) : graph(&g), sum(g.num_nodes(), 0) {}

  const graph::SocialGraph* graph;
  std::vector<std::uint64_t> sum;

  void compute(sim::VertexId v, std::span<const sim::Envelope<std::uint64_t>> inbox,
               sim::Mailbox<std::uint64_t>& out) {
    std::uint64_t acc = 1;
    for (const auto& m : inbox) acc += m.payload;
    sum[v] += acc;
    for (const auto w : graph->neighbors(v)) {
      out.send(w, acc % 1024);
    }
  }
};

}  // namespace

int main() {
  using namespace sel;
  bench::print_banner(
      "superstep strong scaling",
      "substrate: vertex-centric engine (stand-in for the paper's 20-node "
      "Flink/Gelly cluster)",
      "speedup with threads; results identical across thread counts");

  const std::size_t n = scaled(4000, 512);
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), n, 1);
  const std::size_t rounds = 6;
  const unsigned max_threads =
      std::max(1u, std::thread::hardware_concurrency());

  CsvWriter csv(bench::output_path("scaling.csv"), {"threads", "seconds_per_round", "speedup"});
  TablePrinter table({"threads", "s/round", "speedup", "checksum"});
  double baseline = 0.0;

  for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
    GossipFlood program(g);
    sim::SuperstepEngine<GossipFlood, std::uint64_t> engine(
        n, program, Executor::pooled(threads));
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) engine.step();
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double per_round = elapsed / static_cast<double>(rounds);
    if (threads == 1) baseline = per_round;
    std::uint64_t checksum = 0;
    for (const auto s : program.sum) checksum ^= s * 0x9e3779b97f4a7c15ULL;
    table.add_row({std::to_string(threads), fmt(per_round, 4),
                   fmt(baseline / per_round), fmt(static_cast<double>(checksum % 100000), 0)});
    csv.row({static_cast<double>(threads), per_round, baseline / per_round});
  }
  table.print();
  std::printf("\nidentical checksums across rows confirm determinism is "
              "independent of thread count\nwrote %s\n",
              csv.path().c_str());

  // -- memory-per-peer sweep ------------------------------------------------
  // One full SELECT build per size; each row is sampled while the system is
  // alive, then the system is torn down so sizes do not stack. RSS is
  // monotone across the process (freed pages rarely return to the kernel),
  // so ascending sizes keep bytes_per_peer honest at the largest N and
  // conservative at the smaller ones; the tracked mem.* values are exact.
  CsvWriter mem_csv(bench::output_path("scaling_memory.csv"),
                    {"n", "graph_live_bytes", "overlay_live_bytes",
                     "tracked_live_bytes", "rss_bytes", "bytes_per_peer"});
  TablePrinter mem_table({"n", "tracked", "rss", "bytes/peer"});
  for (const std::size_t size : bench::default_sizes()) {
    {
      const auto sg = graph::make_dataset_graph(
          graph::profile_by_name("facebook"), size, 1);
      net::NetworkModel net(sg.num_nodes(), 1);
      core::SelectSystem sys(sg, core::SelectParams{}, 1, &net);
      sys.build();
      obs::poll_memory_gauges();
      const auto mem = obs::memory_values();
      const auto at = [&mem](const char* key) {
        const auto it = mem.find(key);
        return it == mem.end() ? 0.0 : it->second;
      };
      mem_csv.row({static_cast<double>(size), at("mem.graph.live_bytes"),
                   at("mem.overlay.live_bytes"),
                   at("mem.tracked.live_bytes"), at("mem.rss_bytes"),
                   at("mem.bytes_per_peer")});
      mem_table.add_row({std::to_string(size),
                         fmt(at("mem.tracked.live_bytes"), 0),
                         fmt(at("mem.rss_bytes"), 0),
                         fmt(at("mem.bytes_per_peer"), 0)});
      // A per-size time-series point so the report carries the sweep, not
      // just the final size's gauges.
      obs::RoundSampler::global().sample(
          "scaling.memory", size,
          {{"mem.bytes_per_peer", at("mem.bytes_per_peer")},
           {"mem.tracked.live_bytes", at("mem.tracked.live_bytes")},
           {"mem.graph.live_bytes", at("mem.graph.live_bytes")},
           {"mem.overlay.live_bytes", at("mem.overlay.live_bytes")}});
    }
  }
  mem_table.print();
  std::printf("wrote %s\n", mem_csv.path().c_str());
  bench::write_run_report("scaling", csv.path());
  return 0;
}
