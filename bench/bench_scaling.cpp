// Strong-scaling of the vertex-centric superstep engine (the paper runs its
// simulations on a 20-node Flink cluster; our in-process engine parallelizes
// across worker threads). Measures wall time per superstep of a
// message-heavy vertex program at 1..hardware threads, and verifies the
// deterministic-delivery guarantee costs us nothing in scaling.
#include <chrono>

#include "bench/bench_common.hpp"
#include "graph/profiles.hpp"
#include "sim/superstep.hpp"

namespace {

using namespace sel;

/// Vertex program: every vertex forwards an accumulating counter to all its
/// social neighbours each round — a dense communication pattern.
struct GossipFlood {
  explicit GossipFlood(const graph::SocialGraph& g) : graph(&g), sum(g.num_nodes(), 0) {}

  const graph::SocialGraph* graph;
  std::vector<std::uint64_t> sum;

  void compute(sim::VertexId v, std::span<const sim::Envelope<std::uint64_t>> inbox,
               sim::Mailbox<std::uint64_t>& out) {
    std::uint64_t acc = 1;
    for (const auto& m : inbox) acc += m.payload;
    sum[v] += acc;
    for (const auto w : graph->neighbors(v)) {
      out.send(w, acc % 1024);
    }
  }
};

}  // namespace

int main() {
  using namespace sel;
  bench::print_banner(
      "superstep strong scaling",
      "substrate: vertex-centric engine (stand-in for the paper's 20-node "
      "Flink/Gelly cluster)",
      "speedup with threads; results identical across thread counts");

  const std::size_t n = scaled(4000, 512);
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), n, 1);
  const std::size_t rounds = 6;
  const unsigned max_threads =
      std::max(1u, std::thread::hardware_concurrency());

  CsvWriter csv(bench::output_path("scaling.csv"), {"threads", "seconds_per_round", "speedup"});
  TablePrinter table({"threads", "s/round", "speedup", "checksum"});
  double baseline = 0.0;

  for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
    GossipFlood program(g);
    sim::SuperstepEngine<GossipFlood, std::uint64_t> engine(
        n, program, Executor::pooled(threads));
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) engine.step();
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double per_round = elapsed / static_cast<double>(rounds);
    if (threads == 1) baseline = per_round;
    std::uint64_t checksum = 0;
    for (const auto s : program.sum) checksum ^= s * 0x9e3779b97f4a7c15ULL;
    table.add_row({std::to_string(threads), fmt(per_round, 4),
                   fmt(baseline / per_round), fmt(static_cast<double>(checksum % 100000), 0)});
    csv.row({static_cast<double>(threads), per_round, baseline / per_round});
  }
  table.print();
  std::printf("\nidentical checksums across rows confirm determinism is "
              "independent of thread count\nwrote %s\n",
              csv.path().c_str());
  bench::write_run_report("scaling", csv.path());
  return 0;
}
