// Sec. IV-D preliminary: simultaneous connectivity. A central peer connects
// to all others and pushes a 1.2 MB fragment to every connection at once.
// The paper finds the total transfer time grows linearly in the number of
// simultaneous transfers: the bottleneck is the shared uplink, not the
// connection count.
#include "bench/bench_common.hpp"
#include "net/network_model.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "star transfer — simultaneous 1.2MB sends",
      "Sec. IV-D: total time of simultaneous transfers vs number of "
      "connections (central-peer star)",
      "linear growth in the number of simultaneous transfers");

  const std::size_t n = scaled(512, 128);
  net::NetworkModel net(n, 7);
  CsvWriter csv(bench::output_path("star_transfer.csv"),
                {"connections", "total_time_s", "time_per_receiver_s"});
  TablePrinter table({"connections", "total time (s)", "s/receiver"});

  for (std::size_t fanout = 1; fanout <= std::min<std::size_t>(n - 1, 256);
       fanout *= 2) {
    std::vector<std::size_t> receivers;
    receivers.reserve(fanout);
    for (std::size_t r = 1; r <= fanout; ++r) receivers.push_back(r);
    const double total =
        net.star_broadcast_time_s(0, receivers, net::kDefaultPayloadBytes);
    table.add_row({std::to_string(fanout), fmt(total),
                   fmt(total / static_cast<double>(fanout), 3)});
    csv.row({static_cast<double>(fanout), total,
             total / static_cast<double>(fanout)});
  }
  table.print();
  std::printf("\nwrote %s\n", csv.path().c_str());
  bench::write_run_report("star_transfer", csv.path());
  return 0;
}
