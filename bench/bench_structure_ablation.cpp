// Structure-vs-degree ablation: is SELECT's advantage due to the *social
// structure* (clustering, communities) or merely the degree sequence?
//
// We run SELECT and Symphony on (a) the Facebook-profile graph and (b) a
// degree-preserving randomization of it (configuration-model null: same
// degrees, clustering destroyed). If SELECT's relay/hops wins survived the
// rewiring they would be degree artifacts; they should instead shrink
// substantially, because the LSH bucket coverage and the subscriber mesh
// both feed on shared neighbourhoods.
#include "bench/bench_common.hpp"
#include "baselines/factory.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "pubsub/metrics.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "structure ablation — social graph vs degree-matched random graph",
      "design-choice analysis (DESIGN.md §6): why the social structure "
      "matters",
      "SELECT's relay advantage shrinks on the rewired graph; hops/relays "
      "rise toward Symphony's");

  const std::size_t n = scaled(800, 200);
  const std::size_t trials = trial_count(2);
  const auto& profile = graph::profile_by_name("facebook");
  CsvWriter csv(bench::output_path("structure_ablation.csv"),
                {"graph", "system", "clustering", "hops", "relays_per_path"});
  TablePrinter table(
      {"graph", "system", "clustering", "hops", "relays/path"});

  for (const bool rewired : {false, true}) {
    for (const auto name : {"select", "symphony"}) {
      const auto summary = sim::run_trials(
          trials, derive_seed(0x57ab, rewired ? 1 : 0),
          [&](std::uint64_t seed) {
            auto g = graph::make_dataset_graph(profile, n, seed);
            if (rewired) {
              g = graph::degree_preserving_rewire(g, 10.0, seed);
            }
            const double clustering = graph::clustering_coefficient(
                g, std::min<std::size_t>(n, 400), seed);
            auto sys = baselines::make_system(name, g, {.seed = seed});
            sys->build();
            const auto hops = pubsub::measure_hops(*sys, 250, seed);
            const auto publishers = bench::workload_publishers(g, 20, seed);
            const auto relays = pubsub::measure_relays(*sys, publishers);
            return sim::MetricMap{
                {"clustering", clustering},
                {"hops", hops.hops.mean()},
                {"relays", relays.relays_per_path.mean()},
            };
          });
      const char* graph_label = rewired ? "rewired" : "social";
      table.add_row({graph_label, std::string(name),
                     fmt(summary.mean("clustering"), 3),
                     fmt(summary.mean("hops")),
                     fmt(summary.mean("relays"), 3)});
      csv.row(std::vector<std::string>{
          graph_label, std::string(name), fmt(summary.mean("clustering"), 4),
          fmt(summary.mean("hops"), 4), fmt(summary.mean("relays"), 4)});
    }
  }
  table.print();
  std::printf("\nwrote %s\n", csv.path().c_str());
  bench::write_run_report("structure_ablation", csv.path());
  return 0;
}
