// Table II: dataset statistics. Validates that the synthetic dataset
// profiles reproduce the structure of the paper's four social networks at
// the configured scale (users, connections, average degree — plus the
// clustering and degree-skew the synthetic generator is tuned for).
#include "bench/bench_common.hpp"
#include "graph/metrics.hpp"

int main() {
  using namespace sel;
  bench::print_banner(
      "Table II — data sets",
      "Table II: users / connections / average degree per data set",
      "generated avg degree tracks the paper's column; heavy-tailed degrees "
      "with high clustering");

  const std::size_t n = scaled(2000, 256);
  TablePrinter table({"dataset", "paper avg deg", "users", "connections",
                      "avg degree", "max degree", "clustering", "alpha"});
  CsvWriter csv(bench::output_path("table2_datasets.csv"),
                {"dataset", "users", "connections", "avg_degree",
                 "max_degree", "clustering", "powerlaw_alpha"});

  for (const auto& profile : graph::all_profiles()) {
    const auto g = graph::make_dataset_graph(profile, n, 42);
    const double clustering =
        graph::clustering_coefficient(g, std::min<std::size_t>(n, 800), 7);
    const double alpha = graph::powerlaw_alpha(g);
    table.add_row({std::string(profile.name), fmt(profile.paper_avg_degree),
                   std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()), fmt(g.average_degree()),
                   std::to_string(g.max_degree()), fmt(clustering, 3),
                   fmt(alpha)});
    csv.row(std::vector<std::string>{
        std::string(profile.name), std::to_string(g.num_nodes()),
        std::to_string(g.num_edges()), fmt(g.average_degree()),
        std::to_string(g.max_degree()), fmt(clustering, 4), fmt(alpha, 3)});
  }
  table.print();
  std::printf("\npaper reference (full scale): facebook 63,731 users "
              "deg 25.6 | twitter 3,990,418 deg 73.9 | slashdot 82,168 "
              "deg 11.5 | gplus 107,614 deg 127\n");
  bench::write_run_report("table2_datasets", csv.path());
  return 0;
}
