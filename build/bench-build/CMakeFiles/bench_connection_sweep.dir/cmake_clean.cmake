file(REMOVE_RECURSE
  "../bench/bench_connection_sweep"
  "../bench/bench_connection_sweep.pdb"
  "CMakeFiles/bench_connection_sweep.dir/bench_connection_sweep.cpp.o"
  "CMakeFiles/bench_connection_sweep.dir/bench_connection_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connection_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
