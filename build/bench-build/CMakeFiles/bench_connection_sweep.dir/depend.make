# Empty dependencies file for bench_connection_sweep.
# This may be replaced when dependencies are built.
