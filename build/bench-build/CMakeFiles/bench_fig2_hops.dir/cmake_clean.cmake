file(REMOVE_RECURSE
  "../bench/bench_fig2_hops"
  "../bench/bench_fig2_hops.pdb"
  "CMakeFiles/bench_fig2_hops.dir/bench_fig2_hops.cpp.o"
  "CMakeFiles/bench_fig2_hops.dir/bench_fig2_hops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
