file(REMOVE_RECURSE
  "../bench/bench_fig3_relays"
  "../bench/bench_fig3_relays.pdb"
  "CMakeFiles/bench_fig3_relays.dir/bench_fig3_relays.cpp.o"
  "CMakeFiles/bench_fig3_relays.dir/bench_fig3_relays.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_relays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
