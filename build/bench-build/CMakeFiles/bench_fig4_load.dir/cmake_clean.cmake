file(REMOVE_RECURSE
  "../bench/bench_fig4_load"
  "../bench/bench_fig4_load.pdb"
  "CMakeFiles/bench_fig4_load.dir/bench_fig4_load.cpp.o"
  "CMakeFiles/bench_fig4_load.dir/bench_fig4_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
