# Empty dependencies file for bench_fig4_load.
# This may be replaced when dependencies are built.
