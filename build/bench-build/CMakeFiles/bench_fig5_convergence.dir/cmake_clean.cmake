file(REMOVE_RECURSE
  "../bench/bench_fig5_convergence"
  "../bench/bench_fig5_convergence.pdb"
  "CMakeFiles/bench_fig5_convergence.dir/bench_fig5_convergence.cpp.o"
  "CMakeFiles/bench_fig5_convergence.dir/bench_fig5_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
