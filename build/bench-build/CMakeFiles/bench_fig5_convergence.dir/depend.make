# Empty dependencies file for bench_fig5_convergence.
# This may be replaced when dependencies are built.
