file(REMOVE_RECURSE
  "../bench/bench_fig6_churn"
  "../bench/bench_fig6_churn.pdb"
  "CMakeFiles/bench_fig6_churn.dir/bench_fig6_churn.cpp.o"
  "CMakeFiles/bench_fig6_churn.dir/bench_fig6_churn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
