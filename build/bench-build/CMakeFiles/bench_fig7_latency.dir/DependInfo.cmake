
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_latency.cpp" "bench-build/CMakeFiles/bench_fig7_latency.dir/bench_fig7_latency.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig7_latency.dir/bench_fig7_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pubsub/CMakeFiles/select_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/select_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/select_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/select_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/select_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/select_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/select_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/select_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/select_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
