file(REMOVE_RECURSE
  "../bench/bench_fig7_latency"
  "../bench/bench_fig7_latency.pdb"
  "CMakeFiles/bench_fig7_latency.dir/bench_fig7_latency.cpp.o"
  "CMakeFiles/bench_fig7_latency.dir/bench_fig7_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
