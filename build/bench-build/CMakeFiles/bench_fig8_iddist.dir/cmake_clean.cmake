file(REMOVE_RECURSE
  "../bench/bench_fig8_iddist"
  "../bench/bench_fig8_iddist.pdb"
  "CMakeFiles/bench_fig8_iddist.dir/bench_fig8_iddist.cpp.o"
  "CMakeFiles/bench_fig8_iddist.dir/bench_fig8_iddist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_iddist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
