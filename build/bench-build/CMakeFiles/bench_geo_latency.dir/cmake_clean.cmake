file(REMOVE_RECURSE
  "../bench/bench_geo_latency"
  "../bench/bench_geo_latency.pdb"
  "CMakeFiles/bench_geo_latency.dir/bench_geo_latency.cpp.o"
  "CMakeFiles/bench_geo_latency.dir/bench_geo_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
