# Empty compiler generated dependencies file for bench_geo_latency.
# This may be replaced when dependencies are built.
