file(REMOVE_RECURSE
  "../bench/bench_multipath"
  "../bench/bench_multipath.pdb"
  "CMakeFiles/bench_multipath.dir/bench_multipath.cpp.o"
  "CMakeFiles/bench_multipath.dir/bench_multipath.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
