# Empty dependencies file for bench_multipath.
# This may be replaced when dependencies are built.
