file(REMOVE_RECURSE
  "../bench/bench_star_transfer"
  "../bench/bench_star_transfer.pdb"
  "CMakeFiles/bench_star_transfer.dir/bench_star_transfer.cpp.o"
  "CMakeFiles/bench_star_transfer.dir/bench_star_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
