# Empty dependencies file for bench_star_transfer.
# This may be replaced when dependencies are built.
