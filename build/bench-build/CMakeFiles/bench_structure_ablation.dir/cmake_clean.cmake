file(REMOVE_RECURSE
  "../bench/bench_structure_ablation"
  "../bench/bench_structure_ablation.pdb"
  "CMakeFiles/bench_structure_ablation.dir/bench_structure_ablation.cpp.o"
  "CMakeFiles/bench_structure_ablation.dir/bench_structure_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structure_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
