file(REMOVE_RECURSE
  "../bench/bench_table2_datasets"
  "../bench/bench_table2_datasets.pdb"
  "CMakeFiles/bench_table2_datasets.dir/bench_table2_datasets.cpp.o"
  "CMakeFiles/bench_table2_datasets.dir/bench_table2_datasets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
