file(REMOVE_RECURSE
  "CMakeFiles/churn_survival.dir/churn_survival.cpp.o"
  "CMakeFiles/churn_survival.dir/churn_survival.cpp.o.d"
  "churn_survival"
  "churn_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
