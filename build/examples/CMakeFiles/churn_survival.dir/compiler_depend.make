# Empty compiler generated dependencies file for churn_survival.
# This may be replaced when dependencies are built.
