file(REMOVE_RECURSE
  "CMakeFiles/dataset_runner.dir/dataset_runner.cpp.o"
  "CMakeFiles/dataset_runner.dir/dataset_runner.cpp.o.d"
  "dataset_runner"
  "dataset_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
