# Empty dependencies file for dataset_runner.
# This may be replaced when dependencies are built.
