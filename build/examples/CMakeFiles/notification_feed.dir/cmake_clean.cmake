file(REMOVE_RECURSE
  "CMakeFiles/notification_feed.dir/notification_feed.cpp.o"
  "CMakeFiles/notification_feed.dir/notification_feed.cpp.o.d"
  "notification_feed"
  "notification_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notification_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
