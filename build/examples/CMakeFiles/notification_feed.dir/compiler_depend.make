# Empty compiler generated dependencies file for notification_feed.
# This may be replaced when dependencies are built.
