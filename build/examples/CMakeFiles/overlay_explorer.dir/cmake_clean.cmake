file(REMOVE_RECURSE
  "CMakeFiles/overlay_explorer.dir/overlay_explorer.cpp.o"
  "CMakeFiles/overlay_explorer.dir/overlay_explorer.cpp.o.d"
  "overlay_explorer"
  "overlay_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
