# Empty compiler generated dependencies file for overlay_explorer.
# This may be replaced when dependencies are built.
