file(REMOVE_RECURSE
  "CMakeFiles/select_baselines.dir/bayeux.cpp.o"
  "CMakeFiles/select_baselines.dir/bayeux.cpp.o.d"
  "CMakeFiles/select_baselines.dir/factory.cpp.o"
  "CMakeFiles/select_baselines.dir/factory.cpp.o.d"
  "CMakeFiles/select_baselines.dir/omen.cpp.o"
  "CMakeFiles/select_baselines.dir/omen.cpp.o.d"
  "CMakeFiles/select_baselines.dir/random_mesh.cpp.o"
  "CMakeFiles/select_baselines.dir/random_mesh.cpp.o.d"
  "CMakeFiles/select_baselines.dir/symphony.cpp.o"
  "CMakeFiles/select_baselines.dir/symphony.cpp.o.d"
  "CMakeFiles/select_baselines.dir/vitis.cpp.o"
  "CMakeFiles/select_baselines.dir/vitis.cpp.o.d"
  "libselect_baselines.a"
  "libselect_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
