file(REMOVE_RECURSE
  "libselect_baselines.a"
)
