# Empty dependencies file for select_baselines.
# This may be replaced when dependencies are built.
