file(REMOVE_RECURSE
  "CMakeFiles/select_common.dir/bitset.cpp.o"
  "CMakeFiles/select_common.dir/bitset.cpp.o.d"
  "CMakeFiles/select_common.dir/csv.cpp.o"
  "CMakeFiles/select_common.dir/csv.cpp.o.d"
  "CMakeFiles/select_common.dir/env.cpp.o"
  "CMakeFiles/select_common.dir/env.cpp.o.d"
  "CMakeFiles/select_common.dir/histogram.cpp.o"
  "CMakeFiles/select_common.dir/histogram.cpp.o.d"
  "CMakeFiles/select_common.dir/log.cpp.o"
  "CMakeFiles/select_common.dir/log.cpp.o.d"
  "CMakeFiles/select_common.dir/rng.cpp.o"
  "CMakeFiles/select_common.dir/rng.cpp.o.d"
  "CMakeFiles/select_common.dir/stats.cpp.o"
  "CMakeFiles/select_common.dir/stats.cpp.o.d"
  "CMakeFiles/select_common.dir/table.cpp.o"
  "CMakeFiles/select_common.dir/table.cpp.o.d"
  "CMakeFiles/select_common.dir/thread_pool.cpp.o"
  "CMakeFiles/select_common.dir/thread_pool.cpp.o.d"
  "libselect_common.a"
  "libselect_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
