file(REMOVE_RECURSE
  "libselect_common.a"
)
