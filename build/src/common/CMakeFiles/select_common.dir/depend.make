# Empty dependencies file for select_common.
# This may be replaced when dependencies are built.
