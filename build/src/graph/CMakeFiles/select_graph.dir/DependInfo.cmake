
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/select_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/select_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/graph/CMakeFiles/select_graph.dir/metrics.cpp.o" "gcc" "src/graph/CMakeFiles/select_graph.dir/metrics.cpp.o.d"
  "/root/repo/src/graph/profiles.cpp" "src/graph/CMakeFiles/select_graph.dir/profiles.cpp.o" "gcc" "src/graph/CMakeFiles/select_graph.dir/profiles.cpp.o.d"
  "/root/repo/src/graph/snap_loader.cpp" "src/graph/CMakeFiles/select_graph.dir/snap_loader.cpp.o" "gcc" "src/graph/CMakeFiles/select_graph.dir/snap_loader.cpp.o.d"
  "/root/repo/src/graph/social_graph.cpp" "src/graph/CMakeFiles/select_graph.dir/social_graph.cpp.o" "gcc" "src/graph/CMakeFiles/select_graph.dir/social_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/select_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
