file(REMOVE_RECURSE
  "CMakeFiles/select_graph.dir/generators.cpp.o"
  "CMakeFiles/select_graph.dir/generators.cpp.o.d"
  "CMakeFiles/select_graph.dir/metrics.cpp.o"
  "CMakeFiles/select_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/select_graph.dir/profiles.cpp.o"
  "CMakeFiles/select_graph.dir/profiles.cpp.o.d"
  "CMakeFiles/select_graph.dir/snap_loader.cpp.o"
  "CMakeFiles/select_graph.dir/snap_loader.cpp.o.d"
  "CMakeFiles/select_graph.dir/social_graph.cpp.o"
  "CMakeFiles/select_graph.dir/social_graph.cpp.o.d"
  "libselect_graph.a"
  "libselect_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
