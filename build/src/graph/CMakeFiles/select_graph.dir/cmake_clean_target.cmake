file(REMOVE_RECURSE
  "libselect_graph.a"
)
