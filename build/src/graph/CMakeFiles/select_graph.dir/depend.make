# Empty dependencies file for select_graph.
# This may be replaced when dependencies are built.
