file(REMOVE_RECURSE
  "CMakeFiles/select_lsh.dir/lsh.cpp.o"
  "CMakeFiles/select_lsh.dir/lsh.cpp.o.d"
  "libselect_lsh.a"
  "libselect_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
