file(REMOVE_RECURSE
  "libselect_lsh.a"
)
