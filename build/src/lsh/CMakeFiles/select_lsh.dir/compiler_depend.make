# Empty compiler generated dependencies file for select_lsh.
# This may be replaced when dependencies are built.
