file(REMOVE_RECURSE
  "CMakeFiles/select_net.dir/id_space.cpp.o"
  "CMakeFiles/select_net.dir/id_space.cpp.o.d"
  "CMakeFiles/select_net.dir/network_model.cpp.o"
  "CMakeFiles/select_net.dir/network_model.cpp.o.d"
  "libselect_net.a"
  "libselect_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
