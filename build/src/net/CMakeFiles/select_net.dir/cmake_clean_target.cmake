file(REMOVE_RECURSE
  "libselect_net.a"
)
