# Empty dependencies file for select_net.
# This may be replaced when dependencies are built.
