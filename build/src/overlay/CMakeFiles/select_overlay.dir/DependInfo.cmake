
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/overlay.cpp" "src/overlay/CMakeFiles/select_overlay.dir/overlay.cpp.o" "gcc" "src/overlay/CMakeFiles/select_overlay.dir/overlay.cpp.o.d"
  "/root/repo/src/overlay/serialize.cpp" "src/overlay/CMakeFiles/select_overlay.dir/serialize.cpp.o" "gcc" "src/overlay/CMakeFiles/select_overlay.dir/serialize.cpp.o.d"
  "/root/repo/src/overlay/system.cpp" "src/overlay/CMakeFiles/select_overlay.dir/system.cpp.o" "gcc" "src/overlay/CMakeFiles/select_overlay.dir/system.cpp.o.d"
  "/root/repo/src/overlay/tree.cpp" "src/overlay/CMakeFiles/select_overlay.dir/tree.cpp.o" "gcc" "src/overlay/CMakeFiles/select_overlay.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/select_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/select_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/select_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
