file(REMOVE_RECURSE
  "CMakeFiles/select_overlay.dir/overlay.cpp.o"
  "CMakeFiles/select_overlay.dir/overlay.cpp.o.d"
  "CMakeFiles/select_overlay.dir/serialize.cpp.o"
  "CMakeFiles/select_overlay.dir/serialize.cpp.o.d"
  "CMakeFiles/select_overlay.dir/system.cpp.o"
  "CMakeFiles/select_overlay.dir/system.cpp.o.d"
  "CMakeFiles/select_overlay.dir/tree.cpp.o"
  "CMakeFiles/select_overlay.dir/tree.cpp.o.d"
  "libselect_overlay.a"
  "libselect_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
