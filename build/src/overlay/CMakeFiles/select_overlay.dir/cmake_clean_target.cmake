file(REMOVE_RECURSE
  "libselect_overlay.a"
)
