# Empty dependencies file for select_overlay.
# This may be replaced when dependencies are built.
