file(REMOVE_RECURSE
  "CMakeFiles/select_pubsub.dir/engine.cpp.o"
  "CMakeFiles/select_pubsub.dir/engine.cpp.o.d"
  "CMakeFiles/select_pubsub.dir/metrics.cpp.o"
  "CMakeFiles/select_pubsub.dir/metrics.cpp.o.d"
  "CMakeFiles/select_pubsub.dir/multipath.cpp.o"
  "CMakeFiles/select_pubsub.dir/multipath.cpp.o.d"
  "libselect_pubsub.a"
  "libselect_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
