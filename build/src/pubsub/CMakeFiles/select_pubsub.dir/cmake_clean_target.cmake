file(REMOVE_RECURSE
  "libselect_pubsub.a"
)
