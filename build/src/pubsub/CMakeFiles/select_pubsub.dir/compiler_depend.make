# Empty compiler generated dependencies file for select_pubsub.
# This may be replaced when dependencies are built.
