file(REMOVE_RECURSE
  "CMakeFiles/select_core.dir/analysis.cpp.o"
  "CMakeFiles/select_core.dir/analysis.cpp.o.d"
  "CMakeFiles/select_core.dir/protocol.cpp.o"
  "CMakeFiles/select_core.dir/protocol.cpp.o.d"
  "libselect_core.a"
  "libselect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
