file(REMOVE_RECURSE
  "libselect_core.a"
)
