# Empty compiler generated dependencies file for select_core.
# This may be replaced when dependencies are built.
