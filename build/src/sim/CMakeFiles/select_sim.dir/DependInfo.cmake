
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/churn.cpp" "src/sim/CMakeFiles/select_sim.dir/churn.cpp.o" "gcc" "src/sim/CMakeFiles/select_sim.dir/churn.cpp.o.d"
  "/root/repo/src/sim/growth.cpp" "src/sim/CMakeFiles/select_sim.dir/growth.cpp.o" "gcc" "src/sim/CMakeFiles/select_sim.dir/growth.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/select_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/select_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trial.cpp" "src/sim/CMakeFiles/select_sim.dir/trial.cpp.o" "gcc" "src/sim/CMakeFiles/select_sim.dir/trial.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/select_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/select_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/select_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/select_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
