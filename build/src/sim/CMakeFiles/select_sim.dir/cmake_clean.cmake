file(REMOVE_RECURSE
  "CMakeFiles/select_sim.dir/churn.cpp.o"
  "CMakeFiles/select_sim.dir/churn.cpp.o.d"
  "CMakeFiles/select_sim.dir/growth.cpp.o"
  "CMakeFiles/select_sim.dir/growth.cpp.o.d"
  "CMakeFiles/select_sim.dir/trace.cpp.o"
  "CMakeFiles/select_sim.dir/trace.cpp.o.d"
  "CMakeFiles/select_sim.dir/trial.cpp.o"
  "CMakeFiles/select_sim.dir/trial.cpp.o.d"
  "CMakeFiles/select_sim.dir/workload.cpp.o"
  "CMakeFiles/select_sim.dir/workload.cpp.o.d"
  "libselect_sim.a"
  "libselect_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
