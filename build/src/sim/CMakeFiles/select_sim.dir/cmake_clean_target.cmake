file(REMOVE_RECURSE
  "libselect_sim.a"
)
