# Empty compiler generated dependencies file for select_sim.
# This may be replaced when dependencies are built.
