file(REMOVE_RECURSE
  "CMakeFiles/tests_baselines.dir/baselines_bayeux_test.cpp.o"
  "CMakeFiles/tests_baselines.dir/baselines_bayeux_test.cpp.o.d"
  "CMakeFiles/tests_baselines.dir/baselines_factory_test.cpp.o"
  "CMakeFiles/tests_baselines.dir/baselines_factory_test.cpp.o.d"
  "CMakeFiles/tests_baselines.dir/baselines_omen_test.cpp.o"
  "CMakeFiles/tests_baselines.dir/baselines_omen_test.cpp.o.d"
  "CMakeFiles/tests_baselines.dir/baselines_symphony_test.cpp.o"
  "CMakeFiles/tests_baselines.dir/baselines_symphony_test.cpp.o.d"
  "CMakeFiles/tests_baselines.dir/baselines_vitis_test.cpp.o"
  "CMakeFiles/tests_baselines.dir/baselines_vitis_test.cpp.o.d"
  "tests_baselines"
  "tests_baselines.pdb"
  "tests_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
