# Empty dependencies file for tests_baselines.
# This may be replaced when dependencies are built.
