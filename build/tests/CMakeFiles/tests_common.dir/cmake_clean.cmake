file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common_bitset_test.cpp.o"
  "CMakeFiles/tests_common.dir/common_bitset_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common_csv_table_test.cpp.o"
  "CMakeFiles/tests_common.dir/common_csv_table_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common_histogram_test.cpp.o"
  "CMakeFiles/tests_common.dir/common_histogram_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common_rng_test.cpp.o"
  "CMakeFiles/tests_common.dir/common_rng_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common_stats_test.cpp.o"
  "CMakeFiles/tests_common.dir/common_stats_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common_thread_pool_test.cpp.o"
  "CMakeFiles/tests_common.dir/common_thread_pool_test.cpp.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
