file(REMOVE_RECURSE
  "CMakeFiles/tests_graph.dir/graph_generators_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph_generators_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph_metrics_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph_metrics_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph_snap_loader_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph_snap_loader_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph_social_graph_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph_social_graph_test.cpp.o.d"
  "tests_graph"
  "tests_graph.pdb"
  "tests_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
