# Empty dependencies file for tests_graph.
# This may be replaced when dependencies are built.
