file(REMOVE_RECURSE
  "CMakeFiles/tests_net_sim.dir/net_geo_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/net_geo_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/net_id_space_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/net_id_space_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/net_network_model_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/net_network_model_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_churn_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_churn_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_event_queue_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_event_queue_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_growth_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_growth_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_superstep_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_superstep_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_trace_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_trace_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_trial_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_trial_test.cpp.o.d"
  "CMakeFiles/tests_net_sim.dir/sim_workload_test.cpp.o"
  "CMakeFiles/tests_net_sim.dir/sim_workload_test.cpp.o.d"
  "tests_net_sim"
  "tests_net_sim.pdb"
  "tests_net_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_net_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
