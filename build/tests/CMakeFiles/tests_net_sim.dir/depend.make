# Empty dependencies file for tests_net_sim.
# This may be replaced when dependencies are built.
