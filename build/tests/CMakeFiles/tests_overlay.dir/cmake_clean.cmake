file(REMOVE_RECURSE
  "CMakeFiles/tests_overlay.dir/lsh_test.cpp.o"
  "CMakeFiles/tests_overlay.dir/lsh_test.cpp.o.d"
  "CMakeFiles/tests_overlay.dir/overlay_lookahead_test.cpp.o"
  "CMakeFiles/tests_overlay.dir/overlay_lookahead_test.cpp.o.d"
  "CMakeFiles/tests_overlay.dir/overlay_route_test.cpp.o"
  "CMakeFiles/tests_overlay.dir/overlay_route_test.cpp.o.d"
  "CMakeFiles/tests_overlay.dir/overlay_serialize_test.cpp.o"
  "CMakeFiles/tests_overlay.dir/overlay_serialize_test.cpp.o.d"
  "CMakeFiles/tests_overlay.dir/overlay_test.cpp.o"
  "CMakeFiles/tests_overlay.dir/overlay_test.cpp.o.d"
  "CMakeFiles/tests_overlay.dir/overlay_tree_test.cpp.o"
  "CMakeFiles/tests_overlay.dir/overlay_tree_test.cpp.o.d"
  "tests_overlay"
  "tests_overlay.pdb"
  "tests_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
