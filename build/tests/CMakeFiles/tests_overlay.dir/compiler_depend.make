# Empty compiler generated dependencies file for tests_overlay.
# This may be replaced when dependencies are built.
