file(REMOVE_RECURSE
  "CMakeFiles/tests_pubsub.dir/integration_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/integration_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/property_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/property_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/pubsub_engine_baselines_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/pubsub_engine_baselines_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/pubsub_engine_churn_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/pubsub_engine_churn_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/pubsub_engine_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/pubsub_engine_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/pubsub_interest_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/pubsub_interest_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/pubsub_metrics_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/pubsub_metrics_test.cpp.o.d"
  "CMakeFiles/tests_pubsub.dir/pubsub_multipath_test.cpp.o"
  "CMakeFiles/tests_pubsub.dir/pubsub_multipath_test.cpp.o.d"
  "tests_pubsub"
  "tests_pubsub.pdb"
  "tests_pubsub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
