# Empty compiler generated dependencies file for tests_pubsub.
# This may be replaced when dependencies are built.
