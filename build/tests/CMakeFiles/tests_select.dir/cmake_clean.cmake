file(REMOVE_RECURSE
  "CMakeFiles/tests_select.dir/select_analysis_test.cpp.o"
  "CMakeFiles/tests_select.dir/select_analysis_test.cpp.o.d"
  "CMakeFiles/tests_select.dir/select_param_sweep_test.cpp.o"
  "CMakeFiles/tests_select.dir/select_param_sweep_test.cpp.o.d"
  "CMakeFiles/tests_select.dir/select_protocol_test.cpp.o"
  "CMakeFiles/tests_select.dir/select_protocol_test.cpp.o.d"
  "CMakeFiles/tests_select.dir/select_recovery_test.cpp.o"
  "CMakeFiles/tests_select.dir/select_recovery_test.cpp.o.d"
  "tests_select"
  "tests_select.pdb"
  "tests_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
