# Empty compiler generated dependencies file for tests_select.
# This may be replaced when dependencies are built.
