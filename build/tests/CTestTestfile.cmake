# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_graph[1]_include.cmake")
include("/root/repo/build/tests/tests_net_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_overlay[1]_include.cmake")
include("/root/repo/build/tests/tests_select[1]_include.cmake")
include("/root/repo/build/tests/tests_baselines[1]_include.cmake")
include("/root/repo/build/tests/tests_pubsub[1]_include.cmake")
