// churn_survival: demonstrates the recovery mechanism (paper Sec. III-F).
// Peers cycle on/offline under the log-normal session model while SELECT
// runs its CMA-driven maintenance; every epoch we print the online
// fraction, the availability with recovery, and the availability of an
// identical overlay that never repairs itself.
//
//   $ ./churn_survival [num_users] [epochs]
#include <cstdio>
#include <cstdlib>

#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"
#include "sim/churn.hpp"

int main(int argc, char** argv) {
  using namespace sel;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;
  const std::size_t epochs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  const std::uint64_t seed = 7;

  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), n, seed);
  core::SelectSystem live(g, core::SelectParams{}, seed);
  live.build();
  core::SelectSystem frozen(g, core::SelectParams{}, seed);
  frozen.build();
  const overlay::PubSubSystem ps_live(live);
  const overlay::PubSubSystem ps_frozen(frozen);
  std::printf("two identical overlays built (%zu peers); only the first "
              "runs recovery\n\n",
              n);

  sim::SessionChurn::Params churn_params;
  churn_params.session_median_s = 1500.0;
  churn_params.offline_median_s = 1200.0;
  churn_params.min_online_fraction = 0.5;
  sim::SessionChurn churn(n, churn_params, seed);

  std::vector<overlay::PeerId> publishers;
  for (overlay::PeerId p = 0; p < 30; ++p) {
    publishers.push_back(p * 19 % static_cast<overlay::PeerId>(n));
  }

  std::printf("%-8s %-9s %-20s %-20s\n", "t(min)", "online%",
              "avail% (recovery)", "avail% (no repair)");
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    churn.advance_to(static_cast<double>(epoch) * 900.0);
    for (overlay::PeerId p = 0; p < n; ++p) {
      live.set_peer_online(p, churn.online(p));
      frozen.set_peer_online(p, churn.online(p));
    }
    live.maintenance_round();  // frozen never repairs
    const auto a = pubsub::measure_availability(ps_live, publishers);
    const auto b = pubsub::measure_availability(ps_frozen, publishers);
    std::printf("%-8.0f %-9.1f %-20.2f %-20.2f\n", epoch * 15.0,
                100.0 * churn.online_fraction(), 100.0 * a.availability(),
                100.0 * b.availability());
  }
  std::printf("\nCMA snapshot of three peers: %.2f %.2f %.2f (1.0 = always "
              "online)\n",
              live.cma_of(0), live.cma_of(1), live.cma_of(2));
  return 0;
}
