// dataset_runner: run any system on any dataset and print the paper's
// metric suite — a one-command evaluation driver.
//
//   $ ./dataset_runner [--dataset facebook|twitter|slashdot|gplus]
//                      [--system select|symphony|bayeux|vitis|omen|random]
//                      [--users N] [--seed S] [--interest P]
//                      [--snap /path/to/edgelist.txt] [--save overlay.ov]
//
// With --snap, a real SNAP edge list replaces the synthetic profile. With
// --save (ring-based systems only), the built overlay snapshot is written
// for later analysis.
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/factory.hpp"
#include "graph/metrics.hpp"
#include "graph/profiles.hpp"
#include "graph/snap_loader.hpp"
#include "overlay/serialize.hpp"
#include "pubsub/interest.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"
#include "sim/workload.hpp"

namespace {

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sel;
  const std::string dataset = flag_value(argc, argv, "--dataset", "facebook");
  const std::string system = flag_value(argc, argv, "--system", "select");
  const std::size_t n =
      std::strtoull(flag_value(argc, argv, "--users", "1000"), nullptr, 10);
  const std::uint64_t seed =
      std::strtoull(flag_value(argc, argv, "--seed", "42"), nullptr, 10);
  const double interest_p =
      std::strtod(flag_value(argc, argv, "--interest", "1.0"), nullptr);
  const char* snap_path = flag_value(argc, argv, "--snap", "");
  const char* save_path = flag_value(argc, argv, "--save", "");

  graph::SocialGraph g;
  if (snap_path[0] != '\0') {
    const auto loaded = graph::load_snap_edge_list(snap_path);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "failed to load SNAP edge list: %s\n", snap_path);
      return 1;
    }
    g = loaded->graph;
    std::printf("loaded %s: %zu users, %zu edges\n", snap_path, g.num_nodes(),
                g.num_edges());
  } else {
    g = graph::make_dataset_graph(graph::profile_by_name(dataset), n, seed);
    std::printf("%s profile: %zu users, %zu edges (avg degree %.1f, "
                "clustering %.3f)\n",
                dataset.c_str(), g.num_nodes(), g.num_edges(),
                g.average_degree(),
                graph::clustering_coefficient(
                    g, std::min<std::size_t>(g.num_nodes(), 500), seed));
  }

  net::NetworkModel net(g.num_nodes(), seed);
  auto sys = baselines::make_system(system, g, {.seed = seed, .net = &net});
  std::printf("building %s overlay...\n", std::string(sys->name()).c_str());
  sys->build();
  if (sys->build_iterations() > 0) {
    std::printf("converged in %zu iterations\n", sys->build_iterations());
  }

  pubsub::InterestModel interest(interest_p, seed);
  if (interest_p < 1.0) {
    sys->set_interest_function(&interest);
    std::printf("interest function active: f(s,b)=true with p=%.2f\n",
                interest_p);
  }

  const auto hops = pubsub::measure_hops(*sys, 500, seed);
  sim::PublicationWorkload workload(g, sim::WorkloadParams{}, seed);
  const auto pubs64 = workload.sample_publishers(30, seed + 1);
  std::vector<overlay::PeerId> publishers(pubs64.begin(), pubs64.end());
  const auto relays = pubsub::measure_relays(*sys, publishers);
  const auto load = pubsub::measure_load(*sys, publishers);
  const auto latency = pubsub::measure_latency(*sys, net, publishers);

  std::printf("\nmetrics (%zu social lookups, %zu publishers):\n",
              hops.attempted, publishers.size());
  std::printf("  hops/lookup          %.2f (%.1f%% delivered)\n",
              hops.hops.mean(), 100.0 * hops.success_rate());
  std::printf("  relays/path          %.3f\n", relays.relays_per_path.mean());
  std::printf("  relays/tree          %.2f\n", relays.relays_per_tree.mean());
  std::printf("  subscriber coverage  %.1f%%\n",
              100.0 * relays.coverage.mean());
  std::printf("  relay traffic share  %.1f%%\n",
              100.0 * load.relay_forward_share);
  std::printf("  top-degree-10%% load  %.1f%%\n", load.top_decile_share);
  std::printf("  tree latency         %.2fs avg\n", latency.per_tree_s.mean());

  if (save_path[0] != '\0') {
    const auto* ring =
        dynamic_cast<const overlay::RingOverlay*>(&sys->overlay());
    if (ring == nullptr) {
      std::fprintf(stderr, "--save: %s is not a ring-based system\n",
                   system.c_str());
    } else if (overlay::save_overlay_file(ring->overlay(), save_path)) {
      std::printf("overlay snapshot written to %s\n", save_path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", save_path);
    }
  }
  return 0;
}
