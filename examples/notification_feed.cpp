// notification_feed: the workload the paper's introduction motivates — a
// social network delivering real-time notifications. Builds a SELECT
// overlay over a Twitter-profile graph and replays hours of posts from the
// Jiang et al. posting model through the event-driven NotificationEngine:
// overlapping disseminations, shared uplinks, per-message delivery records.
//
//   $ ./notification_feed [num_users] [hours]
#include <cstdio>
#include <cstdlib>

#include "graph/profiles.hpp"
#include "net/network_model.hpp"
#include "pubsub/engine.hpp"
#include "select/protocol.hpp"
#include "sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace sel;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  const double hours = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;
  const std::uint64_t seed = 2024;

  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("twitter"), n, seed);
  net::NetworkModel net(n, seed);
  core::SelectSystem sys(g, core::SelectParams{}, seed, &net);
  sys.build();
  std::printf("overlay ready: %zu peers, converged in %zu iterations\n",
              g.num_nodes(), sys.build_iterations());

  sim::WorkloadParams wl;
  wl.median_posts_per_hour = 1.0;
  sim::PublicationWorkload workload(g, wl, seed);
  const auto posts = workload.generate(hours * 3600.0, seed + 1);
  std::printf("replaying %zu posts over %.1f simulated hour(s) from %zu "
              "publishers\n\n",
              posts.size(), hours, workload.num_publishers());

  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);
  double next_report = 600.0;
  std::size_t posted = 0;
  for (const auto& post : posts) {
    engine.run_until(post.time_s);
    engine.publish(post.publisher, post.time_s);
    ++posted;
    if (post.time_s >= next_report) {
      const auto& s = engine.stats();
      std::printf("t=%5.0fs  posts=%5zu  delivered=%zu/%zu (%.2f%%)  "
                  "in flight=%zu  avg latency=%.2fs  relay fwds=%zu  "
                  "tree cache: %zu hits / %zu misses\n",
                  post.time_s, posted, s.deliveries, s.wanted,
                  100.0 * s.delivery_rate(), engine.in_flight(),
                  s.delivery_latency_s.mean(), s.relay_forwards,
                  s.tree_cache_hits, s.tree_cache_misses);
      next_report += 600.0;
    }
  }
  engine.run_all();

  const auto& s = engine.stats();
  std::printf("\nfinal: %zu messages, %zu/%zu notifications delivered "
              "(%.2f%%), avg delivery latency %.2fs (max %.2fs), "
              "%zu relay forwards\n",
              s.messages_published, s.deliveries, s.wanted,
              100.0 * s.delivery_rate(), s.delivery_latency_s.mean(),
              s.delivery_latency_s.max(), s.relay_forwards);
  return 0;
}
