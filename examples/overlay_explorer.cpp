// overlay_explorer: inspect what SELECT actually builds. Prints, for a
// chosen peer: its projected identifier, ring neighbours, long-range links
// with the LSH/social rationale (social strength, bandwidth class), its
// lookahead coverage of the friend set, and a sample routed path — the
// paper's Table I state, materialized.
//
//   $ ./overlay_explorer [num_users] [peer_id]
#include <cstdio>
#include <cstdlib>

#include "graph/profiles.hpp"
#include "net/network_model.hpp"
#include "select/protocol.hpp"

int main(int argc, char** argv) {
  using namespace sel;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::uint64_t seed = 11;
  const auto g = graph::make_dataset_graph(
      graph::profile_by_name("facebook"), n, seed);
  net::NetworkModel net(n, seed);
  core::SelectSystem sys(g, core::SelectParams{}, seed, &net);
  sys.build();

  const auto peer = static_cast<overlay::PeerId>(
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) % n : 0);
  const auto& ov = sys.overlay();

  std::printf("peer %u — SELECT local state (paper Table I)\n", peer);
  std::printf("  D_p  (identifier)      : %.6f\n", ov.id(peer).value());
  std::printf("  ring (short links)     : succ=%u (id %.6f), pred=%u (id %.6f)\n",
              ov.successor(peer), ov.id(ov.successor(peer)).value(),
              ov.predecessor(peer), ov.id(ov.predecessor(peer)).value());
  std::printf("  C_p  (social friends)  : %zu friends\n", g.degree(peer));
  std::printf("  R_p  (long links, K=%zu):\n", sys.k());
  for (const auto q : ov.out_links(peer)) {
    std::printf("    -> %4u  id=%.6f  strength=%.3f  uplink=%.0f Mbps  "
                "ring distance=%.6f\n",
                q, ov.id(q).value(), g.social_strength(peer, q),
                net.uplink_bps(q) / 1e6,
                net::ring_distance(ov.id(peer), ov.id(q)));
  }
  std::printf("  incoming links         : %zu\n", ov.in_degree(peer));

  // Lookahead coverage: how many friends are reachable in <= 2 hops through
  // the routing table (the L_p mechanism of Sec. III-E)?
  std::size_t one_hop = 0;
  std::size_t two_hop = 0;
  std::size_t farther = 0;
  for (const auto f : g.neighbors(peer)) {
    const auto r = sys.route(peer, f);
    if (!r.success) {
      ++farther;
    } else if (r.hops() <= 1) {
      ++one_hop;
    } else if (r.hops() == 2) {
      ++two_hop;
    } else {
      ++farther;
    }
  }
  std::printf("  friend coverage        : %zu in 1 hop, %zu in 2 hops, %zu "
              "beyond\n",
              one_hop, two_hop, farther);

  // A sample lookup path to the "farthest" friend in id space.
  overlay::PeerId far_friend = overlay::kInvalidPeer;
  double far_dist = -1.0;
  for (const auto f : g.neighbors(peer)) {
    const double d = net::ring_distance(ov.id(peer), ov.id(f));
    if (d > far_dist) {
      far_dist = d;
      far_friend = f;
    }
  }
  if (far_friend != overlay::kInvalidPeer) {
    const auto r = sys.route(peer, far_friend);
    std::printf("  sample lookup to friend %u (ring distance %.4f): ",
                far_friend, far_dist);
    if (r.success) {
      for (std::size_t i = 0; i < r.path.size(); ++i) {
        std::printf(i == 0 ? "%u" : " -> %u", r.path[i]);
      }
      std::printf("  (%zu hops)\n", r.hops());
    } else {
      std::printf("unreachable\n");
    }
  }

  // Global view.
  std::printf("\nglobal overlay: %zu peers, avg long degree %.2f, "
              "%zu construction iterations\n",
              ov.joined_count(), ov.average_long_degree(),
              sys.build_iterations());
  return 0;
}
