// Quickstart: build a small synthetic social network, run SELECT to
// convergence, and publish a notification — printing what the paper's
// metrics look like on it.
//
//   $ ./quickstart [num_users]
#include <cstdio>
#include <cstdlib>

#include "baselines/factory.hpp"
#include "graph/profiles.hpp"
#include "pubsub/metrics.hpp"
#include "select/protocol.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const std::uint64_t seed = 42;

  // 1. A Facebook-like social graph.
  const auto& profile = sel::graph::profile_by_name("facebook");
  const sel::graph::SocialGraph g =
      sel::graph::make_dataset_graph(profile, n, seed);
  std::printf("social graph: %zu users, %zu friendships (avg degree %.1f)\n",
              g.num_nodes(), g.num_edges(), g.average_degree());

  // 2. Build the SELECT overlay.
  sel::core::SelectSystem select(g, sel::core::SelectParams{}, seed);
  select.build();
  std::printf("SELECT converged in %zu iterations; avg long links/peer %.1f "
              "(K = %zu)\n",
              select.build_iterations(),
              select.overlay().average_long_degree(), select.k());

  // 3. Publish: route a notification from user 0 to every friend. The
  //    dissemination layer composes over any Overlay implementation.
  const sel::overlay::PubSubSystem ps(select);
  const auto tree = ps.build_tree(0);
  const auto subs = ps.subscribers_of(0);
  std::printf("publisher 0 has %zu subscribers; tree reaches %zu nodes, "
              "%zu relay nodes\n",
              subs.size(), tree.node_count() - 1,
              tree.relay_nodes(subs).size());

  // 4. Paper metrics on this overlay.
  const auto hops = sel::pubsub::measure_hops(ps, 500, seed);
  std::printf("social lookups: %.2f hops on average (%.0f%% delivered)\n",
              hops.hops.mean(), 100.0 * hops.success_rate());

  // 5. Compare against Symphony on the same workload.
  auto symphony = sel::baselines::make_system("symphony", g, {.seed = seed});
  symphony->build();
  const auto sym_hops = sel::pubsub::measure_hops(*symphony, 500, seed);
  std::printf("symphony: %.2f hops on average (%.0f%% delivered)\n",
              sym_hops.hops.mean(), 100.0 * sym_hops.success_rate());
  if (sym_hops.hops.mean() > 0.0) {
    std::printf("SELECT uses %.0f%% fewer hops\n",
                100.0 * (1.0 - hops.hops.mean() / sym_hops.hops.mean()));
  }
  return 0;
}
