#!/usr/bin/env python3
"""Diff two SELECT run reports (*.report.json).

Usage:
    scripts/compare_reports.py baseline.report.json candidate.report.json
    scripts/compare_reports.py a.json b.json --min-rel 0.05   # hide <5% deltas
    scripts/compare_reports.py a.json b.json \\
        --fail-on pubsub.deliveries=0 \\
        --fail-on select.round.compute_ms_per_round=0.25

Prints metric-by-metric deltas for counters, gauges and spans, plus aggregate
round-telemetry comparisons (total/mean phase times, message volume).

Without --fail-on the exit code is always 0 (reporting mode). Each
--fail-on METRIC=TOLERANCE names a flat metric (counter, gauge, span as
"span.<name>.total_ms", memory as "mem.rss_peak_bytes", or round aggregate
like "select.round.rounds") and the maximum allowed relative change, as a
fraction (0.25 = 25%; 0 = must be identical). Any named metric whose change
exceeds its tolerance — or which is missing from either report — makes the
script exit 1, so CI can gate on it.

--allow-missing downgrades the missing-key case to a warning (exit stays 0
for that metric): use it when gating a schema-v3 candidate (which carries
the `memory` section) against a v2 baseline that predates it, without
giving up the gate on the metrics both schemas share. A metric missing from
BOTH reports still fails — that is a typo in the gate, not a schema skew.
Run scripts/test_compare_reports.py for the self-test.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON ({e})")
    if "metrics" not in doc:
        sys.exit(f"{path}: not a run report (missing 'metrics')")
    return doc


def fmt_num(x):
    if isinstance(x, float) and not x.is_integer():
        return f"{x:.6g}"
    return f"{int(x):,}"


def fmt_delta(a, b):
    delta = b - a
    sign = "+" if delta >= 0 else ""
    rel = f" ({sign}{100.0 * delta / a:.1f}%)" if a else ""
    return f"{sign}{fmt_num(delta)}{rel}"


def rel_change(a, b):
    if a == b:
        return 0.0
    if a == 0:
        return float("inf")
    return abs(b - a) / abs(a)


def diff_section(title, a, b, min_rel, transform=None):
    keys = sorted(set(a) | set(b))
    rows = []
    for k in keys:
        va, vb = a.get(k), b.get(k)
        if transform:
            va = transform(va) if va is not None else None
            vb = transform(vb) if vb is not None else None
        if va is None:
            rows.append((k, "—", fmt_num(vb), "added"))
        elif vb is None:
            rows.append((k, fmt_num(va), "—", "removed"))
        elif rel_change(va, vb) >= min_rel:
            rows.append((k, fmt_num(va), fmt_num(vb), fmt_delta(va, vb)))
    if not rows:
        return
    print(f"\n## {title}")
    width = max(len(r[0]) for r in rows)
    wa = max(len(r[1]) for r in rows)
    wb = max(len(r[2]) for r in rows)
    for name, va, vb, delta in rows:
        print(f"  {name:<{width}}  {va:>{wa}}  ->  {vb:>{wb}}  {delta}")


def round_aggregates(rounds):
    agg = {}
    for r in rounds:
        label = r.get("label", "?")
        a = agg.setdefault(
            label,
            {"rounds": 0, "compute_ms": 0.0, "barrier_ms": 0.0,
             "deliver_ms": 0.0, "messages": 0},
        )
        a["rounds"] += 1
        a["compute_ms"] += r.get("compute_ms", 0.0)
        a["barrier_ms"] += r.get("barrier_ms", 0.0)
        a["deliver_ms"] += r.get("deliver_ms", 0.0)
        a["messages"] += r.get("messages", 0)
    flat = {}
    for label, a in agg.items():
        for key, val in a.items():
            flat[f"{label}.{key}"] = round(val, 3) if isinstance(val, float) else val
        if a["rounds"]:
            flat[f"{label}.compute_ms_per_round"] = round(
                a["compute_ms"] / a["rounds"], 4)
    return flat


def flat_metrics(doc):
    """Flattens one report into {metric_name: number} for --fail-on."""
    m = doc["metrics"]
    flat = {}
    flat.update(m.get("counters", {}))
    flat.update(m.get("gauges", {}))
    for name, span in m.get("spans", {}).items():
        flat[f"span.{name}.total_ms"] = span.get("total_ns", 0) / 1e6
        flat[f"span.{name}.count"] = span.get("count", 0)
    flat.update(round_aggregates(m.get("rounds", [])))
    # Schema v3: flat end-of-run memory section (mem.* keys). Overrides the
    # gauge of the same name — the section is written last, so it is the
    # authoritative end-of-run value.
    flat.update(doc.get("memory", {}))
    return flat


def parse_fail_on(specs):
    thresholds = []
    for spec in specs:
        metric, sep, tol = spec.partition("=")
        if not sep or not metric:
            sys.exit(f"--fail-on {spec!r}: expected METRIC=TOLERANCE")
        try:
            tol_val = float(tol)
        except ValueError:
            sys.exit(f"--fail-on {spec!r}: tolerance {tol!r} is not a number")
        if tol_val < 0:
            sys.exit(f"--fail-on {spec!r}: tolerance must be >= 0")
        thresholds.append((metric, tol_val))
    return thresholds


def check_thresholds(thresholds, flat_a, flat_b, allow_missing=False):
    """Returns (violations, warnings) — each a list of strings.

    A metric missing from exactly one report is a violation unless
    `allow_missing` (schema transitions: a v2 baseline has no `memory`
    section). Missing from both is always a violation — the gate names a
    metric neither run produces, which no schema skew explains.
    """
    violations = []
    warnings = []
    for metric, tol in thresholds:
        va, vb = flat_a.get(metric), flat_b.get(metric)
        if va is None and vb is None:
            violations.append(f"{metric}: missing from both reports")
            continue
        if va is None or vb is None:
            where = "baseline" if va is None else "candidate"
            msg = f"{metric}: missing from {where} report"
            if allow_missing:
                warnings.append(f"{msg} (skipped: --allow-missing)")
            else:
                violations.append(msg)
            continue
        rel = rel_change(va, vb)
        if rel > tol:
            violations.append(
                f"{metric}: {fmt_num(va)} -> {fmt_num(vb)} "
                f"(changed {100.0 * rel:.1f}%, tolerance {100.0 * tol:.1f}%)")
    return violations, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--min-rel", type=float, default=0.0,
                    help="hide metrics whose relative change is below this "
                         "fraction (default: show everything that changed)")
    ap.add_argument("--fail-on", action="append", default=[],
                    metavar="METRIC=TOLERANCE",
                    help="exit 1 when METRIC's relative change exceeds "
                         "TOLERANCE (a fraction; repeatable)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="a --fail-on metric missing from one report is a "
                         "warning, not a failure (schema v2 -> v3 "
                         "transitions); missing from both still fails")
    args = ap.parse_args()
    thresholds = parse_fail_on(args.fail_on)

    a, b = load(args.baseline), load(args.candidate)

    print(f"baseline : {args.baseline}  "
          f"[{a.get('experiment', '?')} @ {a.get('git_describe', '?')}]")
    print(f"candidate: {args.candidate}  "
          f"[{b.get('experiment', '?')} @ {b.get('git_describe', '?')}]")

    ma, mb = a["metrics"], b["metrics"]
    diff_section("counters", ma.get("counters", {}), mb.get("counters", {}),
                 args.min_rel)
    diff_section("gauges", ma.get("gauges", {}), mb.get("gauges", {}),
                 args.min_rel)
    diff_section("spans (total ms)",
                 {k: v["total_ns"] for k, v in ma.get("spans", {}).items()},
                 {k: v["total_ns"] for k, v in mb.get("spans", {}).items()},
                 args.min_rel, transform=lambda ns: round(ns / 1e6, 3))
    diff_section("round telemetry (aggregated per label)",
                 round_aggregates(ma.get("rounds", [])),
                 round_aggregates(mb.get("rounds", [])), args.min_rel)
    print()

    if thresholds:
        violations, warnings = check_thresholds(
            thresholds, flat_metrics(a), flat_metrics(b),
            allow_missing=args.allow_missing)
        for w in warnings:
            print(f"  WARN {w}")
        if violations:
            print("## threshold violations")
            for v in violations:
                print(f"  FAIL {v}")
            sys.exit(1)
        print(f"all {len(thresholds)} threshold(s) within tolerance "
              f"({len(warnings)} skipped)")


if __name__ == "__main__":
    main()
