#!/usr/bin/env python3
"""clang-tidy driver with a tracked zero-new-warnings baseline.

Runs clang-tidy (config: /.clang-tidy) over every translation unit in
compile_commands.json that lives under src/, normalizes the findings to
``path: check: message`` lines (line numbers dropped so unrelated edits do
not churn the baseline), and compares them against the tracked baseline
``scripts/tidy_baseline.txt``:

  * findings absent from the baseline  -> NEW, exit 1 (the gate)
  * baseline entries no longer emitted -> reported as fixable debt, exit 0

Typical use:

  scripts/run_tidy.py                      # gate against the baseline
  scripts/run_tidy.py --update-baseline    # rewrite the baseline in place
  scripts/run_tidy.py --strict             # missing clang-tidy = failure (CI)

Without --strict a missing clang-tidy binary is a skip (exit 0) so that
developer machines without LLVM can still run the repo's check pipeline.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "scripts", "tidy_baseline.txt")

# clang-tidy diagnostic: file:line:col: warning: message [check-name]
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<kind>warning|error): (?P<msg>.*?) \[(?P<check>[^\]]+)\]$"
)


def find_clang_tidy() -> str | None:
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
                 "clang-tidy-17", "clang-tidy-16", "clang-tidy-15"):
        if shutil.which(name):
            return name
    return None


def source_files(build_dir: str, src_prefix: str) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            f"error: {db_path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    files = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if os.path.normpath(src_prefix) in path.split(os.sep) or path.startswith(
            os.path.join(REPO_ROOT, src_prefix) + os.sep
        ):
            files.add(path)
    return sorted(files)


def normalize(raw_output: str) -> set[str]:
    """Folds diagnostics to stable `relpath: check: message` lines."""
    findings = set()
    for line in raw_output.splitlines():
        m = DIAG_RE.match(line.strip())
        if not m:
            continue
        path = os.path.normpath(m.group("file"))
        if os.path.isabs(path):
            path = os.path.relpath(path, REPO_ROOT)
        if path.startswith(".."):
            continue  # system/third-party header
        findings.add(f"{path}: {m.group('check')}: {m.group('msg')}")
    return findings


def run_one(tidy: str, build_dir: str, path: str) -> str:
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        check=False,
    )
    return proc.stdout


def load_baseline(path: str) -> set[str]:
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as fh:
        return {
            line.rstrip("\n")
            for line in fh
            if line.strip() and not line.startswith("#")
        }


def stale_file_entries(baseline: set[str]) -> list[str]:
    """Baseline entries whose `path:` prefix names a file that no longer
    exists. Those can never fire again, so carrying them is dead debt that
    hides the real baseline size — the gate fails on them (mirrors
    sel_analyze.py)."""
    stale = []
    for entry in sorted(baseline):
        rel = entry.split(":", 1)[0].strip()
        if rel and not os.path.exists(os.path.join(REPO_ROOT, rel)):
            stale.append(entry)
    return stale


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--src", default="src", help="source prefix to gate")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 2) when clang-tidy is not installed",
    )
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    # Stale-entry gate runs even without clang-tidy installed: it needs only
    # the filesystem, and a baseline pointing at deleted files should fail
    # fast everywhere, not just on CI runners with LLVM.
    if not args.update_baseline:
        stale_files = stale_file_entries(load_baseline(args.baseline))
        if stale_files:
            print(
                f"run_tidy: {len(stale_files)} baseline entr(y|ies) "
                "reference missing files — delete them:"
            )
            for entry in stale_files:
                print(f"  stale-file: {entry}")
            return 1

    tidy = find_clang_tidy()
    if tidy is None:
        msg = "run_tidy: clang-tidy not found"
        if args.strict:
            print(f"{msg} (strict mode)", file=sys.stderr)
            return 2
        print(f"{msg}; skipping the static-analysis gate", file=sys.stderr)
        return 0

    files = source_files(args.build_dir, args.src)
    if not files:
        sys.exit(f"error: no {args.src}/ translation units in the build")
    print(f"run_tidy: {tidy} over {len(files)} TUs "
          f"({args.jobs} jobs)", file=sys.stderr)

    findings: set[str] = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for out in pool.map(
            lambda p: run_one(tidy, args.build_dir, p), files
        ):
            findings |= normalize(out)

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            fh.write(
                "# clang-tidy suppression baseline (scripts/run_tidy.py).\n"
                "# One `path: check: message` per line; regenerate with\n"
                "#   scripts/run_tidy.py --update-baseline\n"
                "# Shrink it when you fix debt; never grow it silently.\n"
            )
            for line in sorted(findings):
                fh.write(line + "\n")
        print(f"run_tidy: baseline updated with {len(findings)} findings")
        return 0

    baseline = load_baseline(args.baseline)
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    if fixed:
        print(
            f"run_tidy: {len(fixed)} baseline entries no longer fire; "
            "consider --update-baseline to shrink the debt:",
            file=sys.stderr,
        )
        for line in fixed[:20]:
            print(f"  stale: {line}", file=sys.stderr)
    if new:
        print(f"run_tidy: {len(new)} NEW finding(s):")
        for line in new:
            print(f"  {line}")
        return 1
    print(f"run_tidy: OK ({len(findings)} findings, all in baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
