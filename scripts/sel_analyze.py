#!/usr/bin/env python3
"""Determinism static analyzer for the SELECT tree (DESIGN.md §15).

The repo's core guarantee — same seed ⇒ bit-identical overlays, delivered
multisets and reports — is enforced dynamically by the CI chaos soaks. This
analyzer is the static complement: it proves the *absence* of whole hazard
classes instead of waiting for a soak to diverge.

Rules (suppress with ``// SEL_NONDET_OK(<rule>): reason`` on or above the
offending line):

  unordered-iteration      range-for / iteration over std::unordered_map or
                           std::unordered_set inside the deterministic
                           subsystems. Hash-table iteration order is a
                           standard-library implementation detail; it leaks
                           into link choice, delivery order and report
                           bytes. Use sel::FlatSet / sorted vectors / sorted
                           key snapshots instead.
  wall-clock               steady_clock/system_clock (or libc time) reads
                           outside src/obs/. Virtual time must come from
                           runtime::EventEngine; instrumentation timing goes
                           through the obs/time.hpp helpers.
  unseeded-rng             std::random_device or a standard random engine
                           outside common/rng.hpp. All randomness flows
                           through sel::Rng so runs stay seeded.
  parallel-shared-mutation non-atomic writes to reference-captured locals
                           inside bodies handed to sel::Executor /
                           parallel_for. Racy accumulation makes results
                           depend on thread interleaving.

Engines:

  * AST mode (``--mode=ast``): consumes ``clang++ -Xclang -ast-dump=json``
    per translation unit listed in build/compile_commands.json. Type-accurate
    for the iteration/clock/rng rules.
  * Token mode (``--mode=token``): pure-Python scanner, no toolchain needed.
    Tracks unordered declarations (including those of the paired header and
    a repo-wide map of functions returning unordered containers) and flags
    iteration over them.
  * ``--mode=auto`` (default): AST when clang++ and compile_commands.json
    are available, token otherwise. A TU whose AST dump fails falls back to
    the token scanner for that file.

The parallel-shared-mutation rule always runs on the token engine (lambda
capture provenance is not reliably recoverable from the JSON AST dump).

Baseline: ``scripts/analyze_baseline.txt`` holds known findings as
``path: rule: normalized-line`` entries (regenerate with
``--update-baseline``). The gate fails on any finding not in the baseline,
and on baseline entries that name files which no longer exist — stale debt
must be deleted, not carried.

Exit status: 0 clean, 1 findings (or stale baseline), 2 usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

# Overridable so the self-test can point the path-scoped rules at a fixture
# tree (scripts/test_sel_analyze.py).
REPO_ROOT = os.environ.get("SEL_ANALYZE_ROOT") or os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)

# Subsystems whose visit order reaches overlay structure, message delivery
# or report bytes. obs/ is included: run reports and Perfetto traces must be
# byte-stable so compare_reports.py can diff them.
DETERMINISTIC_DIRS = (
    "src/select",
    "src/overlay",
    "src/pubsub",
    "src/sim",
    "src/runtime",
    "src/fault",
    "src/graph",
    "src/lsh",
    "src/baselines",
    "src/obs",
)

RULES = {
    "unordered-iteration": {
        "description": "iteration over std::unordered_map/set",
        "include": DETERMINISTIC_DIRS,
        "exclude": (),
    },
    "wall-clock": {
        "description": "wall-clock read outside src/obs/",
        "include": ("src",),
        "exclude": ("src/obs",),
    },
    "unseeded-rng": {
        "description": "randomness not flowing through common/rng.hpp",
        "include": ("src",),
        "exclude": ("src/common/rng.hpp", "src/common/rng.cpp"),
    },
    "parallel-shared-mutation": {
        "description": "non-atomic write to shared state in a parallel body",
        "include": DETERMINISTIC_DIRS,
        "exclude": (),
    },
}

SUPPRESS_RE = re.compile(r"SEL_NONDET_OK\(([a-z-]+)\)")

UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
WALL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|[^\w:.]time\s*\(\s*(?:NULL|nullptr|0|&)"
)
RNG_RE = re.compile(
    r"\bstd::(?:random_device|mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine|ranlux\w+|knuth_b)\b"
)

CPP_EXTS = (".hpp", ".cpp", ".h", ".cc")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str  # repo-relative
    line: int  # 1-indexed
    rule: str
    text: str  # stripped source line

    def key(self) -> str:
        """Line-number-free fingerprint used by the baseline (mirrors
        tidy_baseline.txt): unrelated edits must not churn entries."""
        return f"{self.path}: {self.rule}: {normalize_text(self.text)}"


def normalize_text(text: str) -> str:
    return re.sub(r"\s+", " ", text.strip())


def rule_applies(rule: str, rel_path: str) -> bool:
    spec = RULES[rule]
    rel = rel_path.replace(os.sep, "/")
    if not any(
        rel == inc or rel.startswith(inc + "/") for inc in spec["include"]
    ):
        return False
    return not any(
        rel == exc or rel.startswith(exc + "/") for exc in spec["exclude"]
    )


# --------------------------------------------------------------------------
# Shared lexical helpers
# --------------------------------------------------------------------------


def strip_comments_and_strings(source: str) -> list[str]:
    """Returns source lines with comments and string/char literals blanked
    (replaced by spaces), preserving line structure. Handles // and block
    comments spanning lines; raw strings are treated as plain strings (good
    enough for this tree)."""
    out = []
    i = 0
    n = len(source)
    in_block = False
    line: list[str] = []

    def flush() -> None:
        out.append("".join(line))
        line.clear()

    while i < n:
        c = source[i]
        if c == "\n":
            flush()
            i += 1
            continue
        if in_block:
            if c == "*" and i + 1 < n and source[i + 1] == "/":
                in_block = False
                i += 2
            else:
                i += 1
            continue
        if c == "/" and i + 1 < n:
            if source[i + 1] == "/":
                while i < n and source[i] != "\n":
                    i += 1
                continue
            if source[i + 1] == "*":
                in_block = True
                i += 2
                continue
        if c in "\"'":
            quote = c
            line.append(" ")
            i += 1
            while i < n and source[i] != "\n":
                if source[i] == "\\":
                    i += 2
                    continue
                if source[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        line.append(c)
        i += 1
    flush()
    return out


def suppressions(raw_lines: list[str]) -> list[set[str]]:
    """Per-line suppression sets: SEL_NONDET_OK on the line or the line
    above covers a finding."""
    allows: list[set[str]] = []
    for idx, raw in enumerate(raw_lines):
        cur = set(SUPPRESS_RE.findall(raw))
        if idx > 0:
            cur |= set(SUPPRESS_RE.findall(raw_lines[idx - 1]))
        allows.append(cur)
    return allows


def list_cpp_files(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isdir(full):
            for root, _dirs, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith(CPP_EXTS):
                        files.append(os.path.join(root, name))
        elif full.endswith(CPP_EXTS):
            files.append(full)
    return sorted(set(files))


# --------------------------------------------------------------------------
# Token engine
# --------------------------------------------------------------------------

# `std::unordered_set<PeerId> name` / `FlatSet` exoneration happens naturally:
# only unordered declarations are recorded.
DECL_RE = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;()]*?>\s*&?\s*"
    r"(\w+)\s*[;={(,)]"
)
# `auto subs = expr;` — subs inherits unorderedness from expr.
AUTO_DECL_RE = re.compile(r"\b(?:const\s+)?auto&?\s+(\w+)\s*=\s*([^;]+);")
# Range-for only: `::` is consumed whole and `;` is banned, so classic
# three-clause for loops (including `for (std::size_t ...;...)`) never match.
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\("
    r"((?:[^;:()\[\]]|::|\([^()]*\)|\[[^\]]*\])+?)"
    r":(?!:)"
    r"((?:[^();]|\([^()]*\))+)"
    r"\)"
)
# Explicit iterator traversal: x.begin() ... x.end() on one line.
ITER_PAIR_RE = re.compile(r"(\w[\w.\->]*)\s*\.\s*begin\s*\(\)")
FUNC_RET_UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)\s*\("
)


def collect_unordered_returning_functions(files: list[str]) -> set[str]:
    """Repo-wide set of function names declared to return an unordered
    container (so `for (x : obj.fn(...))` and `auto s = fn(...)` are caught
    across translation units)."""
    names: set[str] = set()
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                code_lines = strip_comments_and_strings(fh.read())
        except OSError:
            continue
        for line in code_lines:
            for m in FUNC_RET_UNORDERED_RE.finditer(line):
                names.add(m.group(1))
    return names


def paired_header(path: str) -> str | None:
    base, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc"):
        return None
    for hext in (".hpp", ".h"):
        cand = base + hext
        if os.path.exists(cand):
            return cand
    return None


def unordered_decls_in(code_lines: list[str], unordered_fns: set[str]) -> set[str]:
    decls: set[str] = set()
    for line in code_lines:
        for m in DECL_RE.finditer(line):
            decls.add(m.group(1))
        for m in AUTO_DECL_RE.finditer(line):
            name, expr = m.group(1), m.group(2)
            if UNORDERED_TYPE_RE.search(expr):
                decls.add(name)
                continue
            call = re.search(r"(\w+)\s*\(", expr)
            if call and call.group(1) in unordered_fns:
                decls.add(name)
    return decls


def last_identifier(expr: str) -> str | None:
    """The trailing identifier of `a.b.c` / `a->b` / plain `c` expressions
    (what a member-qualified range expression resolves to)."""
    expr = expr.strip()
    m = re.search(r"(\w+)\s*$", expr)
    return m.group(1) if m else None


def token_scan_file(
    path: str, unordered_fns: set[str], rules: list[str]
) -> list[Finding]:
    rel = os.path.relpath(path, REPO_ROOT)
    with open(path, encoding="utf-8", errors="replace") as fh:
        source = fh.read()
    raw_lines = source.splitlines()
    code_lines = strip_comments_and_strings(source)
    allows = suppressions(raw_lines)
    findings: list[Finding] = []

    def add(idx: int, rule: str) -> None:
        if rule in allows[idx]:
            return
        findings.append(Finding(rel, idx + 1, rule, raw_lines[idx].strip()))

    # Declarations visible to this file: its own plus its paired header's
    # (members like InFlight::subscribers are declared in the .hpp and
    # iterated in the .cpp).
    decls = unordered_decls_in(code_lines, unordered_fns)
    header = paired_header(path)
    if header is not None:
        with open(header, encoding="utf-8", errors="replace") as fh:
            decls |= unordered_decls_in(
                strip_comments_and_strings(fh.read()), unordered_fns
            )

    check_unordered = "unordered-iteration" in rules and rule_applies(
        "unordered-iteration", rel
    )
    check_clock = "wall-clock" in rules and rule_applies("wall-clock", rel)
    check_rng = "unseeded-rng" in rules and rule_applies("unseeded-rng", rel)

    for idx, line in enumerate(code_lines):
        if check_unordered:
            flagged = False
            for m in RANGE_FOR_RE.finditer(line):
                range_expr = m.group(2)
                if UNORDERED_TYPE_RE.search(range_expr):
                    add(idx, "unordered-iteration")
                    flagged = True
                    break
                call = re.search(r"(\w+)\s*\([^()]*\)\s*$", range_expr)
                if call and call.group(1) in unordered_fns:
                    add(idx, "unordered-iteration")
                    flagged = True
                    break
                name = last_identifier(
                    re.sub(r"\([^()]*\)\s*$", "", range_expr)
                )
                if name in decls:
                    add(idx, "unordered-iteration")
                    flagged = True
                    break
            if not flagged:
                for m in ITER_PAIR_RE.finditer(line):
                    name = last_identifier(m.group(1).replace("->", "."))
                    if name in decls and ".end()" in line:
                        add(idx, "unordered-iteration")
                        break
        if check_clock and WALL_CLOCK_RE.search(line):
            add(idx, "wall-clock")
        if check_rng and RNG_RE.search(line):
            add(idx, "unseeded-rng")

    if "parallel-shared-mutation" in rules and rule_applies(
        "parallel-shared-mutation", rel
    ):
        findings.extend(
            scan_parallel_mutation(rel, raw_lines, code_lines, allows)
        )
    return findings


# ----- parallel-shared-mutation (token engine, always) ---------------------

PARALLEL_CALL_RE = re.compile(
    r"\b(?:for_chunks|parallel_for|parallel_for_chunks)\s*\("
)
LAMBDA_REF_CAPTURE_RE = re.compile(r"\[\s*&|\[[^\]]*[,\s]&")
MUTATION_RE = re.compile(
    r"(?:\+\+|--)\s*(\w+)\b"  # ++x / --x
    r"|\b(\w+)\s*(?:\+\+|--)"  # x++ / x--
    r"|\b(\w+)\s*(?:[-+*/|&^]|<<|>>)?=(?![=>])"  # x =, x +=, ...
    r"|\b(\w+)\s*\.\s*(?:push_back|emplace_back|insert|emplace|clear|erase)\s*\("
)
ATOMIC_DECL_RE = re.compile(r"\batomic\b[^;]*?\b(\w+)\s*[;={(]")


def find_lambda_body(code_lines: list[str], start_idx: int) -> tuple[int, int]:
    """(first, last) line indices of the first lambda body at/after
    start_idx; (-1, -1) when none found nearby."""
    depth = 0
    opened = False
    for idx in range(start_idx, min(start_idx + 80, len(code_lines))):
        line = code_lines[idx]
        pos = 0
        if not opened:
            lm = re.search(r"\[[^\]]*\]", line)
            if lm is None:
                continue
            pos = lm.end()
        for j in range(pos, len(line)):
            if line[j] == "{":
                depth += 1
                opened = True
            elif line[j] == "}":
                depth -= 1
                if opened and depth == 0:
                    return (start_idx, idx)
        if opened and depth == 0:
            return (start_idx, idx)
        if not opened:
            continue
    return (start_idx, min(start_idx + 80, len(code_lines) - 1)) if opened else (-1, -1)


def scan_parallel_mutation(
    rel: str,
    raw_lines: list[str],
    code_lines: list[str],
    allows: list[set[str]],
) -> list[Finding]:
    findings: list[Finding] = []
    atomics: set[str] = set()
    for line in code_lines:
        for m in ATOMIC_DECL_RE.finditer(line):
            atomics.add(m.group(1))

    for idx, line in enumerate(code_lines):
        call = PARALLEL_CALL_RE.search(line)
        if call is None:
            continue
        # The parallel body either starts on this line or is a named lambda
        # defined earlier and passed by name; only inline/nearby lambdas are
        # analyzed — a named lambda is caught where it is *defined* if it is
        # later passed (best-effort: scan backwards for `auto name = [`).
        region = find_lambda_body(code_lines, idx)
        arg = line[call.end():]
        named = re.match(r"\s*[^,]*,\s*(\w+)\s*\)", arg)
        if region[0] < 0 and named:
            # for_chunks(a, b, body_name): find `body_name = [...]` above.
            pat = re.compile(r"\b" + re.escape(named.group(1)) + r"\s*=\s*\[")
            for back in range(idx - 1, max(-1, idx - 120), -1):
                if pat.search(code_lines[back]):
                    region = find_lambda_body(code_lines, back)
                    break
        if region[0] < 0:
            continue
        first, last = region
        # Reference-captured lambda? By-value bodies cannot race.
        header_txt = " ".join(code_lines[first : min(first + 3, last + 1)])
        if not LAMBDA_REF_CAPTURE_RE.search(header_txt):
            continue
        # Locals declared inside the body are per-invocation, not shared.
        local_decl_re = re.compile(
            r"\b(?:auto|int|long|double|float|bool|std::\w+|[A-Z]\w*)"
            r"[\w:<>,&*\s]*?\b(\w+)\s*[=;{(]"
        )
        locals_in_body: set[str] = set()
        for j in range(first, last + 1):
            for m in local_decl_re.finditer(code_lines[j]):
                locals_in_body.add(m.group(1))
        for j in range(first, last + 1):
            body_line = code_lines[j]
            for m in MUTATION_RE.finditer(body_line):
                name = next(g for g in m.groups() if g)
                if name in atomics or name in locals_in_body:
                    continue
                if name in ("this",) or body_line.lstrip().startswith("for"):
                    continue
                # Only reference-captured outer names: a name that is never
                # declared in the body and not atomic. Heuristic guard: skip
                # obvious keywords/calls.
                if re.match(r"^(if|while|return|case|else)$", name):
                    continue
                if "parallel-shared-mutation" in allows[j]:
                    continue
                findings.append(
                    Finding(
                        rel,
                        j + 1,
                        "parallel-shared-mutation",
                        raw_lines[j].strip(),
                    )
                )
    return findings


# --------------------------------------------------------------------------
# AST engine (clang -ast-dump=json)
# --------------------------------------------------------------------------


def find_clang() -> str | None:
    env = os.environ.get("SEL_ANALYZE_CLANG")
    if env:
        return env if shutil.which(env) else None
    for name in ("clang++", "clang++-19", "clang++-18", "clang++-17",
                 "clang++-16", "clang++-15"):
        if shutil.which(name):
            return name
    return None


def load_compile_commands(build_dir: str) -> dict[str, list[str]]:
    """Maps absolute source path -> compile argv (without the -o/-c tail)."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        return {}
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    cmds: dict[str, list[str]] = {}
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if "command" in entry:
            argv = shlex.split(entry["command"])
        else:
            argv = list(entry.get("arguments", []))
        cmds[path] = argv
    return cmds


def ast_dump(clang: str, argv: list[str], path: str) -> dict | None:
    """JSON AST for one TU, or None when the dump fails."""
    args = [clang, "-x", "c++", "-fsyntax-only", "-Xclang", "-ast-dump=json"]
    keep = False
    for i, a in enumerate(argv[1:], 1):
        if a in ("-o", "-c"):
            keep = False
            continue
        if a.startswith(("-I", "-D", "-std", "-isystem", "-W", "-f")):
            args.append(a)
            keep = a in ("-I", "-D", "-isystem")
            continue
        if keep:
            args.append(a)
            keep = False
    args.append(path)
    try:
        proc = subprocess.run(
            args, capture_output=True, text=True, check=False,
            cwd=REPO_ROOT, timeout=300,
        )
        if proc.returncode != 0 or not proc.stdout:
            return None
        return json.loads(proc.stdout)
    except (OSError, subprocess.TimeoutExpired, json.JSONDecodeError):
        return None


def walk_ast(node: dict, visit, path_filter: str) -> None:
    """Depth-first walk keeping track of the current source file (clang only
    emits `file` on location changes)."""
    stack = [(node, "")]
    while stack:
        cur, cur_file = stack.pop()
        if not isinstance(cur, dict):
            continue
        loc = cur.get("loc") or {}
        spelling = loc.get("spellingLoc") or loc
        f = spelling.get("file")
        if f:
            cur_file = os.path.normpath(
                f if os.path.isabs(f) else os.path.join(REPO_ROOT, f)
            )
        if not path_filter or path_filter in (cur_file or ""):
            visit(cur, cur_file)
        for child in cur.get("inner", []) or []:
            stack.append((child, cur_file))


def ast_line(node: dict) -> int:
    loc = node.get("loc") or {}
    spelling = loc.get("spellingLoc") or loc
    if "line" in spelling:
        return spelling["line"]
    rng = node.get("range") or {}
    begin = rng.get("begin") or {}
    sp = begin.get("spellingLoc") or begin
    return sp.get("line", 0)


def node_type(node: dict) -> str:
    t = node.get("type") or {}
    return t.get("desugaredQualType") or t.get("qualType") or ""


def ast_scan_tu(
    tu_json: dict, rules: list[str], file_cache: dict[str, tuple[list[str], list[set[str]]]]
) -> list[Finding]:
    findings: list[Finding] = []

    def lines_allows(abs_path: str) -> tuple[list[str], list[set[str]]]:
        if abs_path not in file_cache:
            try:
                with open(abs_path, encoding="utf-8", errors="replace") as fh:
                    raw = fh.read().splitlines()
            except OSError:
                raw = []
            file_cache[abs_path] = (raw, suppressions(raw))
        return file_cache[abs_path]

    def emit(abs_path: str, line: int, rule: str) -> None:
        rel = os.path.relpath(abs_path, REPO_ROOT)
        if rel.startswith("..") or not rule_applies(rule, rel):
            return
        raw, allows = lines_allows(abs_path)
        if 1 <= line <= len(allows) and rule in allows[line - 1]:
            return
        text = raw[line - 1].strip() if 1 <= line <= len(raw) else ""
        findings.append(Finding(rel, line, rule, text))

    def visit(node: dict, cur_file: str) -> None:
        if not cur_file or "/src/" not in cur_file.replace(os.sep, "/"):
            return
        kind = node.get("kind")
        if kind == "CXXForRangeStmt" and "unordered-iteration" in rules:
            # The range variable's initializer type names the container.
            for child in node.get("inner", []) or []:
                if not isinstance(child, dict):
                    continue
                if UNORDERED_TYPE_RE.search(json.dumps(child.get("type", {}))):
                    emit(cur_file, ast_line(node), "unordered-iteration")
                    return
                for sub in child.get("inner", []) or []:
                    if isinstance(sub, dict) and UNORDERED_TYPE_RE.search(
                        node_type(sub)
                    ):
                        emit(cur_file, ast_line(node), "unordered-iteration")
                        return
        elif kind in ("DeclRefExpr", "MemberExpr") and "wall-clock" in rules:
            ref = node.get("referencedDecl") or {}
            name = ref.get("name") or node.get("name") or ""
            qual = node_type(node)
            if name == "now" and re.search(
                r"steady_clock|system_clock|high_resolution_clock", qual
            ):
                emit(cur_file, ast_line(node), "wall-clock")
        elif kind in ("CXXConstructExpr", "VarDecl") and "unseeded-rng" in rules:
            if re.search(
                r"\b(?:random_device|mt19937(?:_64)?|minstd_rand0?|"
                r"default_random_engine)\b",
                node_type(node),
            ):
                emit(cur_file, ast_line(node), "unseeded-rng")

    walk_ast(tu_json, visit, path_filter="")
    return findings


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

BASELINE_HEADER = """\
# Determinism-analyzer baseline (scripts/sel_analyze.py, DESIGN.md §15).
# One `path: rule: normalized-line` entry per known finding; regenerate with
#   scripts/sel_analyze.py --update-baseline
# Shrink it when you fix debt; never grow it silently. Entries for files
# that no longer exist fail the gate: delete stale debt, don't carry it.
"""


def load_baseline(path: str) -> list[str]:
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        return [
            line.rstrip("\n")
            for line in fh
            if line.strip() and not line.startswith("#")
        ]


def stale_baseline_entries(entries: list[str]) -> list[str]:
    stale = []
    for entry in entries:
        rel = entry.split(":", 1)[0].strip()
        if rel and not os.path.exists(os.path.join(REPO_ROOT, rel)):
            stale.append(entry)
    return stale


def write_baseline(path: str, keys: list[str]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(BASELINE_HEADER)
        for key in sorted(set(keys)):
            fh.write(key + "\n")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def analyze(
    paths: list[str],
    mode: str,
    build_dir: str,
    rules: list[str],
) -> tuple[list[Finding], str]:
    """Returns (findings, engine_used)."""
    files = list_cpp_files(paths)
    unordered_fns = collect_unordered_returning_functions(
        list_cpp_files(["src"])
    )

    clang = find_clang()
    cmds = load_compile_commands(build_dir) if mode in ("auto", "ast") else {}
    use_ast = mode == "ast" or (mode == "auto" and clang and cmds)
    if mode == "ast" and (not clang or not cmds):
        print(
            "sel_analyze: --mode=ast requires clang++ and "
            f"{build_dir}/compile_commands.json",
            file=sys.stderr,
        )
        sys.exit(2)

    findings: list[Finding] = []
    engine = "ast" if use_ast else "token"
    token_rules_all = list(rules)

    if use_ast:
        ast_rules = [r for r in rules if r != "parallel-shared-mutation"]
        file_cache: dict[str, tuple[list[str], list[set[str]]]] = {}
        seen_headers: set[str] = set()
        covered: set[str] = set()
        for path in files:
            if path not in cmds:
                continue  # headers: covered via including TUs below
            tu = ast_dump(clang, cmds[path], path)
            if tu is None:
                print(
                    f"sel_analyze: AST dump failed for "
                    f"{os.path.relpath(path, REPO_ROOT)}; token fallback",
                    file=sys.stderr,
                )
                findings.extend(
                    token_scan_file(path, unordered_fns, token_rules_all)
                )
                covered.add(path)
                continue
            for f in ast_scan_tu(tu, ast_rules, file_cache):
                abs_f = os.path.join(REPO_ROOT, f.path)
                if abs_f == path or abs_f not in files or abs_f not in seen_headers:
                    seen_headers.add(abs_f)
                    findings.append(f)
            covered.add(path)
            # parallel rule is token-engine-only:
            findings.extend(
                token_scan_file(
                    path, unordered_fns, ["parallel-shared-mutation"]
                )
            )
        # Files with no compile command (headers, sources outside the build)
        # still get the token scan so nothing is silently skipped.
        for path in files:
            if path not in covered:
                findings.extend(
                    token_scan_file(path, unordered_fns, token_rules_all)
                )
    else:
        for path in files:
            findings.extend(
                token_scan_file(path, unordered_fns, token_rules_all)
            )

    # One finding per (path, rule, normalized line): the AST pass can visit
    # a line once per template instantiation.
    unique: dict[tuple[str, str, str, int], Finding] = {}
    for f in findings:
        unique.setdefault((f.path, f.rule, normalize_text(f.text), f.line), f)
    ordered = sorted(
        unique.values(), key=lambda f: (f.path, f.line, f.rule)
    )
    return ordered, engine


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    ap.add_argument(
        "--mode", choices=("auto", "ast", "token"), default="auto",
        help="analysis engine (default: auto = AST when clang++ and "
        "compile_commands.json are available)",
    )
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "scripts", "analyze_baseline.txt"),
    )
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    ap.add_argument(
        "--rules", default=",".join(RULES),
        help="comma-separated rule subset (default: all)",
    )
    args = ap.parse_args()

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        print(f"sel_analyze: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    findings, engine = analyze(args.paths, args.mode, args.build_dir, rules)

    if args.update_baseline:
        write_baseline(args.baseline, [f.key() for f in findings])
        print(
            f"sel_analyze: baseline updated with {len(findings)} finding(s)"
        )
        return 0

    baseline = set() if args.no_baseline else set(load_baseline(args.baseline))
    stale = stale_baseline_entries(sorted(baseline))
    new = [f for f in findings if f.key() not in baseline]
    fixed = baseline - {f.key() for f in findings}

    status = 0
    if stale:
        print(
            f"sel_analyze: {len(stale)} baseline entr(y|ies) reference "
            "missing files — delete them:"
        )
        for entry in stale:
            print(f"  stale: {entry}")
        status = 1
    if fixed and not args.no_baseline:
        print(
            f"sel_analyze: {len(fixed)} baseline entr(y|ies) no longer "
            "fire; shrink the baseline:",
            file=sys.stderr,
        )
        for entry in sorted(fixed)[:20]:
            print(f"  fixed: {entry}", file=sys.stderr)
    if new:
        print(f"sel_analyze[{engine}]: {len(new)} violation(s):")
        for f in new:
            print(f"  {f.path}:{f.line}: [{f.rule}] {f.text}")
        print(
            "suppress a legitimate use with "
            "`// SEL_NONDET_OK(<rule>): reason` on or above the line, or "
            "record accepted debt with --update-baseline"
        )
        status = 1
    if status == 0:
        print(
            f"sel_analyze[{engine}]: OK "
            f"({len(findings)} finding(s), all baselined; "
            f"{len(baseline)} baseline entr(y|ies))"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
