#!/usr/bin/env python3
"""Repo-specific C++ lint rules (no toolchain needed — pure Python).

Rules, each suppressible on the offending (or preceding) line with
``// SEL_LINT_ALLOW(<rule>): reason``:

  naked-new        `new`/`delete` outside a smart-pointer constructor.
                   `std::unique_ptr<T>(new T...)` on the same or the two
                   preceding lines is allowed (needed for private ctors
                   where make_unique cannot reach).
  std-rand         std::rand/std::srand/rand() — all randomness must flow
                   through common/rng.hpp so runs stay seeded and
                   reproducible.
  const-cast       any const_cast without an explicit SEL_LINT_ALLOW —
                   the event-queue const_cast-move bug class.
  bare-assert      assert()/ <cassert> — use SEL_ASSERT / SEL_EXPECTS /
                   SEL_ENSURES (common/assert.hpp), which stay on in
                   release builds and print a source location.

Exit status: 0 clean, 1 violations found.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"SEL_LINT_ALLOW\(([a-z-]+)\)")
SMART_PTR_RE = re.compile(r"(?:std::)?(?:unique_ptr|shared_ptr)\s*<")

RULES = {
    "naked-new": re.compile(r"(?:^|[^_\w.])new\s+[A-Za-z_:][\w:<>]*\s*[({[]"),
    "naked-delete": re.compile(r"(?:^|[^_\w.])delete(?:\[\])?\s+[A-Za-z_]"),
    "std-rand": re.compile(r"(?:std::s?rand\b|[^_\w.]s?rand\s*\(\s*\))"),
    "const-cast": re.compile(r"\bconst_cast\s*<"),
    "bare-assert": re.compile(r"(?:^|[^_\w.])assert\s*\(|#include\s*<cassert>"),
}

# Rules whose only legitimate uses are explicitly annotated.
SUPPRESS_ONLY = {"const-cast"}


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: str) -> list[tuple[str, int, str, str]]:
    with open(path, encoding="utf-8", errors="replace") as fh:
        raw_lines = fh.read().splitlines()
    violations = []
    rel = os.path.relpath(path, REPO_ROOT)
    for idx, raw in enumerate(raw_lines):
        code = strip_comments_and_strings(raw)
        # Suppressions may sit on the line itself or the one above.
        allows = set(ALLOW_RE.findall(raw))
        if idx > 0:
            allows |= set(ALLOW_RE.findall(raw_lines[idx - 1]))
        for rule, pattern in RULES.items():
            if not pattern.search(code):
                continue
            base_rule = "naked-new" if rule == "naked-delete" else rule
            if base_rule in allows or rule in allows:
                continue
            if rule == "naked-new":
                # Smart-pointer adoption on this or the two preceding lines
                # (the expression often wraps).
                window = " ".join(raw_lines[max(0, idx - 2) : idx + 1])
                if SMART_PTR_RE.search(window):
                    continue
            if rule == "bare-assert" and "static_assert" in code:
                continue
            violations.append((rel, idx + 1, rule, raw.strip()))
    return violations


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    args = ap.parse_args()

    files = []
    for p in args.paths:
        full = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isdir(full):
            for root, _dirs, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                        files.append(os.path.join(root, name))
        elif full.endswith((".hpp", ".cpp", ".h", ".cc")):
            files.append(full)

    all_violations = []
    for f in sorted(files):
        all_violations.extend(lint_file(f))

    if all_violations:
        print(f"select_lint: {len(all_violations)} violation(s):")
        for rel, line, rule, text in all_violations:
            print(f"  {rel}:{line}: [{rule}] {text}")
        print(
            "suppress a legitimate use with "
            "`// SEL_LINT_ALLOW(<rule>): reason` on or above the line"
        )
        return 1
    print(f"select_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
