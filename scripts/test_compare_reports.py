#!/usr/bin/env python3
"""Self-test for compare_reports.py --fail-on gating (stdlib only).

Builds two synthetic run reports, then asserts the exit codes:
  * no --fail-on            -> 0 (reporting mode never gates)
  * within tolerance        -> 0
  * beyond tolerance        -> 1
  * metric missing          -> 1
  * metric missing with --allow-missing (v2 baseline vs v3 candidate) -> 0
  * metric missing from BOTH reports, even with --allow-missing       -> 1
  * mem.* keys from the schema-v3 `memory` section gate like any metric
  * malformed spec          -> nonzero usage error

Run directly (CI does): python3 scripts/test_compare_reports.py
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_reports.py")


def make_report(deliveries, compute_ms, memory=None):
    """Synthetic report; `memory` (a dict) upgrades it to schema v3."""
    report = {
        "schema_version": 2,
        "experiment": "selftest",
        "git_describe": "test",
        "metadata": {},
        "metrics": {
            "counters": {"pubsub.deliveries": deliveries,
                         "select.rounds": 10},
            "gauges": {"select.rounds_to_stable_ids": 7.0},
            "histograms": {},
            "spans": {"select.round": {"count": 10, "total_ns": 5000000}},
            "rounds": [
                {"label": "select.round", "round": r,
                 "compute_ms": compute_ms, "barrier_ms": 0.0,
                 "deliver_ms": 0.1, "messages": 20}
                for r in range(10)
            ],
        },
        "timeseries": [],
    }
    if memory is not None:
        report["schema_version"] = 3
        report["memory"] = memory
    return report


def run(args):
    proc = subprocess.run([sys.executable, SCRIPT, *args],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    def check(name, got, want, output):
        if got != want:
            failures.append(f"{name}: exit {got}, expected {want}\n{output}")
        else:
            print(f"ok: {name}")

    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "base.report.json")
        cand = os.path.join(tmp, "cand.report.json")
        with open(base, "w") as f:
            json.dump(make_report(deliveries=1000, compute_ms=1.0), f)
        with open(cand, "w") as f:
            json.dump(make_report(deliveries=900, compute_ms=1.3), f)

        code, out = run([base, cand])
        check("no --fail-on always exits 0", code, 0, out)

        code, out = run([base, cand, "--fail-on", "pubsub.deliveries=0.2"])
        check("10% drop within 20% tolerance", code, 0, out)

        code, out = run([base, cand, "--fail-on", "pubsub.deliveries=0.05"])
        check("10% drop beyond 5% tolerance", code, 1, out)

        code, out = run([base, cand, "--fail-on", "select.rounds=0"])
        check("unchanged metric with zero tolerance", code, 0, out)

        code, out = run(
            [base, cand,
             "--fail-on", "select.round.compute_ms_per_round=0.1"])
        check("round aggregate regression gates", code, 1, out)

        code, out = run([base, cand, "--fail-on", "no.such.metric=0.5"])
        check("missing metric gates", code, 1, out)

        # Schema transition: v2 baseline (no memory section) vs v3
        # candidate. Without --allow-missing the mem gate fails; with it
        # the missing key downgrades to a warning while the shared metrics
        # keep gating.
        cand3 = os.path.join(tmp, "cand3.report.json")
        with open(cand3, "w") as f:
            json.dump(make_report(deliveries=1000, compute_ms=1.0,
                                  memory={"mem.rss_peak_bytes": 1e8,
                                          "mem.bytes_per_peer": 5e4}), f)

        code, out = run([base, cand3,
                         "--fail-on", "mem.rss_peak_bytes=0.05"])
        check("v2 baseline missing mem key gates", code, 1, out)

        code, out = run([base, cand3, "--allow-missing",
                         "--fail-on", "mem.rss_peak_bytes=0.05",
                         "--fail-on", "pubsub.deliveries=0"])
        check("--allow-missing skips schema-skew key", code, 0, out)

        code, out = run([base, cand3, "--allow-missing",
                         "--fail-on", "no.such.metric=0.5"])
        check("missing from both still gates with --allow-missing",
              code, 1, out)

        # Both reports v3: mem.* keys gate like any other flat metric.
        base3 = os.path.join(tmp, "base3.report.json")
        with open(base3, "w") as f:
            json.dump(make_report(deliveries=1000, compute_ms=1.0,
                                  memory={"mem.rss_peak_bytes": 2e8,
                                          "mem.bytes_per_peer": 5e4}), f)

        code, out = run([base3, cand3,
                         "--fail-on", "mem.rss_peak_bytes=0.05"])
        check("mem regression beyond tolerance gates", code, 1, out)

        code, out = run([base3, cand3,
                         "--fail-on", "mem.bytes_per_peer=0.05"])
        check("unchanged mem metric passes", code, 0, out)

        code, out = run([base, cand, "--fail-on", "pubsub.deliveries"])
        if code == 0:
            failures.append(f"malformed spec accepted\n{out}")
        else:
            print("ok: malformed spec rejected")

    if failures:
        print("\n".join(f"FAIL {f}" for f in failures), file=sys.stderr)
        sys.exit(1)
    print("test_compare_reports: all checks passed")


if __name__ == "__main__":
    main()
