#!/usr/bin/env python3
"""Self-test for compare_reports.py --fail-on gating (stdlib only).

Builds two synthetic run reports, then asserts the exit codes:
  * no --fail-on            -> 0 (reporting mode never gates)
  * within tolerance        -> 0
  * beyond tolerance        -> 1
  * metric missing          -> 1
  * malformed spec          -> nonzero usage error

Run directly (CI does): python3 scripts/test_compare_reports.py
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_reports.py")


def make_report(deliveries, compute_ms):
    return {
        "schema_version": 2,
        "experiment": "selftest",
        "git_describe": "test",
        "metadata": {},
        "metrics": {
            "counters": {"pubsub.deliveries": deliveries,
                         "select.rounds": 10},
            "gauges": {"select.rounds_to_stable_ids": 7.0},
            "histograms": {},
            "spans": {"select.round": {"count": 10, "total_ns": 5000000}},
            "rounds": [
                {"label": "select.round", "round": r,
                 "compute_ms": compute_ms, "barrier_ms": 0.0,
                 "deliver_ms": 0.1, "messages": 20}
                for r in range(10)
            ],
        },
        "timeseries": [],
    }


def run(args):
    proc = subprocess.run([sys.executable, SCRIPT, *args],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    def check(name, got, want, output):
        if got != want:
            failures.append(f"{name}: exit {got}, expected {want}\n{output}")
        else:
            print(f"ok: {name}")

    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "base.report.json")
        cand = os.path.join(tmp, "cand.report.json")
        with open(base, "w") as f:
            json.dump(make_report(deliveries=1000, compute_ms=1.0), f)
        with open(cand, "w") as f:
            json.dump(make_report(deliveries=900, compute_ms=1.3), f)

        code, out = run([base, cand])
        check("no --fail-on always exits 0", code, 0, out)

        code, out = run([base, cand, "--fail-on", "pubsub.deliveries=0.2"])
        check("10% drop within 20% tolerance", code, 0, out)

        code, out = run([base, cand, "--fail-on", "pubsub.deliveries=0.05"])
        check("10% drop beyond 5% tolerance", code, 1, out)

        code, out = run([base, cand, "--fail-on", "select.rounds=0"])
        check("unchanged metric with zero tolerance", code, 0, out)

        code, out = run(
            [base, cand,
             "--fail-on", "select.round.compute_ms_per_round=0.1"])
        check("round aggregate regression gates", code, 1, out)

        code, out = run([base, cand, "--fail-on", "no.such.metric=0.5"])
        check("missing metric gates", code, 1, out)

        code, out = run([base, cand, "--fail-on", "pubsub.deliveries"])
        if code == 0:
            failures.append(f"malformed spec accepted\n{out}")
        else:
            print("ok: malformed spec rejected")

    if failures:
        print("\n".join(f"FAIL {f}" for f in failures), file=sys.stderr)
        sys.exit(1)
    print("test_compare_reports: all checks passed")


if __name__ == "__main__":
    main()
