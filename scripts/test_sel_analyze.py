#!/usr/bin/env python3
"""Self-test for sel_analyze.py, the determinism analyzer (stdlib only).

Builds a fixture repo tree (SEL_ANALYZE_ROOT override) with one synthetic
violation per rule plus clean/suppressed/out-of-scope twins, then asserts:
  * each rule fires where it should and ONLY there;
  * SEL_NONDET_OK on the line or the line above suppresses;
  * rule path scoping (obs/ clock exemption, common/rng.hpp rng exemption,
    tests/ ignored entirely);
  * baseline round-trip: --update-baseline then a clean gate, and a fixed
    finding is reported as shrinkable;
  * a baseline entry naming a missing file fails the gate (stale debt);
  * exit codes: 0 clean, 1 findings, 2 unknown rule.

Run directly (CI and ctest do): python3 scripts/test_sel_analyze.py
"""

import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "sel_analyze.py")

# --- fixture sources -------------------------------------------------------

UNORDERED_BAD = """\
#include <unordered_map>
#include <unordered_set>
#include <vector>
namespace sel {
std::unordered_set<int> leak_set();
void iterate_decl() {
  std::unordered_map<int, int> m;
  for (const auto& [k, v] : m) { (void)k; (void)v; }
}
void iterate_call() {
  for (const int s : leak_set()) { (void)s; }
}
void iterate_auto_alias() {
  auto s = leak_set();
  for (const int x : s) { (void)x; }
}
}  // namespace sel
"""

UNORDERED_OK = """\
#include <unordered_map>
#include <unordered_set>
#include <vector>
namespace sel {
void clean() {
  std::vector<int> v{3, 1, 2};
  for (const int x : v) { (void)x; }          // ordered: fine
  std::unordered_set<int> member_only;
  (void)member_only.count(1);                  // lookup, no iteration: fine
  for (std::size_t i = 0; i < v.size(); ++i) { (void)i; }  // classic for
}
void suppressed() {
  std::unordered_map<int, int> m;
  std::size_t n = 0;
  // SEL_NONDET_OK(unordered-iteration): order-independent sum.
  for (const auto& [k, v] : m) { n += v; (void)k; }
  (void)n;
}
}  // namespace sel
"""

CLOCK_BAD = """\
#include <chrono>
namespace sel {
long bad_now() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
}  // namespace sel
"""

RNG_BAD = """\
#include <random>
namespace sel {
int bad_draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen());
}
}  // namespace sel
"""

PARALLEL_BAD = """\
#include <atomic>
#include <cstddef>
namespace sel {
struct Executor {
  template <typename F> void for_chunks(std::size_t a, std::size_t b, F f) {
    f(a, b);
  }
};
void racy(Executor& exec) {
  std::size_t shared_count = 0;
  std::atomic<long> safe_count{0};
  exec.for_chunks(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      shared_count += i;      // racy: non-atomic ref capture
      safe_count += 1;        // atomic: fine
      std::size_t local = i;  // per-invocation local: fine
      (void)local;
    }
  });
}
}  // namespace sel
"""


def run(root, args, env_extra=None):
    env = dict(os.environ, SEL_ANALYZE_ROOT=root)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run([sys.executable, SCRIPT, "--mode=token", *args],
                          capture_output=True, text=True, env=env)
    return proc.returncode, proc.stdout + proc.stderr


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)


failures = []


def check(name, cond, detail=""):
    if cond:
        print(f"ok: {name}")
    else:
        failures.append(f"{name}: {detail}")
        print(f"FAIL: {name}: {detail}")


def main():
    with tempfile.TemporaryDirectory() as root:
        write(root, "src/overlay/unordered_bad.cpp", UNORDERED_BAD)
        write(root, "src/overlay/unordered_ok.cpp", UNORDERED_OK)
        write(root, "src/select/clock_bad.cpp", CLOCK_BAD)
        write(root, "src/obs/clock_ok.cpp", CLOCK_BAD)  # obs/ is exempt
        write(root, "src/graph/rng_bad.cpp", RNG_BAD)
        write(root, "src/common/rng.hpp", RNG_BAD)      # the one rng home
        write(root, "src/sim/parallel_bad.cpp", PARALLEL_BAD)
        write(root, "tests/out_of_scope.cpp", UNORDERED_BAD)
        baseline = os.path.join(root, "baseline.txt")

        # 1. Every planted violation fires; nothing else does.
        rc, out = run(root, ["--no-baseline", "src", "tests"])
        check("exit 1 on findings", rc == 1, f"rc={rc}\n{out}")
        check("unordered: declared map iteration",
              "unordered_bad.cpp:8: [unordered-iteration]" in out, out)
        check("unordered: unordered-returning call",
              "unordered_bad.cpp:11: [unordered-iteration]" in out, out)
        check("unordered: auto alias of unordered call",
              "unordered_bad.cpp:15: [unordered-iteration]" in out, out)
        check("unordered: clean file silent",
              "unordered_ok.cpp" not in out, out)
        check("wall-clock fires outside obs/",
              "clock_bad.cpp:4: [wall-clock]" in out, out)
        check("wall-clock exempt inside obs/",
              "clock_ok.cpp" not in out, out)
        check("rng fires", "rng_bad.cpp:4: [unseeded-rng]" in out, out)
        check("rng exempt in common/rng.hpp",
              "src/common/rng.hpp" not in out, out)
        check("parallel mutation fires",
              "parallel_bad.cpp:14: [parallel-shared-mutation]" in out, out)
        check("atomic write not flagged",
              "safe_count" not in out, out)
        check("tests/ out of scope", "out_of_scope.cpp" not in out, out)

        # 2. Baseline round-trip: record, then gate passes.
        rc, out = run(root, ["--baseline", baseline, "--update-baseline",
                             "src"])
        check("update-baseline exits 0", rc == 0, f"rc={rc}\n{out}")
        rc, out = run(root, ["--baseline", baseline, "src"])
        check("baselined findings gate clean", rc == 0, f"rc={rc}\n{out}")

        # 3. Fixing a finding reports the baseline as shrinkable.
        write(root, "src/select/clock_bad.cpp",
              "namespace sel { int fixed() { return 1; } }\n")
        rc, out = run(root, ["--baseline", baseline, "src"])
        check("fixed finding still exits 0", rc == 0, f"rc={rc}\n{out}")
        check("fixed finding reported shrinkable", "fixed:" in out, out)

        # 4. Suppression must name the right rule.
        write(root, "src/select/clock_bad.cpp", CLOCK_BAD.replace(
            "  auto t",
            "  // SEL_NONDET_OK(unordered-iteration): wrong rule\n  auto t"))
        rc, out = run(root, ["--no-baseline", "src/select"])
        check("wrong-rule suppression does not apply",
              rc == 1 and "[wall-clock]" in out, f"rc={rc}\n{out}")
        write(root, "src/select/clock_bad.cpp", CLOCK_BAD.replace(
            "  auto t",
            "  // SEL_NONDET_OK(wall-clock): fixture timing\n  auto t"))
        rc, out = run(root, ["--no-baseline", "src/select"])
        check("right-rule suppression applies", rc == 0, f"rc={rc}\n{out}")

        # 5. Stale baseline entries (missing file) fail the gate.
        with open(baseline, "a", encoding="utf-8") as fh:
            fh.write("src/gone/removed.cpp: wall-clock: auto t = now();\n")
        rc, out = run(root, ["--baseline", baseline, "src"])
        check("stale baseline entry fails gate",
              rc == 1 and "stale:" in out, f"rc={rc}\n{out}")

        # 6. Unknown rule is a usage error.
        rc, out = run(root, ["--rules", "no-such-rule", "src"])
        check("unknown rule exits 2", rc == 2, f"rc={rc}\n{out}")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall sel_analyze self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
