#!/usr/bin/env python3
"""Self-test for select_lint.py, the repo-specific C++ lint (stdlib only).

Writes fixture files with one synthetic violation per rule plus
clean/suppressed twins, then asserts detection, the smart-pointer adoption
escape for naked-new, static_assert not tripping bare-assert, comment and
string-literal stripping, SEL_LINT_ALLOW on the line and the line above,
and the exit codes (0 clean / 1 violations).

Run directly (CI and ctest do): python3 scripts/test_select_lint.py
"""

import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "select_lint.py")

BAD = """\
#include <cassert>
namespace sel {
void violations(int* p, const int* cp) {
  int* raw = new int(7);
  delete raw;
  int r = rand();
  int* mut = const_cast<int*>(cp);
  assert(p != nullptr);
  (void)r; (void)mut;
}
}  // namespace sel
"""

CLEAN = """\
#include <memory>
namespace sel {
void fine(const int* cp) {
  auto owned = std::unique_ptr<int>(new int(7));  // smart-ptr adoption
  static_assert(sizeof(int) >= 4, "not bare-assert");
  // new Widget(...) in a comment is not a violation
  const char* s = "delete everything, call rand(), assert(true)";
  (void)s; (void)cp;
}
void suppressed(const int* cp) {
  // SEL_LINT_ALLOW(const-cast): fixture exercising line-above suppression
  int* mut = const_cast<int*>(cp);
  int r = rand();  // SEL_LINT_ALLOW(std-rand): same-line suppression
  (void)mut; (void)r;
}
}  // namespace sel
"""


def run(paths):
    proc = subprocess.run([sys.executable, SCRIPT, *paths],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


failures = []


def check(name, cond, detail=""):
    if cond:
        print(f"ok: {name}")
    else:
        failures.append(f"{name}: {detail}")
        print(f"FAIL: {name}: {detail}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        bad = os.path.join(tmp, "bad.cpp")
        clean = os.path.join(tmp, "clean.cpp")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write(BAD)
        with open(clean, "w", encoding="utf-8") as fh:
            fh.write(CLEAN)

        rc, out = run([bad])
        check("exit 1 on violations", rc == 1, f"rc={rc}\n{out}")
        check("bare-assert include", "bad.cpp:1: [bare-assert]" in out, out)
        check("naked-new", "bad.cpp:4: [naked-new]" in out, out)
        check("naked-delete", "bad.cpp:5: [naked-delete]" in out, out)
        check("std-rand", "bad.cpp:6: [std-rand]" in out, out)
        check("const-cast", "bad.cpp:7: [const-cast]" in out, out)
        check("bare-assert call", "bad.cpp:8: [bare-assert]" in out, out)

        rc, out = run([clean])
        check("clean file exits 0", rc == 0, f"rc={rc}\n{out}")
        check("smart-ptr adoption allowed", "naked-new" not in out, out)
        check("static_assert allowed", "bare-assert" not in out, out)
        check("comments/strings stripped",
              "naked-delete" not in out and "std-rand" not in out, out)
        check("suppressions honored",
              "const-cast" not in out and "[std-rand]" not in out, out)

        rc, out = run([tmp])
        check("directory walk finds violations", rc == 1, f"rc={rc}\n{out}")

    # The real tree must stay clean — this is the same gate CI runs.
    rc, out = run(["src"])
    check("src/ is lint-clean", rc == 0, f"rc={rc}\n{out}")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall select_lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
