#!/usr/bin/env python3
"""Render a self-contained HTML report from a run report + trace pair.

Usage:
    scripts/trace_report.py results/fig5_convergence.report.json \\
        [results/fig5_convergence.trace.json] [-o out.html]

The trace path defaults to the report path with .report.json replaced by
.trace.json. Output (default: report path with .html) is a single HTML file
with inline SVG — no external assets, opens anywhere:

  * hop-depth distribution of traced disseminations (bar chart)
  * per-round relay-ratio / avg-route-hops curves from the report's
    timeseries section (line chart)
  * slowest-publish drill-down: the traced publishes with the largest
    completion time, each with its hop-by-hop delivery path

Stdlib only; pairs with the Perfetto trace (ui.perfetto.dev) for the
interactive view.
"""

import argparse
import html
import json
import os
import sys


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"{path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid {what} JSON ({e})")


def esc(s):
    return html.escape(str(s), quote=True)


# ---------------------------------------------------------------- SVG helpers

W, H, PAD = 640, 240, 40


def svg_open():
    return (f'<svg viewBox="0 0 {W} {H}" width="{W}" height="{H}" '
            f'role="img" xmlns="http://www.w3.org/2000/svg">')


def axis(x_label, y_label, y_max):
    parts = [
        f'<line x1="{PAD}" y1="{H - PAD}" x2="{W - 10}" y2="{H - PAD}" '
        f'stroke="#888"/>',
        f'<line x1="{PAD}" y1="{H - PAD}" x2="{PAD}" y2="{10}" '
        f'stroke="#888"/>',
        f'<text x="{W // 2}" y="{H - 6}" text-anchor="middle" '
        f'class="lbl">{esc(x_label)}</text>',
        f'<text x="12" y="{H // 2}" text-anchor="middle" class="lbl" '
        f'transform="rotate(-90 12 {H // 2})">{esc(y_label)}</text>',
        f'<text x="{PAD - 4}" y="{16}" text-anchor="end" '
        f'class="tick">{y_max:g}</text>',
        f'<text x="{PAD - 4}" y="{H - PAD}" text-anchor="end" '
        f'class="tick">0</text>',
    ]
    return "".join(parts)


def bar_chart(pairs, x_label, y_label):
    """pairs: [(x_text, count)] -> inline SVG bar chart."""
    if not pairs:
        return "<p class='empty'>no data</p>"
    y_max = max(c for _, c in pairs) or 1
    n = len(pairs)
    slot = (W - PAD - 20) / n
    bar_w = max(4, slot * 0.7)
    out = [svg_open(), axis(x_label, y_label, y_max)]
    for i, (x_text, count) in enumerate(pairs):
        bh = (H - PAD - 14) * count / y_max
        x = PAD + 6 + i * slot
        y = H - PAD - bh
        out.append(f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                   f'height="{bh:.1f}" fill="#4a7db5">'
                   f'<title>{esc(x_text)}: {count}</title></rect>')
        out.append(f'<text x="{x + bar_w / 2:.1f}" y="{H - PAD + 14}" '
                   f'text-anchor="middle" class="tick">{esc(x_text)}</text>')
        if count:
            out.append(f'<text x="{x + bar_w / 2:.1f}" y="{y - 3:.1f}" '
                       f'text-anchor="middle" class="tick">{count}</text>')
    out.append("</svg>")
    return "".join(out)


def line_chart(series, x_label, y_label):
    """series: {name: [(x, y)]} -> inline SVG multi-line chart."""
    series = {k: v for k, v in series.items() if v}
    if not series:
        return "<p class='empty'>no data</p>"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_min, x_max = min(xs), max(xs)
    y_max = max(ys) or 1.0
    x_span = (x_max - x_min) or 1
    colors = ["#4a7db5", "#b5564a", "#4ab57d", "#9a4ab5"]
    out = [svg_open(), axis(x_label, y_label, y_max)]

    def px(x):
        return PAD + 6 + (W - PAD - 26) * (x - x_min) / x_span

    def py(y):
        return H - PAD - (H - PAD - 14) * y / y_max

    for i, (name, pts) in enumerate(sorted(series.items())):
        color = colors[i % len(colors)]
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in pts)
        out.append(f'<polyline points="{coords}" fill="none" '
                   f'stroke="{color}" stroke-width="1.5"/>')
        out.append(f'<text x="{W - 12}" y="{18 + 14 * i}" text-anchor="end" '
                   f'class="tick" fill="{color}">{esc(name)}</text>')
    out.append(f'<text x="{PAD + 4}" y="{H - PAD + 14}" class="tick">'
               f'{x_min:g}</text>')
    out.append(f'<text x="{W - 12}" y="{H - PAD + 14}" text-anchor="end" '
               f'class="tick">{x_max:g}</text>')
    out.append("</svg>")
    return "".join(out)


# ------------------------------------------------------------- trace parsing


def provenance_events(trace):
    """Splits traceEvents into (publishes, hops_by_trace)."""
    publishes = []
    hops = {}
    for e in trace.get("traceEvents", []):
        if e.get("cat") != "provenance" or e.get("ph") != "X":
            continue
        args = e.get("args", {})
        name = e.get("name", "")
        if name.startswith("hop "):
            hops.setdefault(args.get("trace"), []).append({
                "from": args.get("from"), "to": e.get("tid"),
                "depth": args.get("depth", 0),
                "relay": args.get("relay", False),
                "delivered": args.get("delivered", False),
                "send_us": e.get("ts", 0),
                "arrive_us": e.get("ts", 0) + e.get("dur", 0),
            })
        else:
            publishes.append({
                "name": name, "publisher": e.get("tid"),
                "trace": args.get("trace"),
                "ts_us": e.get("ts", 0), "dur_us": e.get("dur", 0),
            })
    return publishes, hops


def depth_distribution(hops_by_trace):
    counts = {}
    for hops in hops_by_trace.values():
        for h in hops:
            counts[h["depth"]] = counts.get(h["depth"], 0) + 1
    return [(str(d), counts[d]) for d in sorted(counts)]


def timeseries_series(report, keys):
    series = {k: [] for k in keys}
    for p in report.get("timeseries", []):
        values = p.get("values", {})
        for k in keys:
            if k in values:
                series[k].append((p.get("round", 0), values[k]))
    return series


def drilldown_html(publishes, hops_by_trace, top_n):
    ranked = sorted((p for p in publishes if p["trace"] in hops_by_trace),
                    key=lambda p: p["dur_us"], reverse=True)[:top_n]
    if not ranked:
        return "<p class='empty'>no traced publishes in this run</p>"
    out = []
    for p in ranked:
        hops = sorted(hops_by_trace[p["trace"]],
                      key=lambda h: (h["arrive_us"], h["depth"]))
        delivered = sum(1 for h in hops if h["delivered"])
        relays = sorted({h["to"] for h in hops if h["relay"]})
        out.append("<details><summary>"
                   f"<b>{esc(p['name'])}</b> from peer {esc(p['publisher'])} "
                   f"— completes in {p['dur_us'] / 1000.0:.3f} ms, "
                   f"{len(hops)} hops, {delivered} deliveries, "
                   f"{len(relays)} relays</summary>")
        out.append("<table><tr><th>#</th><th>from</th><th>to</th>"
                   "<th>depth</th><th>role</th><th>arrives (ms)</th></tr>")
        for i, h in enumerate(hops):
            role = ("relay" if h["relay"]
                    else "deliver" if h["delivered"] else "forward")
            out.append(
                f"<tr><td>{i}</td><td>{esc(h['from'])}</td>"
                f"<td>{esc(h['to'])}</td><td>{h['depth']}</td>"
                f"<td>{role}</td><td>{h['arrive_us'] / 1000.0:.3f}</td></tr>")
        out.append("</table></details>")
    return "".join(out)


STYLE = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 760px; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
.lbl { font-size: 12px; fill: #444; } .tick { font-size: 10px; fill: #666; }
.meta { color: #666; font-size: 0.9em; }
.empty { color: #999; font-style: italic; }
table { border-collapse: collapse; margin: 0.4em 0 0.8em; }
td, th { border: 1px solid #ddd; padding: 2px 8px; text-align: right; }
th { background: #f4f4f4; }
details { margin: 0.5em 0; } summary { cursor: pointer; }
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", help="*.report.json from a bench run")
    ap.add_argument("trace", nargs="?",
                    help="matching *.trace.json (default: derived)")
    ap.add_argument("-o", "--output", help="output HTML path")
    ap.add_argument("--top", type=int, default=5,
                    help="publishes in the slowest-publish drill-down")
    args = ap.parse_args()

    trace_path = args.trace or args.report.replace(".report.json",
                                                  ".trace.json")
    out_path = args.output or args.report.replace(".report.json", "") + ".html"

    report = load_json(args.report, "run report")
    trace = load_json(trace_path, "trace")

    publishes, hops_by_trace = provenance_events(trace)
    meta = trace.get("metadata", {})
    series = timeseries_series(report, ["relay_ratio", "avg_route_hops"])

    doc = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{esc(report.get('experiment', 'run'))} trace report</title>",
        f"<style>{STYLE}</style></head><body>",
        f"<h1>{esc(report.get('experiment', 'run'))}</h1>",
        f"<p class='meta'>git {esc(report.get('git_describe', '?'))} · "
        f"{esc(os.path.basename(args.report))} + "
        f"{esc(os.path.basename(trace_path))} · "
        f"{meta.get('publishes_sampled', 0)}/{meta.get('publishes_seen', 0)} "
        f"publishes sampled, {meta.get('hops_recorded', 0)} hops recorded"
        "</p>",
        "<h2>Hop-depth distribution</h2>",
        bar_chart(depth_distribution(hops_by_trace), "tree depth", "hops"),
        "<h2>Per-round relay ratio & route length</h2>",
        line_chart(series, "round", "value"),
        f"<h2>Slowest traced publishes (top {args.top})</h2>",
        drilldown_html(publishes, hops_by_trace, args.top),
        "</body></html>",
    ]
    with open(out_path, "w") as f:
        f.write("".join(doc))
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
