#include "baselines/bayeux.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace sel::baselines {

using overlay::DisseminationTree;
using overlay::kInvalidPeer;
using overlay::PeerId;
using overlay::RouteResult;

namespace {
constexpr std::size_t kBase = 16;
constexpr std::size_t kBitsPerDigit = 4;
}  // namespace

BayeuxSystem::BayeuxSystem(const graph::SocialGraph& g, BayeuxParams params,
                           std::uint64_t seed)
    : graph_(&g), params_(params), seed_(seed) {}

std::uint32_t BayeuxSystem::digit(std::uint64_t key, std::size_t d) const {
  const std::size_t shift = (digits_ - 1 - d) * kBitsPerDigit;
  return static_cast<std::uint32_t>((key >> shift) & (kBase - 1));
}

void BayeuxSystem::build() {
  const std::size_t n = graph_->num_nodes();
  digits_ = params_.digits;
  if (digits_ == 0) {
    digits_ = 2;
    while (std::pow(static_cast<double>(kBase), static_cast<double>(digits_)) <
           static_cast<double>(std::max<std::size_t>(n, 1)) * 16.0) {
      ++digits_;
    }
  }
  SEL_ASSERT(digits_ * kBitsPerDigit <= 64);

  keys_.resize(n);
  online_.assign(n, true);
  const std::uint64_t mask =
      digits_ * kBitsPerDigit == 64
          ? ~0ULL
          : ((1ULL << (digits_ * kBitsPerDigit)) - 1);
  std::unordered_set<std::uint64_t> used;
  used.reserve(n * 2);
  for (PeerId p = 0; p < n; ++p) {
    // Derive until unique so exact-key routing and surrogate roots are
    // unambiguous.
    std::uint64_t salt = 0;
    std::uint64_t k = splitmix64(derive_seed(seed_, p)) & mask;
    while (used.contains(k)) {
      ++salt;
      k = splitmix64(derive_seed(seed_, p ^ (salt << 32))) & mask;
    }
    used.insert(k);
    keys_[p] = k;
  }
  sorted_keys_.clear();
  sorted_keys_.reserve(n);
  for (PeerId p = 0; p < n; ++p) sorted_keys_.emplace_back(keys_[p], p);
  std::sort(sorted_keys_.begin(), sorted_keys_.end());
}

PeerId BayeuxSystem::find_prefix(std::uint64_t prefix, std::size_t len) const {
  // Key range covered by the prefix: [prefix << s, (prefix + 1) << s).
  const std::size_t shift = (digits_ - len) * kBitsPerDigit;
  const std::uint64_t lo = prefix << shift;
  auto it = std::lower_bound(
      sorted_keys_.begin(), sorted_keys_.end(), lo,
      [](const auto& e, std::uint64_t v) { return e.first < v; });
  const std::uint64_t hi_exclusive =
      shift == 64 ? ~0ULL : ((prefix + 1) << shift);
  for (; it != sorted_keys_.end() && it->first < hi_exclusive; ++it) {
    if (online_[it->second]) return it->second;
  }
  return kInvalidPeer;
}

PeerId BayeuxSystem::route_to_key(PeerId from, std::uint64_t target_key,
                                  std::vector<PeerId>* path) const {
  PeerId current = from;
  // Fix digits left to right. Each hop moves to a node matching one more
  // digit of the target (or its cyclic surrogate when the exact digit has
  // no node).
  for (std::size_t level = 0; level < digits_;) {
    const std::uint64_t cur_key = keys_[current];
    // Longest shared prefix between current node and target.
    std::size_t shared = 0;
    while (shared < digits_ &&
           digit(cur_key, shared) == digit(target_key, shared)) {
      ++shared;
    }
    if (shared >= digits_) break;  // current IS the target/surrogate
    level = shared;
    const std::uint64_t target_prefix =
        target_key >> ((digits_ - level) * kBitsPerDigit);
    const std::uint32_t want = digit(target_key, level);
    PeerId next = kInvalidPeer;
    // Surrogate routing: try the exact digit, then the next digits
    // cyclically.
    for (std::size_t off = 0; off < kBase; ++off) {
      const auto d = static_cast<std::uint32_t>((want + off) % kBase);
      const std::uint64_t probe = (target_prefix << kBitsPerDigit) | d;
      const PeerId candidate = find_prefix(probe, level + 1);
      if (candidate != kInvalidPeer && candidate != current) {
        next = candidate;
        break;
      }
      if (candidate == current) {
        // We already match the surrogate digit at this level; the shared
        // prefix loop will advance past it next iteration... but it cannot,
        // because digits differ. Treat current as the surrogate endpoint.
        return current;
      }
    }
    if (next == kInvalidPeer) return current;  // isolated: we are the root
    if (path != nullptr) path->push_back(next);
    current = next;
  }
  return current;
}

RouteResult BayeuxSystem::route(PeerId from, PeerId to) const {
  RouteResult result;
  result.path.push_back(from);
  if (from == to) {
    result.success = true;
    result.status = overlay::RouteStatus::kOk;
    return result;
  }
  if (!online_[from] || !online_[to]) return result;
  const PeerId end = route_to_key(from, keys_[to], &result.path);
  result.success = end == to;
  if (result.success) result.status = overlay::RouteStatus::kOk;
  return result;
}

std::vector<PeerId> BayeuxSystem::neighbors(PeerId p) const {
  // One routing-table row per shared-prefix level: the surrogate node for
  // every (level, digit) slot, exactly the candidates route_to_key() can
  // step to from p.
  std::vector<PeerId> out;
  const std::uint64_t key = keys_[p];
  for (std::size_t level = 0; level < digits_; ++level) {
    const std::uint64_t prefix =
        level == 0 ? 0 : key >> ((digits_ - level) * kBitsPerDigit);
    for (std::uint32_t d = 0; d < kBase; ++d) {
      const std::uint64_t probe = (prefix << kBitsPerDigit) | d;
      const PeerId q = find_prefix(probe, level + 1);
      if (q != kInvalidPeer && q != p) out.push_back(q);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PeerId BayeuxSystem::rendezvous_root(PeerId publisher) const {
  // The root is the surrogate node of hash(topic). Resolve it globally
  // (any node reaches the same surrogate by construction).
  const std::uint64_t mask =
      digits_ * kBitsPerDigit == 64
          ? ~0ULL
          : ((1ULL << (digits_ * kBitsPerDigit)) - 1);
  const std::uint64_t topic_key =
      splitmix64(derive_seed(seed_, 0x746f70ULL ^ publisher)) & mask;
  // Start the resolution at the publisher itself.
  return route_to_key(publisher, topic_key, nullptr);
}

std::optional<DisseminationTree> BayeuxSystem::native_tree(
    PeerId publisher, const FlatSet<PeerId>& subscribers) const {
  DisseminationTree tree(publisher);
  const PeerId root = rendezvous_root(publisher);

  // Publisher -> rendezvous root.
  std::vector<PeerId> to_root{publisher};
  if (root != publisher) {
    const PeerId reached = route_to_key(publisher, keys_[root], &to_root);
    if (reached != root) return tree;  // partition: nothing deliverable
  }
  tree.add_path(to_root);

  // Root -> each subscriber, grafted onto the publisher->root path.
  for (const PeerId s : subscribers) {
    if (!online_[s]) continue;
    std::vector<PeerId> branch(to_root);
    if (s != root) {
      const PeerId reached = route_to_key(root, keys_[s], &branch);
      if (reached != s) continue;
    }
    tree.add_path(branch);
  }
  return tree;
}

void BayeuxSystem::set_peer_online(PeerId p, bool online) {
  online_[p] = online;
}

bool BayeuxSystem::peer_online(PeerId p) const { return online_[p]; }

}  // namespace sel::baselines
