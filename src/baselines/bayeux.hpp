// Bayeux baseline (Zhuang et al. [11]): pub/sub over a Tapestry-style
// prefix-routing DHT.
//
// Peers carry immutable digit identifiers (base 16, enough digits to make
// collisions negligible). Routing fixes one digit of the target id per hop
// via a global prefix index (the simulation stand-in for per-node Tapestry
// routing tables); holes are crossed with surrogate routing (next existing
// digit, cyclically), exactly how Tapestry resolves roots.
//
// Each topic (publisher) has a rendezvous root — the surrogate node of
// hash(topic). A published message is routed to the root and then down
// prefix routes to every subscriber, so almost every on-path node is a
// relay: the behaviour Fig. 3 penalizes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct BayeuxParams {
  /// Digits per identifier; base is fixed at 16. 0 = ceil(log16 N) + 2.
  std::size_t digits = 0;
};

class BayeuxSystem final : public overlay::Overlay {
 public:
  BayeuxSystem(const graph::SocialGraph& g, BayeuxParams params,
               std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "bayeux"; }
  [[nodiscard]] const graph::SocialGraph& social() const override {
    return *graph_;
  }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

  [[nodiscard]] overlay::RouteResult route(overlay::PeerId from,
                                           overlay::PeerId to) const override;

  /// The peer's Tapestry routing-table row entries: for every prefix level
  /// and next digit, the surrogate node reachable in one hop. Asymmetric by
  /// construction (capabilities().symmetric_neighbors stays false).
  [[nodiscard]] std::vector<overlay::PeerId> neighbors(
      overlay::PeerId p) const override;

  /// Publisher -> rendezvous root -> subscribers (see header comment).
  /// Bayeux owns its dissemination scheme, so the generic compositions
  /// never apply.
  [[nodiscard]] std::optional<overlay::DisseminationTree> native_tree(
      overlay::PeerId publisher,
      const FlatSet<overlay::PeerId>& subscribers) const override;

  void set_peer_online(overlay::PeerId p, bool online) override;
  [[nodiscard]] bool peer_online(overlay::PeerId p) const override;

  /// The rendezvous root of a topic (exposed for tests).
  [[nodiscard]] overlay::PeerId rendezvous_root(
      overlay::PeerId publisher) const;

  [[nodiscard]] std::size_t digits() const noexcept { return digits_; }

 private:
  /// Routes from `from` toward the identifier `target_key`; appends hops to
  /// `path`. Returns the final node (the surrogate of target_key) or
  /// kInvalidPeer when routing hits an offline hole.
  [[nodiscard]] overlay::PeerId route_to_key(overlay::PeerId from,
                                             std::uint64_t target_key,
                                             std::vector<overlay::PeerId>* path) const;

  /// First online peer whose id begins with `prefix` (of `len` digits);
  /// kInvalidPeer when none exists.
  [[nodiscard]] overlay::PeerId find_prefix(std::uint64_t prefix,
                                            std::size_t len) const;

  [[nodiscard]] std::uint64_t key_of(overlay::PeerId p) const {
    return keys_[p];
  }
  /// Digit d (0 = most significant) of a key.
  [[nodiscard]] std::uint32_t digit(std::uint64_t key, std::size_t d) const;

  const graph::SocialGraph* graph_;
  BayeuxParams params_;
  std::uint64_t seed_;
  std::size_t digits_ = 0;

  std::vector<std::uint64_t> keys_;           ///< per-peer digit id (packed)
  std::vector<std::pair<std::uint64_t, overlay::PeerId>> sorted_keys_;
  std::vector<bool> online_;
};

}  // namespace sel::baselines
