#include "baselines/factory.hpp"

#include "baselines/bayeux.hpp"
#include "baselines/kademlia.hpp"
#include "baselines/kelips.hpp"
#include "baselines/omen.hpp"
#include "baselines/random_mesh.hpp"
#include "baselines/social_dht.hpp"
#include "baselines/symphony.hpp"
#include "baselines/vitis.hpp"
#include "common/assert.hpp"
#include "select/protocol.hpp"

namespace sel::baselines {

using overlay::OverlayConfig;
using overlay::OverlayRegistry;

// -- registrations -----------------------------------------------------------
// Self-registering factories: the registry (and therefore the bench matrix
// and the conformance suite) picks these up without a central dispatch
// ladder. select_baselines is an OBJECT library so these initializers are
// never dead-stripped by the archiver.

SEL_REGISTER_OVERLAY(select, "select",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       core::SelectParams params;
                       params.k_links = c.k_links;
                       return std::make_unique<core::SelectSystem>(
                           g, params, c.seed, c.net);
                     })

SEL_REGISTER_OVERLAY(select_centrality, "select_centrality",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       core::SelectParams params;
                       params.k_links = c.k_links;
                       // Kourtellis-style centrality weighting: one unit of
                       // coverage score per ~4 degrees of the candidate.
                       params.centrality_weight = 0.25;
                       return std::make_unique<core::SelectSystem>(
                           g, params, c.seed, c.net);
                     })

SEL_REGISTER_OVERLAY(symphony, "symphony",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<SymphonySystem>(
                           g, SymphonyParams{.k_links = c.k_links}, c.seed);
                     })

SEL_REGISTER_OVERLAY(bayeux, "bayeux",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<BayeuxSystem>(g, BayeuxParams{},
                                                             c.seed);
                     })

SEL_REGISTER_OVERLAY(vitis, "vitis",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<VitisSystem>(
                           g, VitisParams{.k_links = c.k_links}, c.seed);
                     })

SEL_REGISTER_OVERLAY(omen, "omen",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<OmenSystem>(
                           g, OmenParams{.degree_budget = c.k_links * 2},
                           c.seed);
                     })

SEL_REGISTER_OVERLAY(random, "random",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<RandomMeshSystem>(g, c.k_links,
                                                                 c.seed);
                     })

SEL_REGISTER_OVERLAY(kelips, "kelips",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<KelipsSystem>(
                           g, KelipsParams{.contacts_per_group = c.k_links},
                           c.seed);
                     })

SEL_REGISTER_OVERLAY(kademlia, "kademlia",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<KademliaSystem>(
                           g, KademliaParams{.bucket_size = c.k_links},
                           c.seed);
                     })

SEL_REGISTER_OVERLAY(social_dht, "social_dht",
                     [](const graph::SocialGraph& g, const OverlayConfig& c) {
                       return std::make_unique<SocialDhtSystem>(
                           g, SocialDhtParams{.k_links = c.k_links}, c.seed);
                     })

// -- factory surface ---------------------------------------------------------

const std::vector<std::string_view>& all_system_names() {
  static const std::vector<std::string_view> names = {
      "select", "symphony", "bayeux", "vitis", "omen"};
  return names;
}

std::vector<std::string> registered_overlay_names() {
  return OverlayRegistry::instance().names();
}

std::unique_ptr<overlay::Overlay> make_overlay(
    std::string_view name, const graph::SocialGraph& g,
    const overlay::OverlayConfig& config) {
  SEL_ASSERT(OverlayRegistry::instance().contains(name) &&
             "unknown system name");
  return OverlayRegistry::instance().create(name, g, config);
}

std::unique_ptr<overlay::PubSubSystem> make_system(
    std::string_view name, const graph::SocialGraph& g,
    const overlay::OverlayConfig& config) {
  return std::make_unique<overlay::PubSubSystem>(make_overlay(name, g, config));
}

}  // namespace sel::baselines
