#include "baselines/factory.hpp"

#include "baselines/bayeux.hpp"
#include "baselines/omen.hpp"
#include "baselines/random_mesh.hpp"
#include "baselines/symphony.hpp"
#include "baselines/vitis.hpp"
#include "common/assert.hpp"
#include "select/protocol.hpp"

namespace sel::baselines {

const std::vector<std::string_view>& all_system_names() {
  static const std::vector<std::string_view> names = {
      "select", "symphony", "bayeux", "vitis", "omen"};
  return names;
}

std::unique_ptr<overlay::PubSubSystem> make_system(
    std::string_view name, const graph::SocialGraph& g, std::uint64_t seed,
    std::size_t k_links, const net::NetworkModel* net) {
  if (name == "select") {
    core::SelectParams params;
    params.k_links = k_links;
    return std::make_unique<core::SelectSystem>(g, params, seed, net);
  }
  if (name == "symphony") {
    return std::make_unique<SymphonySystem>(
        g, SymphonyParams{.k_links = k_links}, seed);
  }
  if (name == "bayeux") {
    return std::make_unique<BayeuxSystem>(g, BayeuxParams{}, seed);
  }
  if (name == "vitis") {
    return std::make_unique<VitisSystem>(g, VitisParams{.k_links = k_links},
                                         seed);
  }
  if (name == "omen") {
    return std::make_unique<OmenSystem>(
        g, OmenParams{.degree_budget = k_links * 2}, seed);
  }
  if (name == "random") {
    return std::make_unique<RandomMeshSystem>(g, k_links, seed);
  }
  SEL_ASSERT(false && "unknown system name");
  return nullptr;
}

}  // namespace sel::baselines
