// Factory over all evaluated systems. Every figure harness iterates the
// same five names: select, symphony, bayeux, vitis, omen (plus the random
// control for Fig. 7).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "net/network_model.hpp"
#include "overlay/system.hpp"

namespace sel::baselines {

/// Names accepted by make_system, in the paper's comparison order.
[[nodiscard]] const std::vector<std::string_view>& all_system_names();

/// Creates a system by name ("select", "symphony", "bayeux", "vitis",
/// "omen", "random"). `k_links` = 0 lets each system use its default
/// (log2 N). `net` is only used by systems that are bandwidth-aware
/// (SELECT); it may be null. Aborts on unknown names.
[[nodiscard]] std::unique_ptr<overlay::PubSubSystem> make_system(
    std::string_view name, const graph::SocialGraph& g, std::uint64_t seed,
    std::size_t k_links = 0, const net::NetworkModel* net = nullptr);

}  // namespace sel::baselines
