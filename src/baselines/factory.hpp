// Factory over all evaluated systems, backed by the self-registering
// OverlayRegistry (overlay/registry.hpp). Every figure harness iterates
// the same five paper names; the full registry additionally carries the
// structured-overlay zoo (kelips, kademlia, social_dht, select_centrality,
// random) for the comparison matrix.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "overlay/registry.hpp"
#include "overlay/system.hpp"

namespace sel::baselines {

/// Names of the paper's comparison set, in the paper's order (the figure
/// harnesses iterate exactly these).
[[nodiscard]] const std::vector<std::string_view>& all_system_names();

/// Every registered overlay name, ascending — the bench-matrix and
/// conformance-suite iteration set.
[[nodiscard]] std::vector<std::string> registered_overlay_names();

/// Creates a system by registry name with an options struct:
///
///   auto sys = make_system("kelips", g, {.seed = 7, .k_links = 4});
///
/// The returned PubSubSystem owns the overlay and layers dissemination
/// (subscriber sets, trees, interest functions) over it. Aborts on unknown
/// names; `registered_overlay_names()` lists the valid ones.
[[nodiscard]] std::unique_ptr<overlay::PubSubSystem> make_system(
    std::string_view name, const graph::SocialGraph& g,
    const overlay::OverlayConfig& config = {});

/// The raw overlay without the dissemination layer (conformance suite).
[[nodiscard]] std::unique_ptr<overlay::Overlay> make_overlay(
    std::string_view name, const graph::SocialGraph& g,
    const overlay::OverlayConfig& config = {});

}  // namespace sel::baselines
