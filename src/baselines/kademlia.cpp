#include "baselines/kademlia.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace sel::baselines {

using overlay::kInvalidPeer;
using overlay::PeerId;
using overlay::RouteResult;
using overlay::RouteStatus;

KademliaSystem::KademliaSystem(const graph::SocialGraph& g,
                               KademliaParams params, std::uint64_t seed)
    : graph_(&g), params_(params), seed_(seed) {}

void KademliaSystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;
  k_ = params_.bucket_size != 0 ? params_.bucket_size : 8;

  keys_.resize(n);
  online_.assign(n, true);
  std::unordered_set<std::uint64_t> used;
  used.reserve(n * 2);
  for (PeerId p = 0; p < n; ++p) {
    // Derive until unique so XOR distances never tie at zero.
    std::uint64_t salt = 0;
    std::uint64_t k = splitmix64(derive_seed(seed_, p));
    while (used.contains(k)) {
      ++salt;
      k = splitmix64(derive_seed(seed_, p ^ (salt << 32)));
    }
    used.insert(k);
    keys_[p] = k;
  }
  fill_buckets(/*online_only=*/false);
}

void KademliaSystem::fill_buckets(bool online_only) {
  const std::size_t n = graph_->num_nodes();
  sorted_keys_.clear();
  sorted_keys_.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    if (online_only && !online_[p]) continue;
    sorted_keys_.emplace_back(keys_[p], p);
  }
  std::sort(sorted_keys_.begin(), sorted_keys_.end());

  buckets_.assign(n, {});
  for (PeerId p = 0; p < n; ++p) {
    if (online_only && !online_[p]) continue;
    const std::uint64_t key = keys_[p];
    auto& bucket_union = buckets_[p];
    // One k-bucket per prefix length L: peers sharing the top L bits of
    // `key` and differing at bit L (the sibling subtree). The subtree is a
    // contiguous key range in sorted order; take its first k members —
    // deterministic, and any member strictly shrinks the XOR distance of a
    // lookup whose first differing bit is L.
    for (std::size_t level = 0; level < 64; ++level) {
      const std::uint64_t flipped = key ^ (1ULL << (63 - level));
      const std::uint64_t lo =
          level == 63 ? flipped
                      : flipped & ~((1ULL << (63 - level)) - 1);
      auto it = std::lower_bound(
          sorted_keys_.begin(), sorted_keys_.end(), lo,
          [](const auto& e, std::uint64_t v) { return e.first < v; });
      const std::uint64_t width = level == 63 ? 1 : (1ULL << (63 - level));
      std::size_t taken = 0;
      for (; it != sorted_keys_.end() && it->first - lo < width && taken < k_;
           ++it) {
        if (it->second == p) continue;
        bucket_union.push_back(it->second);
        ++taken;
      }
    }
    std::sort(bucket_union.begin(), bucket_union.end());
    bucket_union.erase(
        std::unique(bucket_union.begin(), bucket_union.end()),
        bucket_union.end());
  }
}

std::vector<PeerId> KademliaSystem::neighbors(PeerId p) const {
  return buckets_[p];
}

RouteResult KademliaSystem::route_impl(PeerId from, PeerId to,
                                       const FlatSet<PeerId>* avoid) const {
  RouteResult result;
  result.path.push_back(from);
  if (from == to) {
    result.success = true;
    result.status = RouteStatus::kOk;
    return result;
  }
  if (!online_[from] || !online_[to]) return result;

  const std::uint64_t target = keys_[to];
  PeerId current = from;
  // Greedy XOR descent: every hop must strictly shrink the distance (one
  // more shared prefix bit), so 64 hops is a hard bound and no visited set
  // is needed.
  for (std::size_t hop = 0; hop < 64; ++hop) {
    std::uint64_t best = keys_[current] ^ target;
    PeerId next = kInvalidPeer;
    for (const PeerId m : buckets_[current]) {
      if (!online_[m]) continue;
      if (avoid != nullptr && m != to && avoid->contains(m)) continue;
      const std::uint64_t d = keys_[m] ^ target;
      if (d < best) {
        best = d;
        next = m;
      }
    }
    if (next == kInvalidPeer) return result;  // local minimum: lookup fails
    result.path.push_back(next);
    current = next;
    if (current == to) {
      result.success = true;
      result.status = RouteStatus::kOk;
      return result;
    }
  }
  return result;
}

RouteResult KademliaSystem::route(PeerId from, PeerId to) const {
  return route_impl(from, to, nullptr);
}

RouteResult KademliaSystem::route_avoiding(
    PeerId from, PeerId to, const FlatSet<PeerId>& avoid) const {
  return route_impl(from, to, &avoid);
}

void KademliaSystem::set_peer_online(PeerId p, bool online) {
  online_[p] = online;
}

bool KademliaSystem::peer_online(PeerId p) const { return online_[p]; }

void KademliaSystem::maintenance_round() {
  // Bucket refresh over the live membership only: dead entries vanish,
  // vacated slots refill with the next closest online peers.
  fill_buckets(/*online_only=*/true);
}

}  // namespace sel::baselines
