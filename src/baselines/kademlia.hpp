// Kademlia-style baseline (Maymounkov, Mazières): XOR-metric DHT.
//
// Peers carry immutable 64-bit keys; distance is XOR interpreted as an
// integer. Every peer keeps one k-bucket per shared-prefix length, holding
// the k closest peers whose keys differ first at that bit. Routing descends
// greedily: each hop moves to the neighbour whose key is XOR-closest to the
// target, halving the distance (one more shared prefix bit) per hop —
// O(log N) hops with O(k log N) state. The global bucket fill stands in for
// Kademlia's iterative FIND_NODE discovery, matching how the other
// baselines materialize protocol knowledge.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct KademliaParams {
  /// Bucket width k; 0 = 8 (the paper's default replication parameter).
  std::size_t bucket_size = 0;
};

class KademliaSystem final : public overlay::Overlay {
 public:
  KademliaSystem(const graph::SocialGraph& g, KademliaParams params,
                 std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "kademlia"; }
  [[nodiscard]] const graph::SocialGraph& social() const override {
    return *graph_;
  }
  [[nodiscard]] overlay::Capabilities capabilities() const override {
    overlay::Capabilities c;
    c.route_avoiding = true;     // k-wide buckets admit detours
    c.churn_maintenance = true;  // bucket refresh drops dead entries
    return c;
  }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

  [[nodiscard]] overlay::RouteResult route(overlay::PeerId from,
                                           overlay::PeerId to) const override;
  [[nodiscard]] overlay::RouteResult route_avoiding(
      overlay::PeerId from, overlay::PeerId to,
      const FlatSet<overlay::PeerId>& avoid) const override;

  /// Union of the peer's k-buckets.
  [[nodiscard]] std::vector<overlay::PeerId> neighbors(
      overlay::PeerId p) const override;

  void set_peer_online(overlay::PeerId p, bool online) override;
  [[nodiscard]] bool peer_online(overlay::PeerId p) const override;

  /// Bucket refresh: evicts offline entries and refills from the closest
  /// online peers of each prefix range.
  void maintenance_round() override;

  [[nodiscard]] std::uint64_t key_of(overlay::PeerId p) const {
    return keys_[p];
  }

 private:
  [[nodiscard]] overlay::RouteResult route_impl(
      overlay::PeerId from, overlay::PeerId to,
      const FlatSet<overlay::PeerId>* avoid) const;

  /// Rebuilds every peer's buckets; `online_only` skips offline peers.
  void fill_buckets(bool online_only);

  const graph::SocialGraph* graph_;
  KademliaParams params_;
  std::uint64_t seed_;
  std::size_t k_ = 8;

  std::vector<std::uint64_t> keys_;
  std::vector<std::pair<std::uint64_t, overlay::PeerId>> sorted_keys_;
  /// buckets_[p]: flattened per-peer neighbour set (sorted by peer id,
  /// deduplicated) — the union of its k-buckets.
  std::vector<std::vector<overlay::PeerId>> buckets_;
  std::vector<bool> online_;
};

}  // namespace sel::baselines
