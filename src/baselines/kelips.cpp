#include "baselines/kelips.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace sel::baselines {

using overlay::kInvalidPeer;
using overlay::PeerId;
using overlay::RouteResult;
using overlay::RouteStatus;

KelipsSystem::KelipsSystem(const graph::SocialGraph& g, KelipsParams params,
                           std::uint64_t seed)
    : graph_(&g), params_(params), seed_(seed) {}

void KelipsSystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;
  const auto num_groups = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  contacts_k_ =
      params_.contacts_per_group != 0 ? params_.contacts_per_group : 2;

  group_of_.resize(n);
  groups_.assign(num_groups, {});
  online_.assign(n, true);
  for (PeerId p = 0; p < n; ++p) {
    const std::size_t g =
        static_cast<std::size_t>(splitmix64(derive_seed(seed_, p)) %
                                 num_groups);
    group_of_[p] = g;
    groups_[g].push_back(p);  // ascending p — deterministic views
  }

  // Contacts: per peer, `contacts_k_` members of every foreign group, drawn
  // from the peer's own seeded stream (each peer learns different contacts,
  // spreading inter-group load).
  contacts_.assign(n * num_groups * contacts_k_, kInvalidPeer);
  for (PeerId p = 0; p < n; ++p) {
    Rng rng(derive_seed(seed_, 0x6b656cULL ^ p));
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (g == group_of_[p] || groups_[g].empty()) continue;
      PeerId* slot = &contacts_[(p * num_groups + g) * contacts_k_];
      std::size_t filled = 0;
      for (int attempts = 0;
           attempts < 16 && filled < std::min(contacts_k_, groups_[g].size());
           ++attempts) {
        const PeerId cand = groups_[g][rng.below(groups_[g].size())];
        if (std::find(slot, slot + filled, cand) != slot + filled) continue;
        slot[filled++] = cand;
      }
    }
  }
}

std::vector<PeerId> KelipsSystem::neighbors(PeerId p) const {
  std::vector<PeerId> out;
  const std::size_t num_groups = groups_.size();
  for (const PeerId q : groups_[group_of_[p]]) {
    if (q != p) out.push_back(q);
  }
  for (std::size_t g = 0; g < num_groups; ++g) {
    const PeerId* slot = &contacts_[(p * num_groups + g) * contacts_k_];
    for (std::size_t i = 0; i < contacts_k_; ++i) {
      if (slot[i] != kInvalidPeer) out.push_back(slot[i]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PeerId KelipsSystem::usable_contact(PeerId p, std::size_t group,
                                    const FlatSet<PeerId>* avoid) const {
  const PeerId* slot = &contacts_[(p * groups_.size() + group) * contacts_k_];
  for (std::size_t i = 0; i < contacts_k_; ++i) {
    const PeerId c = slot[i];
    if (c == kInvalidPeer || !online_[c]) continue;
    if (avoid != nullptr && avoid->contains(c)) continue;
    return c;
  }
  return kInvalidPeer;
}

RouteResult KelipsSystem::route_impl(PeerId from, PeerId to,
                                     const FlatSet<PeerId>* avoid) const {
  RouteResult result;
  result.path.push_back(from);
  if (from == to) {
    result.success = true;
    result.status = RouteStatus::kOk;
    return result;
  }
  if (!online_[from] || !online_[to]) return result;

  auto finish = [&result](PeerId dst) {
    result.path.push_back(dst);
    result.success = true;
    result.status = RouteStatus::kOk;
    return result;
  };

  const std::size_t target_group = group_of_[to];
  // Same group: the full affinity view resolves the target directly.
  if (group_of_[from] == target_group) return finish(to);

  // One inter-group hop to a contact, which knows its whole group.
  const PeerId direct = usable_contact(from, target_group, avoid);
  if (direct == to) return finish(to);
  if (direct != kInvalidPeer) {
    result.path.push_back(direct);
    return finish(to);
  }

  // All own contacts into that group are dead/avoided: ask a fellow group
  // member to relay through *its* contact (Kelips resolves misses through
  // the group view). Deterministic: members ascend.
  for (const PeerId m : groups_[group_of_[from]]) {
    if (m == from || !online_[m]) continue;
    if (avoid != nullptr && avoid->contains(m)) continue;
    const PeerId c = usable_contact(m, target_group, avoid);
    if (c == kInvalidPeer) continue;
    result.path.push_back(m);
    if (c != to) result.path.push_back(c);
    return finish(to);
  }
  return result;  // no live path into the target group
}

RouteResult KelipsSystem::route(PeerId from, PeerId to) const {
  return route_impl(from, to, nullptr);
}

RouteResult KelipsSystem::route_avoiding(PeerId from, PeerId to,
                                         const FlatSet<PeerId>& avoid) const {
  return route_impl(from, to, &avoid);
}

void KelipsSystem::set_peer_online(PeerId p, bool online) {
  online_[p] = online;
}

bool KelipsSystem::peer_online(PeerId p) const { return online_[p]; }

void KelipsSystem::maintenance_round() {
  const std::size_t n = graph_->num_nodes();
  const std::size_t num_groups = groups_.size();
  for (PeerId p = 0; p < n; ++p) {
    if (!online_[p]) continue;
    Rng rng(derive_seed(seed_, 0x6b6d6eULL ^ p));
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (g == group_of_[p] || groups_[g].empty()) continue;
      PeerId* slot = &contacts_[(p * num_groups + g) * contacts_k_];
      for (std::size_t i = 0; i < contacts_k_; ++i) {
        if (slot[i] != kInvalidPeer && online_[slot[i]]) continue;
        // Dead contact: re-pull an online member of that group.
        for (int attempts = 0; attempts < 16; ++attempts) {
          const PeerId cand = groups_[g][rng.below(groups_[g].size())];
          if (!online_[cand]) continue;
          if (std::find(slot, slot + contacts_k_, cand) !=
              slot + contacts_k_) {
            continue;
          }
          slot[i] = cand;
          break;
        }
      }
    }
  }
}

}  // namespace sel::baselines
