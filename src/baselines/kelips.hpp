// Kelips-style baseline (Gupta, Birman, Linga, Demers, van Renesse):
// constant-hop lookup at O(√N) state per peer.
//
// Peers hash into G = ⌈√N⌉ affinity groups. Every peer keeps a full view of
// its own group (the "affinity group view") plus a handful of contacts in
// every foreign group. A lookup therefore takes at most one inter-group hop
// to a contact, which resolves the target from its complete group view —
// O(1) hops, paid for with O(√N) soft state and background gossip (here:
// the maintenance round re-pulls dead contacts from the live membership,
// the simulation stand-in for Kelips' epidemic view repair).
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct KelipsParams {
  /// Contacts kept per foreign group; 0 = 2 (the paper's working set).
  std::size_t contacts_per_group = 0;
};

class KelipsSystem final : public overlay::Overlay {
 public:
  KelipsSystem(const graph::SocialGraph& g, KelipsParams params,
               std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "kelips"; }
  [[nodiscard]] const graph::SocialGraph& social() const override {
    return *graph_;
  }
  [[nodiscard]] overlay::Capabilities capabilities() const override {
    overlay::Capabilities c;
    c.route_avoiding = true;     // contact fan-out admits detours
    c.churn_maintenance = true;  // contact repair from live membership
    return c;
  }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

  [[nodiscard]] overlay::RouteResult route(overlay::PeerId from,
                                           overlay::PeerId to) const override;
  [[nodiscard]] overlay::RouteResult route_avoiding(
      overlay::PeerId from, overlay::PeerId to,
      const FlatSet<overlay::PeerId>& avoid) const override;

  /// Own-group members plus foreign-group contacts.
  [[nodiscard]] std::vector<overlay::PeerId> neighbors(
      overlay::PeerId p) const override;

  void set_peer_online(overlay::PeerId p, bool online) override;
  [[nodiscard]] bool peer_online(overlay::PeerId p) const override;

  /// Replaces offline contacts with online members of the same foreign
  /// group (epidemic view repair, collapsed to one deterministic sweep).
  void maintenance_round() override;

  [[nodiscard]] std::size_t num_groups() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] std::size_t group_of(overlay::PeerId p) const {
    return group_of_[p];
  }

 private:
  [[nodiscard]] overlay::RouteResult route_impl(
      overlay::PeerId from, overlay::PeerId to,
      const FlatSet<overlay::PeerId>* avoid) const;

  /// First online contact of p into `group` that is not avoided.
  [[nodiscard]] overlay::PeerId usable_contact(
      overlay::PeerId p, std::size_t group,
      const FlatSet<overlay::PeerId>* avoid) const;

  const graph::SocialGraph* graph_;
  KelipsParams params_;
  std::uint64_t seed_;
  std::size_t contacts_k_ = 2;

  std::vector<std::size_t> group_of_;
  std::vector<std::vector<overlay::PeerId>> groups_;  ///< sorted members
  /// contacts_[p * num_groups + g] .. +contacts_k_: contacts of p in group
  /// g (kInvalidPeer = empty slot; own group unused).
  std::vector<overlay::PeerId> contacts_;
  std::vector<bool> online_;
};

}  // namespace sel::baselines
