#include "baselines/omen.hpp"

#include <algorithm>
#include <cmath>

namespace sel::baselines {

using overlay::kInvalidPeer;
using overlay::PeerId;

std::size_t OmenSystem::TopicState::find(std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

bool OmenSystem::TopicState::unite(std::size_t i, std::size_t j) {
  const std::size_t ri = find(i);
  const std::size_t rj = find(j);
  if (ri == rj) return false;
  parent[ri] = rj;
  --components;
  return true;
}

std::size_t OmenSystem::TopicState::index_of(PeerId p) const {
  const auto it = std::lower_bound(members.begin(), members.end(), p);
  if (it == members.end() || *it != p) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - members.begin());
}

OmenSystem::OmenSystem(const graph::SocialGraph& g, OmenParams params,
                       std::uint64_t seed)
    : RingOverlay(g, overlay::RouteOptions{}),
      params_(params),
      seed_(seed),
      rng_(derive_seed(seed, 0x6f6d656eULL)) {}

bool OmenSystem::budget_ok(PeerId p) const {
  return overlay_.out_degree(p) + overlay_.in_degree(p) < budget_;
}

void OmenSystem::apply_edge_to_topics(PeerId u, PeerId v) {
  // Topics containing both endpoints: common friends of (u, v), plus u and
  // v themselves when they are friends (u ∈ topic(v) and vice versa).
  auto apply = [this](PeerId topic_owner, PeerId a, PeerId b) {
    auto& t = topics_[topic_owner];
    const std::size_t ia = t.index_of(a);
    const std::size_t ib = t.index_of(b);
    if (ia == static_cast<std::size_t>(-1) ||
        ib == static_cast<std::size_t>(-1)) {
      return;
    }
    t.unite(ia, ib);
  };
  const auto nu = graph_->neighbors(u);
  const auto nv = graph_->neighbors(v);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      apply(nu[i], u, v);
      ++i;
      ++j;
    }
  }
  if (graph_->has_edge(u, v)) {
    apply(u, u, v);
    apply(v, u, v);
  }
}

void OmenSystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;
  budget_ = params_.degree_budget != 0
                ? params_.degree_budget
                : 2 * std::max<std::size_t>(
                          2, static_cast<std::size_t>(std::log2(
                                 static_cast<double>(std::max<std::size_t>(n, 2)))));

  // Small-world substrate of [1]: ring with uniform immutable ids.
  for (PeerId p = 0; p < n; ++p) {
    overlay_.join(p, net::OverlayId::from_hash(derive_seed(seed_, p)));
  }
  overlay_.rebuild_ring();

  // One topic per publisher: members = publisher + friends.
  topics_.clear();
  topics_.reserve(n);
  for (PeerId b = 0; b < n; ++b) {
    TopicState t;
    t.publisher = b;
    const auto nbrs = graph_->neighbors(b);
    t.members.assign(nbrs.begin(), nbrs.end());
    t.members.push_back(b);
    std::sort(t.members.begin(), t.members.end());
    t.parent.resize(t.members.size());
    for (std::size_t i = 0; i < t.parent.size(); ++i) t.parent[i] = static_cast<std::uint32_t>(i);
    t.components = t.members.size();
    topics_.push_back(std::move(t));
  }

  // Greedy-Merge rounds.
  rounds_run_ = 0;
  while (rounds_run_ < params_.max_rounds) {
    const std::size_t added = run_round();
    ++rounds_run_;
    if (added == 0) break;
  }

  // Shadow sets: per peer, same-topic peers it is NOT linked to, as churn
  // backups.
  shadows_.assign(n, {});
  for (PeerId p = 0; p < n; ++p) {
    const auto nbrs = graph_->neighbors(p);
    for (const PeerId cand : nbrs) {
      if (shadows_[p].size() >= params_.shadow_size) break;
      if (!overlay_.linked(p, cand)) shadows_[p].push_back(cand);
    }
  }
}

std::size_t OmenSystem::run_round() {
  std::size_t added = 0;
  for (auto& topic : topics_) {
    if (topic.components <= 1) continue;
    // Greedy mending edge for this topic: connect the publisher's component
    // to another component, preferring the candidate pair with the most
    // common neighbours (≈ the edge covering the most other topics).
    const std::size_t pub_idx = topic.index_of(topic.publisher);
    SEL_ASSERT(pub_idx != static_cast<std::size_t>(-1));
    const std::size_t pub_root = topic.find(pub_idx);

    PeerId best_u = kInvalidPeer;
    PeerId best_v = kInvalidPeer;
    std::size_t best_score = 0;
    std::size_t scanned = 0;
    // Sample candidate cross-component pairs.
    for (std::size_t attempt = 0;
         attempt < params_.candidate_sample && !topic.members.empty();
         ++attempt) {
      const std::size_t vi = rng_.below(topic.members.size());
      if (topic.find(vi) == pub_root) continue;
      const PeerId v = topic.members[vi];
      if (!budget_ok(v)) continue;
      // Partner u inside the publisher's component.
      for (std::size_t probe = 0;
           probe < params_.candidate_sample && scanned < 256; ++probe) {
        ++scanned;
        const std::size_t ui = rng_.below(topic.members.size());
        if (topic.find(ui) != pub_root) continue;
        const PeerId u = topic.members[ui];
        if (u == v || !budget_ok(u) || overlay_.linked(u, v)) continue;
        const std::size_t score = graph_->common_neighbors(u, v) + 1;
        if (score > best_score) {
          best_score = score;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_u == kInvalidPeer) {
      // Budget-blocked or sampling failed this round; fall back to linking
      // via an already existing overlay edge if one crosses components.
      bool merged = false;
      for (std::size_t i = 0; i < topic.members.size() && !merged; ++i) {
        const PeerId u = topic.members[i];
        for (const PeerId v : overlay_.out_links(u)) {
          const std::size_t vj = topic.index_of(v);
          if (vj == static_cast<std::size_t>(-1)) continue;
          if (topic.unite(i, vj)) {
            merged = true;
            break;
          }
        }
      }
      continue;
    }
    if (overlay_.add_long_link(best_u, best_v)) {
      ++added;
      apply_edge_to_topics(best_u, best_v);
    }
  }
  return added;
}

void OmenSystem::maintenance_round() {
  const std::size_t n = graph_->num_nodes();
  for (PeerId p = 0; p < n; ++p) {
    if (!overlay_.online(p)) continue;
    const std::vector<PeerId> outs(overlay_.out_links(p).begin(),
                                   overlay_.out_links(p).end());
    for (const PeerId u : outs) {
      if (overlay_.online(u)) continue;
      // Mend with a shadow peer.
      for (const PeerId s : shadows_[p]) {
        if (overlay_.online(s) && !overlay_.linked(p, s)) {
          overlay_.remove_long_link(p, u);
          overlay_.add_long_link(p, s);
          break;
        }
      }
    }
  }
  overlay_.rebuild_ring(/*online_only=*/true);
}

double OmenSystem::topic_connectivity() const {
  if (topics_.empty()) return 1.0;
  std::size_t connected = 0;
  for (const auto& t : topics_) {
    if (t.components <= 1) ++connected;
  }
  return static_cast<double>(connected) / static_cast<double>(topics_.size());
}

}  // namespace sel::baselines
