// OMen baseline (Chen, Vitenberg, Jacobsen [6]): overlay mending for
// topic-based pub/sub under churn.
//
// OMen maintains a Topic-Connected Overlay (TCO): for every topic, the
// subscribers of that topic should form a connected subgraph using only
// edges between subscribers, approximated with the Greedy-Merge algorithm
// of Chockler et al. [22] / the divide-and-conquer variant [24]: repeatedly
// add the edge that makes the most still-disconnected topics connected,
// under a per-peer degree budget. In the OSN workload a topic is a
// publisher's feed and its subscriber set is the publisher's friend
// neighbourhood, so edge utility ≈ common social neighbourhoods — which
// concentrates links on high-degree users (the Fig. 4 hotspot behaviour).
//
// Construction is iterative (each round every still-disconnected topic gets
// to add at most one mending edge), giving the Fig. 5 iteration counts.
// Churn resilience comes from *shadow sets*: per peer, backup same-topic
// peers that replace failed neighbours during maintenance_round().
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct OmenParams {
  /// Per-peer degree budget for TCO edges; 0 = 2 * log2(N).
  std::size_t degree_budget = 0;
  /// Candidate sample size when scoring mending edges.
  std::size_t candidate_sample = 16;
  /// Shadow-set size per peer.
  std::size_t shadow_size = 4;
  std::size_t max_rounds = 512;
};

class OmenSystem final : public overlay::RingOverlay {
 public:
  OmenSystem(const graph::SocialGraph& g, OmenParams params,
             std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "omen"; }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override {
    return rounds_run_;
  }

  /// OMen dissemination: within-topic flooding over the TCO (subscriber-to-
  /// subscriber edges), greedy routing for topic fragments the degree
  /// budget left unconnected — exactly the subscriber-first composition.
  [[nodiscard]] overlay::Capabilities capabilities() const override {
    overlay::Capabilities c = RingOverlay::capabilities();
    c.iterative_build = true;
    c.churn_maintenance = true;
    c.subscriber_first_tree = true;
    return c;
  }

  /// Shadow-set mending: replaces offline neighbours with shadow peers.
  void maintenance_round() override;

  /// Fraction of topics whose subscriber set is TCO-connected (diagnostic).
  [[nodiscard]] double topic_connectivity() const;

 private:
  /// Union-find over the members of one topic.
  struct TopicState {
    overlay::PeerId publisher;
    std::vector<overlay::PeerId> members;  ///< sorted: publisher + friends
    std::vector<std::uint32_t> parent;     ///< union-find by member index
    std::size_t components;

    [[nodiscard]] std::size_t find(std::size_t i);
    /// Returns true when a merge happened.
    bool unite(std::size_t i, std::size_t j);
    [[nodiscard]] std::size_t index_of(overlay::PeerId p) const;
  };

  /// One GM round; returns edges added.
  std::size_t run_round();

  /// Registers an established overlay edge with every topic containing both
  /// endpoints.
  void apply_edge_to_topics(overlay::PeerId u, overlay::PeerId v);

  [[nodiscard]] bool budget_ok(overlay::PeerId p) const;

  OmenParams params_;
  std::uint64_t seed_;
  std::size_t budget_ = 0;
  std::size_t rounds_run_ = 0;
  std::vector<TopicState> topics_;
  std::vector<std::vector<overlay::PeerId>> shadows_;
  Rng rng_;
};

}  // namespace sel::baselines
