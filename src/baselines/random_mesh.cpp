#include "baselines/random_mesh.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace sel::baselines {

using overlay::PeerId;

RandomMeshSystem::RandomMeshSystem(const graph::SocialGraph& g,
                                   std::size_t k_links, std::uint64_t seed)
    : RingOverlay(g, overlay::RouteOptions{}),
      k_links_(k_links),
      seed_(seed) {}

void RandomMeshSystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;
  const std::size_t k =
      k_links_ != 0
          ? k_links_
          : std::max<std::size_t>(
                2, static_cast<std::size_t>(std::log2(
                       static_cast<double>(std::max<std::size_t>(n, 2)))));
  for (PeerId p = 0; p < n; ++p) {
    overlay_.join(p, net::OverlayId::from_hash(derive_seed(seed_, p)));
  }
  overlay_.rebuild_ring();
  Rng rng(derive_seed(seed_, 0x726e64ULL));
  for (PeerId p = 0; p < n; ++p) {
    std::size_t established = 0;
    for (int attempts = 0; attempts < 64 && established < k; ++attempts) {
      const auto q = static_cast<PeerId>(rng.below(n));
      if (q == p) continue;
      if (overlay_.add_long_link(p, q)) ++established;
    }
  }
}

}  // namespace sel::baselines
