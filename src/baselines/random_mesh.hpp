// Random-overlay control ("without selection algorithm" in Fig. 7): every
// peer links to k uniformly random peers. No structure, no social awareness;
// routing degenerates to bounded random exploration, and dissemination
// funnels through whatever links exist.
#pragma once

#include <cstdint>

#include "overlay/routing.hpp"

namespace sel::baselines {

class RandomMeshSystem final : public overlay::RingOverlay {
 public:
  RandomMeshSystem(const graph::SocialGraph& g, std::size_t k_links,
                   std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "random"; }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

 private:
  std::size_t k_links_;
  std::uint64_t seed_;
};

}  // namespace sel::baselines
