#include "baselines/social_dht.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace sel::baselines {

using overlay::PeerId;

SocialDhtSystem::SocialDhtSystem(const graph::SocialGraph& g,
                                 SocialDhtParams params, std::uint64_t seed)
    : RingOverlay(g, overlay::RouteOptions{}),
      params_(params),
      seed_(seed) {}

PeerId SocialDhtSystem::manager_of(net::OverlayId target) const {
  SEL_EXPECTS(!ring_index_.empty());
  auto it = std::lower_bound(
      ring_index_.begin(), ring_index_.end(), target.value(),
      [](const auto& entry, double v) { return entry.first < v; });
  if (it == ring_index_.end()) it = ring_index_.begin();  // wrap around
  return it->second;
}

void SocialDhtSystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;

  // Plain-DHT identifiers: uniform, immutable (no Alg. 2 reassignment).
  for (PeerId p = 0; p < n; ++p) {
    overlay_.join(p, net::OverlayId::from_hash(derive_seed(seed_, p)));
  }
  overlay_.rebuild_ring();

  ring_index_.clear();
  ring_index_.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    ring_index_.emplace_back(overlay_.id(p).value(), p);
  }
  std::sort(ring_index_.begin(), ring_index_.end());

  const std::size_t k =
      params_.k_links != 0
          ? params_.k_links
          : std::max<std::size_t>(
                2, static_cast<std::size_t>(std::log2(
                       static_cast<double>(std::max<std::size_t>(n, 2)))));
  const auto social_k = static_cast<std::size_t>(
      std::round(static_cast<double>(k) * params_.social_fraction));

  Rng rng(derive_seed(seed_, 0x736f63ULL));
  for (PeerId p = 0; p < n; ++p) {
    // Social shortcuts: strongest ties first (common neighbourhood size,
    // then peer id — deterministic). These links carry the friend-to-friend
    // traffic the OSN workload is dominated by.
    const auto nbrs = graph_->neighbors(p);
    std::vector<std::pair<std::size_t, PeerId>> ranked;
    ranked.reserve(nbrs.size());
    for (const graph::NodeId f : nbrs) {
      const std::size_t strength = graph_->common_neighbors(p, f) + 1;
      ranked.emplace_back(strength, f);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::size_t established = 0;
    for (const auto& [strength, f] : ranked) {
      if (established >= social_k) break;
      if (overlay_.add_long_link(p, f)) ++established;
    }

    // Harmonic routing links for the remaining budget (Symphony pd(x)).
    for (int attempts = 0; attempts < 64 && established < k; ++attempts) {
      const double u = rng.uniform();
      const double d =
          std::exp(std::log(static_cast<double>(n)) * (u - 1.0));
      const PeerId target = manager_of(net::advance(overlay_.id(p), d));
      if (target == p) continue;
      if (overlay_.add_long_link(p, target)) ++established;
    }
  }
}

}  // namespace sel::baselines
