// Socially-aware DHT baseline (Nasir, Girdzijauskas: "Socially-Aware
// Distributed Hash Tables for Decentralized Online Social Networks",
// PAPERS.md).
//
// Peers keep immutable uniform ring identifiers (a plain DHT — no SELECT id
// reassignment) but split their link budget between two roles: harmonic
// *routing links* (Symphony-style, for O(log²N/k) greedy lookups) and
// *social shortcut links* to their strongest social ties (ranked by common
// neighbourhoods). Lookups between friends — the dominant OSN traffic —
// resolve over one shortcut hop, while the harmonic half keeps arbitrary
// lookups logarithmic. This is the middle point between Symphony (no social
// awareness) and SELECT (ids themselves socially rearranged).
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct SocialDhtParams {
  /// Total long links per peer; 0 = log2(N).
  std::size_t k_links = 0;
  /// Fraction of the budget spent on social shortcuts (rest is harmonic).
  double social_fraction = 0.5;
};

class SocialDhtSystem final : public overlay::RingOverlay {
 public:
  SocialDhtSystem(const graph::SocialGraph& g, SocialDhtParams params,
                  std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override {
    return "social_dht";
  }
  [[nodiscard]] overlay::Capabilities capabilities() const override {
    overlay::Capabilities c = RingOverlay::capabilities();
    // Social shortcuts make friend meshes dense enough that
    // subscriber-first dissemination pays off (the design's whole point).
    c.subscriber_first_tree = true;
    return c;
  }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

 private:
  [[nodiscard]] overlay::PeerId manager_of(net::OverlayId target) const;

  SocialDhtParams params_;
  std::uint64_t seed_;
  std::vector<std::pair<double, overlay::PeerId>> ring_index_;
};

}  // namespace sel::baselines
