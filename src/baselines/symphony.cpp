#include "baselines/symphony.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace sel::baselines {

using overlay::PeerId;

SymphonySystem::SymphonySystem(const graph::SocialGraph& g,
                               SymphonyParams params, std::uint64_t seed)
    : RingOverlay(
          g, overlay::RouteOptions{.lookahead = params.lookahead}),
      params_(params),
      seed_(seed) {}

PeerId SymphonySystem::manager_of(net::OverlayId target) const {
  SEL_EXPECTS(!ring_index_.empty());
  auto it = std::lower_bound(
      ring_index_.begin(), ring_index_.end(), target.value(),
      [](const auto& entry, double v) { return entry.first < v; });
  if (it == ring_index_.end()) it = ring_index_.begin();  // wrap around
  return it->second;
}

void SymphonySystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;

  // Immutable uniform identifiers.
  for (PeerId p = 0; p < n; ++p) {
    overlay_.join(p, net::OverlayId::from_hash(derive_seed(seed_, p)));
  }
  overlay_.rebuild_ring();

  ring_index_.clear();
  ring_index_.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    ring_index_.emplace_back(overlay_.id(p).value(), p);
  }
  std::sort(ring_index_.begin(), ring_index_.end());

  const std::size_t k =
      params_.k_links != 0
          ? params_.k_links
          : std::max<std::size_t>(
                2, static_cast<std::size_t>(
                       std::log2(static_cast<double>(std::max<std::size_t>(n, 2)))));

  Rng rng(derive_seed(seed_, 0x73796dULL));
  for (PeerId p = 0; p < n; ++p) {
    std::size_t established = 0;
    // Harmonic draw: d = exp(ln(N) * (u - 1)) ∈ [1/N, 1) has pdf ∝ 1/d,
    // Symphony's probability-distribution pd(x).
    for (int attempts = 0; attempts < 64 && established < k; ++attempts) {
      const double u = rng.uniform();
      const double d =
          std::exp(std::log(static_cast<double>(n)) * (u - 1.0));
      const PeerId target =
          manager_of(net::advance(overlay_.id(p), d));
      if (target == p) continue;
      if (overlay_.add_long_link(p, target)) ++established;
    }
  }
}

}  // namespace sel::baselines
