// Symphony baseline (Manku, Bawa, Raghavan [10]): distributed hashing in a
// small world.
//
// Peers get immutable uniform identifiers on the unit ring; besides the two
// short-range ring links every peer draws k long-range links whose target
// distance follows the harmonic distribution p(d) ∝ 1/(d ln N), giving
// O(log^2 N / k) expected greedy routing. Construction is one-shot (no
// iterative topology optimization), which is why the paper excludes Symphony
// from the convergence comparison (Fig. 5).
#pragma once

#include <cstdint>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct SymphonyParams {
  /// Long links per peer; 0 = log2(N) (matching the evaluation setup).
  std::size_t k_links = 0;
  /// Symphony's 1-step lookahead routing optimization.
  bool lookahead = true;
};

class SymphonySystem final : public overlay::RingOverlay {
 public:
  SymphonySystem(const graph::SocialGraph& g, SymphonyParams params,
                 std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "symphony"; }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override { return 0; }

 private:
  /// Peer whose id is the clockwise successor of `target` among joined
  /// peers (the "manager" of that point in ID space).
  [[nodiscard]] overlay::PeerId manager_of(net::OverlayId target) const;

  SymphonyParams params_;
  std::uint64_t seed_;
  /// (id value, peer) sorted by id — the global ring index used to resolve
  /// harmonic-distance draws to peers.
  std::vector<std::pair<double, overlay::PeerId>> ring_index_;
};

}  // namespace sel::baselines
