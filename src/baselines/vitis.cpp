#include "baselines/vitis.hpp"

#include <algorithm>
#include <cmath>

namespace sel::baselines {

using overlay::PeerId;

VitisSystem::VitisSystem(const graph::SocialGraph& g, VitisParams params,
                         std::uint64_t seed)
    : RingOverlay(g, overlay::RouteOptions{}),
      params_(params),
      seed_(seed) {}

void VitisSystem::build() {
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;
  k_ = params_.k_links != 0
           ? params_.k_links
           : std::max<std::size_t>(
                 2, static_cast<std::size_t>(std::log2(
                        static_cast<double>(std::max<std::size_t>(n, 2)))));

  // Immutable uniform identifiers on the ring.
  for (PeerId p = 0; p < n; ++p) {
    overlay_.join(p, net::OverlayId::from_hash(derive_seed(seed_, p)));
  }
  overlay_.rebuild_ring();

  // Hybrid substrate: besides cluster links, Vitis keeps unstructured
  // long links for rendezvous routing across the ring (harmonic draws,
  // Symphony-style). These are immutable.
  {
    Rng base_rng(derive_seed(seed_, 0x62617365ULL));
    const std::size_t base_links = std::max<std::size_t>(2, k_ / 2);
    std::vector<std::pair<double, PeerId>> ring_index;
    ring_index.reserve(n);
    for (PeerId p = 0; p < n; ++p) {
      ring_index.emplace_back(overlay_.id(p).value(), p);
    }
    std::sort(ring_index.begin(), ring_index.end());
    auto manager_of = [&ring_index](double v) {
      auto it = std::lower_bound(
          ring_index.begin(), ring_index.end(), v,
          [](const auto& e, double x) { return e.first < x; });
      if (it == ring_index.end()) it = ring_index.begin();
      return it->second;
    };
    base_links_.assign(n, {});
    for (PeerId p = 0; p < n; ++p) {
      std::size_t established = 0;
      for (int attempts = 0; attempts < 32 && established < base_links;
           ++attempts) {
        const double d = std::exp(std::log(static_cast<double>(n)) *
                                  (base_rng.uniform() - 1.0));
        const PeerId target =
            manager_of(net::advance(overlay_.id(p), d).value());
        if (target == p) continue;
        if (overlay_.add_long_link(p, target)) {
          base_links_[p].push_back(target);
          ++established;
        }
      }
    }
  }

  // Bootstrap candidate views with random peers (a peer-sampling service).
  view_.assign(n, {});
  rng_.clear();
  rng_.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    rng_.emplace_back(derive_seed(seed_, 0x76697473ULL ^ p));
    auto& v = view_[p];
    while (v.size() < params_.view_size) {
      const auto q = static_cast<PeerId>(rng_[p].below(n));
      if (q != p && std::find(v.begin(), v.end(), q) == v.end()) {
        v.push_back(q);
      }
    }
  }

  rounds_run_ = 0;
  std::size_t quiet = 0;
  while (rounds_run_ < params_.max_rounds && quiet < params_.stable_rounds) {
    const std::size_t changes = run_round();
    ++rounds_run_;
    quiet = changes == 0 ? quiet + 1 : 0;
  }
}

std::size_t VitisSystem::run_round() {
  const std::size_t n = graph_->num_nodes();
  std::size_t changes = 0;
  for (PeerId p = 0; p < n; ++p) {
    auto& view = view_[p];
    if (view.empty()) continue;
    // Exchange views with a random view member (T-Man gossip): both sides
    // merge the union, then keep the most similar candidates.
    const PeerId partner = view[rng_[p].below(view.size())];
    auto merge_into = [this](PeerId owner, const std::vector<PeerId>& incoming) {
      auto& v = view_[owner];
      for (const PeerId c : incoming) {
        if (c == owner) continue;
        if (std::find(v.begin(), v.end(), c) == v.end()) v.push_back(c);
      }
      // Keep the most similar view_size candidates.
      std::sort(v.begin(), v.end(), [this, owner](PeerId a, PeerId b) {
        const std::size_t sa = similarity(owner, a);
        const std::size_t sb = similarity(owner, b);
        if (sa != sb) return sa > sb;
        return a < b;
      });
      if (v.size() > params_.view_size) v.resize(params_.view_size);
    };
    const std::vector<PeerId> mine(view);
    merge_into(p, view_[partner]);
    merge_into(partner, mine);

    changes += reselect_links(p);
  }
  overlay_.rebuild_ring();
  return changes;
}

std::size_t VitisSystem::reselect_links(PeerId p) {
  // Cluster links: walk the similarity-ranked view, connecting until the k_
  // budget is met. A peer whose incoming budget is exhausted (hubs attract
  // everyone) rejects further links — the Vitis hotspot effect is bounded
  // by connection capacity, not eliminated.
  const auto& view = view_[p];
  const auto& base = base_links_[p];
  std::size_t changes = 0;
  std::vector<PeerId> final_set;
  final_set.reserve(k_);
  const std::vector<PeerId> outs(overlay_.out_links(p).begin(),
                                 overlay_.out_links(p).end());
  auto is_base = [&base](PeerId q) {
    return std::find(base.begin(), base.end(), q) != base.end();
  };
  for (const PeerId u : view) {
    if (final_set.size() >= k_) break;
    if (is_base(u)) continue;
    if (std::find(outs.begin(), outs.end(), u) != outs.end()) {
      final_set.push_back(u);
    } else if (overlay_.in_degree(u) < 2 * k_ &&
               overlay_.add_long_link(p, u)) {
      final_set.push_back(u);
      ++changes;
    }
  }
  for (const PeerId v : outs) {
    if (is_base(v)) continue;  // unstructured substrate links are immutable
    if (std::find(final_set.begin(), final_set.end(), v) ==
        final_set.end()) {
      overlay_.remove_long_link(p, v);
      ++changes;
    }
  }
  return changes;
}

}  // namespace sel::baselines
