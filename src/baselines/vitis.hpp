// Vitis baseline (Rahimian et al. [5]): gossip-based hybrid pub/sub overlay.
//
// Peers sit on a ring with *immutable* uniform identifiers and run a
// T-Man-style gossip: every round each peer exchanges its candidate view
// with a random view member and keeps the peers with the most similar
// subscriptions (here: the most common social friends) as cluster links,
// plus harmonic long links for global connectivity. Because the overlay is
// bootstrapped from random neighbours, similar peers must first be
// *discovered* through gossip — which is why Vitis needs substantially more
// iterations to converge than SELECT (Fig. 5). And because similarity
// ranking favours high-degree users, hubs accumulate incoming links and
// forwarding load (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/routing.hpp"

namespace sel::baselines {

struct VitisParams {
  /// Cluster links per peer; 0 = log2(N).
  std::size_t k_links = 0;
  /// Random-view size exchanged during gossip.
  std::size_t view_size = 12;
  /// Consecutive quiet rounds to declare convergence.
  std::size_t stable_rounds = 2;
  std::size_t max_rounds = 256;
};

class VitisSystem final : public overlay::RingOverlay {
 public:
  VitisSystem(const graph::SocialGraph& g, VitisParams params,
              std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "vitis"; }
  void build() override;
  [[nodiscard]] std::size_t build_iterations() const override {
    return rounds_run_;
  }
  [[nodiscard]] overlay::Capabilities capabilities() const override {
    overlay::Capabilities c = RingOverlay::capabilities();
    c.iterative_build = true;
    return c;
  }

  /// One gossip round; returns the number of cluster-link changes.
  std::size_t run_round();

 private:
  /// Subscription similarity: common social friends (peers subscribed to
  /// the same publishers collide on common neighbourhoods).
  [[nodiscard]] std::size_t similarity(overlay::PeerId a,
                                       overlay::PeerId b) const {
    return graph_->common_neighbors(a, b) +
           (graph_->has_edge(a, b) ? 1 : 0);
  }

  /// Re-ranks p's cluster links from its current candidate view.
  std::size_t reselect_links(overlay::PeerId p);

  VitisParams params_;
  std::uint64_t seed_;
  std::size_t k_ = 0;
  std::size_t rounds_run_ = 0;
  std::vector<std::vector<overlay::PeerId>> view_;  ///< gossip candidate views
  std::vector<std::vector<overlay::PeerId>> base_links_;  ///< immutable substrate
  std::vector<Rng> rng_;
};

}  // namespace sel::baselines
