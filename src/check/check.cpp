#include "check/check.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace sel::check {

namespace detail {

std::atomic<int> g_level{-1};

int init_level_from_env() noexcept {
  const int parsed = static_cast<int>(
      env::get_enum("SEL_CHECK", {"off|0|false|no", "cheap|1", "full|2"},
                    static_cast<std::size_t>(Level::kCheap)));
  // Racing first readers parse the same env value; last store wins with the
  // identical result.
  g_level.store(parsed, std::memory_order_relaxed);
  return parsed;
}

}  // namespace detail

void set_level(Level l) noexcept {
  detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

namespace {

std::mutex& handler_mu() {
  static std::mutex mu;
  return mu;
}

FailureHandler& handler_slot() {
  static FailureHandler h;  // empty = default abort handler
  return h;
}

[[noreturn]] void abort_on(const Violation& v) {
  std::fprintf(stderr, "Invariant violation [%s]: %s\n", v.invariant.c_str(),
               v.detail.c_str());
  std::abort();
}

}  // namespace

FailureHandler set_failure_handler(FailureHandler h) {
  const std::lock_guard<std::mutex> lock(handler_mu());
  FailureHandler prev = std::move(handler_slot());
  handler_slot() = std::move(h);
  return prev;
}

void fail(Violation v) {
  obs::MetricsRegistry::global().counter("check.violations").add(1);
  FailureHandler h;
  {
    const std::lock_guard<std::mutex> lock(handler_mu());
    h = handler_slot();
  }
  if (h) {
    h(v);
  } else {
    abort_on(v);
  }
}

bool enforce(Result r) {
  static obs::Counter& validations =
      obs::MetricsRegistry::global().counter("check.validations");
  validations.add(1);
  if (!r.has_value()) return true;
  fail(*std::move(r));
  return false;
}

ScopedFailureCapture::ScopedFailureCapture() {
  prev_ = set_failure_handler(
      [this](const Violation& v) { violations_.push_back(v); });
}

ScopedFailureCapture::~ScopedFailureCapture() {
  set_failure_handler(std::move(prev_));
}

}  // namespace sel::check
