// Runtime protocol invariant checking (SEL_CHECK).
//
// The simulator's correctness rests on structural invariants the paper's
// algorithms maintain implicitly: the ring stays sorted by identifier
// (Sec. II-A), long links stay symmetric between out/in tables (Sec. III-D),
// the LSH index keeps |H| = K buckets (Alg. 5), dissemination trees stay
// acyclic with one parent per node (Sec. II-B), and the superstep engine
// delivers a deterministically ordered inbox. This layer makes those
// invariants machine-checked at runtime, levelled like SEL_OBS:
//
//   SEL_CHECK=off    every call site costs a single predictable branch;
//                    no counters, no allocations, no validation work.
//   SEL_CHECK=cheap  O(1)/sampled spot checks on the hot paths (default).
//   SEL_CHECK=full   complete structural walks after every mutation round —
//                    the debugging mode sanitizer/CI jobs run.
//
// Validators live in the sibling *_checks.hpp headers and return a
// `Result` (std::nullopt = invariant holds). Wired call sites guard with
// `if (sel::check::enabled(...))` and route failures through `enforce()`,
// which calls the installed failure handler (abort by default; tests install
// a capturing handler via ScopedFailureCapture).
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace sel::check {

enum class Level : int { kOff = 0, kCheap = 1, kFull = 2 };

namespace detail {
/// Cached level; -1 until first read (then parsed from SEL_CHECK).
extern std::atomic<int> g_level;
/// Parses SEL_CHECK ("off"/"0"/"false" -> kOff, "full"/"2" -> kFull,
/// everything else -> kCheap) and stores it into g_level.
[[nodiscard]] int init_level_from_env() noexcept;
}  // namespace detail

/// Current check level. First call reads SEL_CHECK; later calls are one
/// relaxed load. set_level() overrides at any time (tests, harnesses).
[[nodiscard]] inline Level level() noexcept {
  const int v = detail::g_level.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Level>(v);
  return static_cast<Level>(detail::init_level_from_env());
}

void set_level(Level l) noexcept;

/// True when checks at `min` or stricter are active. The off-mode cost of a
/// wired call site is exactly this load + compare.
[[nodiscard]] inline bool enabled(Level min = Level::kCheap) noexcept {
  return level() >= min;
}

/// RAII level override for tests.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level l) noexcept : prev_(level()) { set_level(l); }
  ~ScopedLevel() { set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level prev_;
};

/// A detected invariant violation. `invariant` is a stable dotted name
/// (e.g. "overlay.ring.sorted"); `detail` is human-readable context.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// std::nullopt = invariant holds.
using Result = std::optional<Violation>;

/// Handler invoked on violation. The default prints and aborts (matching
/// SEL_ASSERT semantics: a broken structural invariant poisons every result
/// computed after it).
using FailureHandler = std::function<void(const Violation&)>;

/// Installs `h` (empty = restore the abort handler). Returns the previous
/// handler. Not for hot paths; guarded by a mutex.
FailureHandler set_failure_handler(FailureHandler h);

/// Counts the violation into `check.violations` and routes it to the
/// installed handler.
void fail(Violation v);

/// Counts one validator pass into `check.validations` and enforces the
/// result. Returns true when the invariant held.
bool enforce(Result r);

/// RAII capture of violations for tests: installs a handler that records
/// instead of aborting.
class ScopedFailureCapture {
 public:
  ScopedFailureCapture();
  ~ScopedFailureCapture();
  ScopedFailureCapture(const ScopedFailureCapture&) = delete;
  ScopedFailureCapture& operator=(const ScopedFailureCapture&) = delete;

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool empty() const noexcept { return violations_.empty(); }

 private:
  std::vector<Violation> violations_;
  FailureHandler prev_;
};

}  // namespace sel::check
