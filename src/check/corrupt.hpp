// Test support: seeded corruption of overlay and tree structures.
//
// The invariant-checker tests (tests/check_invariants_test.cpp) must prove
// each validator detects a real violation, but the production API is
// deliberately unable to create one (add_long_link keeps both tables in
// step, DisseminationTree::add_child refuses duplicates). Corruptor is a
// friend of the two structures and breaks them on purpose. It must never be
// used outside tests.
#pragma once

#include <algorithm>

#include "overlay/overlay.hpp"
#include "overlay/tree.hpp"

namespace sel::check::testing {

struct Corruptor {
  /// Seeds an asymmetric routing link: removes `from` from to's in_links
  /// while leaving from's out_link in place.
  static void drop_in_link(overlay::RingSubstrate& ov, overlay::PeerId from,
                           overlay::PeerId to) {
    auto& ins = ov.peer(to).in_links;
    ins.erase(std::remove(ins.begin(), ins.end(), from), ins.end());
  }

  /// Corrupts the ring by rewiring p's successor pointer.
  static void set_successor(overlay::RingSubstrate& ov, overlay::PeerId p,
                            overlay::PeerId succ) {
    ov.peer(p).succ = succ;
  }

  /// Seeds a duplicate delivery: appends `child` to parent's child list and
  /// the delivery order again, as a buggy tree merge would.
  static void add_duplicate_child(overlay::DisseminationTree& tree,
                                  overlay::PeerId parent,
                                  overlay::PeerId child) {
    tree.children_[parent].push_back(child);
    tree.order_.push_back(child);
  }

  /// Seeds a parent-chain cycle between two non-root nodes.
  static void make_cycle(overlay::DisseminationTree& tree, overlay::PeerId a,
                         overlay::PeerId b) {
    tree.parent_[a] = b;
    tree.parent_[b] = a;
  }

  /// Moves `node` under `new_parent`, keeping parent and children tables
  /// mutually consistent — the corruption a naive tree-repair pass would
  /// produce. Reparenting a node onto one of its own descendants yields a
  /// cycle that only the bounded root-walk can see.
  static void reparent(overlay::DisseminationTree& tree, overlay::PeerId node,
                       overlay::PeerId new_parent) {
    auto& old_siblings = tree.children_[tree.parent_[node]];
    old_siblings.erase(
        std::remove(old_siblings.begin(), old_siblings.end(), node),
        old_siblings.end());
    tree.parent_[node] = new_parent;
    tree.children_[new_parent].push_back(node);
  }
};

}  // namespace sel::check::testing
