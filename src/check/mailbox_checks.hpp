// Replicated-mailbox invariants (SEL_CHECK; see check.hpp for levels).
//
// The mailbox tier (pubsub/mailbox.hpp) claims two properties the
// adversarial chaos suite leans on:
//
//   durability   every entry ends either quorum-acknowledged (>= ⌈(k+1)/2⌉
//                distinct acks) or explicitly quorum-degraded (candidate
//                pool exhausted below quorum) — never silently in between;
//   exactly-once a mailbox replay hands a message to the engine at most
//                once per subscriber, and never one the subscriber already
//                received in-flight (the engine's `delivered` set is the
//                shared dedup authority).
//
// Validators return check::Result (std::nullopt = invariant holds) and are
// wired behind `if (check::enabled(...))` at the mailbox settle and replay
// sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "check/check.hpp"

namespace sel::check {

/// Quorum accounting at entry settle time: a settled entry must have
/// reached quorum or carry the degraded flag; `acks` must never exceed the
/// replica slots that could have produced them.
[[nodiscard]] inline Result validate_mailbox_quorum(
    std::uint64_t msg, std::uint32_t subscriber, std::size_t acks,
    std::size_t quorum, std::size_t slots, bool quorum_reached,
    bool degraded) {
  if (acks > slots) {
    return Violation{"mailbox.acks.bounded",
                     "message " + std::to_string(msg) + " subscriber " +
                         std::to_string(subscriber) + ": " +
                         std::to_string(acks) + " acks from " +
                         std::to_string(slots) + " replica slots"};
  }
  if (quorum_reached && acks < quorum) {
    return Violation{"mailbox.quorum.reached",
                     "message " + std::to_string(msg) + " subscriber " +
                         std::to_string(subscriber) + ": quorum flagged at " +
                         std::to_string(acks) + "/" + std::to_string(quorum) +
                         " acks"};
  }
  if (!quorum_reached && !degraded) {
    return Violation{"mailbox.quorum.settled",
                     "message " + std::to_string(msg) + " subscriber " +
                         std::to_string(subscriber) +
                         ": settled below quorum without degraded flag"};
  }
  return std::nullopt;
}

/// Replay hand-off: `delivering` must be exactly "not yet delivered" —
/// the engine's dedup set is authoritative, and a mailbox must never
/// re-serve an entry it already resolved.
[[nodiscard]] inline Result validate_mailbox_replay(
    std::uint64_t msg, std::uint32_t subscriber, bool entry_resolved,
    bool already_delivered, bool delivering) {
  const bool expect = !entry_resolved && !already_delivered;
  if (delivering == expect) return std::nullopt;
  return Violation{"mailbox.replay.exactly_once",
                   "message " + std::to_string(msg) + " subscriber " +
                       std::to_string(subscriber) +
                       (delivering ? ": double replay (resolved="
                                   : ": withheld replay (resolved=") +
                       (entry_resolved ? "1" : "0") + ", delivered=" +
                       (already_delivered ? "1" : "0") + ")"};
}

/// Full-level durability walk after a mailbox-peer crash: a live
/// quorum-acknowledged entry must keep at least one genuinely stored
/// replica on a non-crashed peer, unless anti-entropy already flagged it
/// degraded (handoff pool exhausted).
[[nodiscard]] inline Result validate_mailbox_durability(
    std::uint64_t msg, std::uint32_t subscriber, std::size_t live_stored,
    bool quorum_reached, bool degraded) {
  if (!quorum_reached || degraded || live_stored > 0) return std::nullopt;
  return Violation{"mailbox.durability.live_replica",
                   "message " + std::to_string(msg) + " subscriber " +
                       std::to_string(subscriber) +
                       ": quorum-acked entry has no live stored replica "
                       "and no degraded flag"};
}

}  // namespace sel::check
