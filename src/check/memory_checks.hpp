// SEL_MEM_BUDGET validation (resource observability, DESIGN.md §16).
//
// obs/ cannot call into check/ (select_check links select_obs, not the
// other way around), so the budget *policy* lives here: the obs layer only
// tracks bytes and parses the knob; this header turns an overrun into a
// SEL_CHECK violation carrying the per-subsystem breakdown dump.
//
// The failure is soft in the sense that it fires at most once per process:
// live bytes stay above the budget once crossed, and re-failing on every
// round would bury the first (useful) report under thousands of copies.
// With the default abort handler the first trip still terminates the run,
// exactly like any other SEL_CHECK violation; tests capture it with
// ScopedFailureCapture instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "check/check.hpp"
#include "obs/memory.hpp"

namespace sel::check {

/// Pure validator: std::nullopt while live tracked bytes fit the budget
/// (or the budget is disabled). `breakdown` is attached to the violation.
[[nodiscard]] inline Result validate_memory_budget(
    std::int64_t budget_bytes, std::int64_t live_bytes,
    const std::string& breakdown) {
  if (budget_bytes <= 0 || live_bytes <= budget_bytes) return std::nullopt;
  return Violation{
      "mem.budget",
      "live tracked bytes " + std::to_string(live_bytes) +
          " exceed SEL_MEM_BUDGET=" + std::to_string(budget_bytes) + " (" +
          breakdown + ")"};
}

namespace detail {
/// One-per-program trip latch (inline function static). Tests reset it via
/// reset_memory_budget_trip().
inline std::atomic<bool>& memory_budget_tripped() noexcept {
  static std::atomic<bool> tripped{false};
  return tripped;
}
}  // namespace detail

/// Test hook: re-arms the once-per-process budget trip.
inline void reset_memory_budget_trip() noexcept {
  detail::memory_budget_tripped().store(false, std::memory_order_relaxed);
}

/// Call-site helper for the wired owners (superstep step, engine publish,
/// protocol round, report write): validates the global MemTracker against
/// SEL_MEM_BUDGET and reports at most one violation per process. Returns
/// false only on the trip. Costs two relaxed loads when the budget is off.
inline bool check_memory_budget() {
  if (!obs::budget_exceeded()) return true;
  if (detail::memory_budget_tripped().exchange(true,
                                               std::memory_order_relaxed)) {
    return true;  // already reported
  }
  return enforce(validate_memory_budget(
      obs::mem_budget_bytes(),
      obs::MemTracker::global().total_live_bytes(),
      obs::memory_breakdown()));
}

}  // namespace sel::check
