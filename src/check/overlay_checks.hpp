// Structural validators for the overlay substrate: ring ordering and
// long-link symmetry (see check.hpp for the SEL_CHECK levels that gate the
// wired call sites).
//
// All validators are pure readers returning Result (std::nullopt = holds);
// they are inline so the check library never links against select_overlay
// (which itself links select_check).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "overlay/overlay.hpp"

namespace sel::check {

namespace detail {

/// Members of the ring under validation: joined peers, minus offline ones
/// when the ring was rebuilt online_only.
inline std::vector<overlay::PeerId> ring_members(const overlay::RingSubstrate& ov,
                                                 bool online_only) {
  std::vector<overlay::PeerId> members;
  members.reserve(ov.joined_count());
  for (overlay::PeerId p = 0; p < ov.num_peers(); ++p) {
    if (!ov.joined(p)) continue;
    if (online_only && !ov.online(p)) continue;
    members.push_back(p);
  }
  return members;
}

inline Result check_ring_neighbors_of(const overlay::RingSubstrate& ov,
                                      overlay::PeerId p, std::size_t n) {
  const overlay::PeerId s = ov.successor(p);
  const overlay::PeerId q = ov.predecessor(p);
  if (n == 1) {
    if (s != overlay::kInvalidPeer || q != overlay::kInvalidPeer) {
      return Violation{"overlay.ring.links",
                       "singleton ring member " + std::to_string(p) +
                           " has short-range links"};
    }
    return std::nullopt;
  }
  if (s == overlay::kInvalidPeer || q == overlay::kInvalidPeer) {
    return Violation{"overlay.ring.links",
                     "ring member " + std::to_string(p) +
                         " is missing a successor or predecessor"};
  }
  if (ov.predecessor(s) != p || ov.successor(q) != p) {
    return Violation{"overlay.ring.symmetry",
                     "succ/pred of peer " + std::to_string(p) +
                         " do not point back (succ=" + std::to_string(s) +
                         ", pred=" + std::to_string(q) + ")"};
  }
  return std::nullopt;
}

}  // namespace detail

/// Full ring validation (SEL_CHECK=full): every member has mutually linked
/// succ/pred, the successor walk visits every member exactly once, and ids
/// are sorted by (id, peer) along the walk — the Sec. II-A structure greedy
/// routing depends on.
inline Result validate_ring(const overlay::RingSubstrate& ov,
                            bool online_only = false) {
  const auto members = detail::ring_members(ov, online_only);
  const std::size_t n = members.size();
  for (const overlay::PeerId p : members) {
    if (auto v = detail::check_ring_neighbors_of(ov, p, n)) return v;
  }
  if (n <= 1) return std::nullopt;

  // Start the walk at the (id, peer)-minimum so sortedness along the walk
  // has a single wrap point, at the end.
  overlay::PeerId start = members[0];
  for (const overlay::PeerId p : members) {
    if (ov.id(p) < ov.id(start) ||
        (ov.id(p) == ov.id(start) && p < start)) {
      start = p;
    }
  }
  overlay::PeerId cur = start;
  std::size_t visited = 0;
  overlay::PeerId prev = overlay::kInvalidPeer;
  do {
    if (visited >= n) {
      return Violation{"overlay.ring.closure",
                       "successor walk exceeds member count " +
                           std::to_string(n) + " without closing"};
    }
    if (prev != overlay::kInvalidPeer) {
      const bool ordered =
          ov.id(prev) < ov.id(cur) ||
          (ov.id(prev) == ov.id(cur) && prev < cur);
      if (!ordered) {
        return Violation{"overlay.ring.sorted",
                         "ids out of order along the ring: peer " +
                             std::to_string(prev) + " (id=" +
                             std::to_string(ov.id(prev).value()) +
                             ") precedes peer " + std::to_string(cur) +
                             " (id=" + std::to_string(ov.id(cur).value()) +
                             ")"};
      }
    }
    prev = cur;
    cur = ov.successor(cur);
    ++visited;
  } while (cur != start && cur != overlay::kInvalidPeer);
  if (cur != start || visited != n) {
    return Violation{"overlay.ring.closure",
                     "successor walk visited " + std::to_string(visited) +
                         " of " + std::to_string(n) + " members"};
  }
  return std::nullopt;
}

/// Cheap ring spot-check: succ/pred symmetry for up to `max_samples`
/// strided members. O(max_samples).
inline Result validate_ring_sample(const overlay::RingSubstrate& ov,
                                   bool online_only = false,
                                   std::size_t max_samples = 8) {
  const auto members = detail::ring_members(ov, online_only);
  const std::size_t n = members.size();
  if (n == 0) return std::nullopt;
  const std::size_t stride = std::max<std::size_t>(1, n / max_samples);
  for (std::size_t i = 0; i < n; i += stride) {
    if (auto v = detail::check_ring_neighbors_of(ov, members[i], n)) {
      return v;
    }
  }
  return std::nullopt;
}

/// Long-link table consistency for one peer: no self-loops or duplicates,
/// every endpoint joined, and every link mirrored on the other side
/// (out_links/in_links model one TCP connection, Sec. III-D).
inline Result validate_peer_links(const overlay::RingSubstrate& ov,
                                  overlay::PeerId p) {
  const auto outs = ov.out_links(p);
  const auto ins = ov.in_links(p);
  auto check_side = [&](std::span<const overlay::PeerId> links, bool outgoing)
      -> Result {
    for (std::size_t i = 0; i < links.size(); ++i) {
      const overlay::PeerId q = links[i];
      if (q == p) {
        return Violation{"overlay.links.self_loop",
                         "peer " + std::to_string(p) + " links to itself"};
      }
      if (q >= ov.num_peers() || !ov.joined(q)) {
        return Violation{"overlay.links.endpoint",
                         "peer " + std::to_string(p) +
                             " links to unjoined peer " + std::to_string(q)};
      }
      for (std::size_t j = i + 1; j < links.size(); ++j) {
        if (links[j] == q) {
          return Violation{"overlay.links.duplicate",
                           "peer " + std::to_string(p) +
                               " holds a duplicate link to " +
                               std::to_string(q)};
        }
      }
      const auto mirror = outgoing ? ov.in_links(q) : ov.out_links(q);
      if (std::find(mirror.begin(), mirror.end(), p) == mirror.end()) {
        return Violation{"overlay.links.symmetry",
                         "link " + std::to_string(outgoing ? p : q) + "->" +
                             std::to_string(outgoing ? q : p) +
                             " is missing its mirror entry on peer " +
                             std::to_string(q)};
      }
    }
    return std::nullopt;
  };
  if (auto v = check_side(outs, /*outgoing=*/true)) return v;
  if (auto v = check_side(ins, /*outgoing=*/false)) return v;
  return std::nullopt;
}

/// Global link-symmetry sweep (SEL_CHECK=full): validate_peer_links for
/// every joined peer. O(sum degree^2) with degrees ~K.
inline Result validate_link_symmetry(const overlay::RingSubstrate& ov) {
  for (overlay::PeerId p = 0; p < ov.num_peers(); ++p) {
    if (!ov.joined(p)) continue;
    if (auto v = validate_peer_links(ov, p)) return v;
  }
  return std::nullopt;
}

}  // namespace sel::check
