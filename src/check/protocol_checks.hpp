// Validators for SELECT protocol invariants: identifier-reassignment
// geometry (Alg. 2), LSH index bounds (Algs. 5-6) and the per-peer link
// budget (Sec. III-D). Inline for the same layering reason as
// overlay_checks.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>

#include "check/check.hpp"
#include "lsh/lsh.hpp"
#include "net/id_space.hpp"
#include "overlay/overlay.hpp"

namespace sel::check {

/// Alg. 2 step geometry: the damped move must head toward the centroid
/// (ring distance to the target never grows) and must not overshoot the
/// half-ring (|step| <= damping * 0.5, the farthest any target can be).
inline Result validate_id_step(net::OverlayId cur, net::OverlayId target,
                               net::OverlayId next, double damping) {
  constexpr double kEps = 1e-9;
  const double before = net::ring_distance(cur, target);
  const double after = net::ring_distance(next, target);
  if (after > before + kEps) {
    return Violation{"select.reassign.monotone",
                     "id step moved away from the centroid: distance " +
                         std::to_string(before) + " -> " +
                         std::to_string(after)};
  }
  const double step = net::ring_distance(cur, next);
  if (step > damping * 0.5 + kEps) {
    return Violation{"select.reassign.overshoot",
                     "id step of " + std::to_string(step) +
                         " exceeds the damped half-ring bound " +
                         std::to_string(damping * 0.5)};
  }
  return std::nullopt;
}

/// Alg. 5 bucket-count bound: the index must keep exactly |H| = K buckets.
/// O(1); the cheap-level check after every create_links().
inline Result validate_lsh_bucket_bound(const lsh::LshIndex& index,
                                        std::size_t k) {
  if (index.num_buckets() != k) {
    return Violation{"select.lsh.bucket_count",
                     "index has " + std::to_string(index.num_buckets()) +
                         " buckets, expected |H| = K = " + std::to_string(k)};
  }
  return std::nullopt;
}

/// Full LSH index validation: bucket bound, entry count consistency, no
/// peer indexed twice, and every entry stored in the bucket its bitmap
/// hashes to.
inline Result validate_lsh_index(const lsh::LshIndex& index, std::size_t k) {
  if (auto v = validate_lsh_bucket_bound(index, k)) return v;
  std::size_t total = 0;
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t b = 0; b < index.num_buckets(); ++b) {
    for (const auto& entry : index.bucket(b)) {
      ++total;
      if (!seen.insert(entry.peer).second) {
        return Violation{"select.lsh.duplicate_peer",
                         "peer " + std::to_string(entry.peer) +
                             " indexed in more than one bucket"};
      }
      if (index.bucket_of(entry.bitmap) != b) {
        return Violation{"select.lsh.misplaced",
                         "peer " + std::to_string(entry.peer) +
                             " stored in bucket " + std::to_string(b) +
                             " but hashes to bucket " +
                             std::to_string(index.bucket_of(entry.bitmap))};
      }
    }
  }
  if (total != index.size()) {
    return Violation{"select.lsh.size",
                     "index size() = " + std::to_string(index.size()) +
                         " but buckets hold " + std::to_string(total) +
                         " entries"};
  }
  return std::nullopt;
}

/// Sec. III-D link budget: a peer maintains at most K outgoing long links
/// and admits at most K incoming ones.
inline Result validate_link_budget(const overlay::RingSubstrate& ov,
                                   overlay::PeerId p, std::size_t k) {
  if (ov.out_degree(p) > k) {
    return Violation{"select.links.out_budget",
                     "peer " + std::to_string(p) + " holds " +
                         std::to_string(ov.out_degree(p)) +
                         " outgoing long links, budget K = " +
                         std::to_string(k)};
  }
  if (ov.in_degree(p) > k) {
    return Violation{"select.links.in_budget",
                     "peer " + std::to_string(p) + " admits " +
                         std::to_string(ov.in_degree(p)) +
                         " incoming long links, cap K = " +
                         std::to_string(k)};
  }
  return std::nullopt;
}

}  // namespace sel::check
