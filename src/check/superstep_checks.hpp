// Validator for the superstep engine's delivery invariant: after the
// barrier, the merged inbox is sorted by (dst, src, seq) and the per-vertex
// offset table partitions it exactly — the property that makes rounds
// deterministic regardless of thread count (sim/superstep.hpp).
//
// Templated on the container types (any indexable sequences; messages are
// any struct with dst/src/seq members) so this header depends neither on
// sim/superstep.hpp, which includes it, nor on the arena's allocator
// (obs/memory.hpp tags the engine's buffers).
#pragma once

#include <cstddef>
#include <string>

#include "check/check.hpp"

namespace sel::check {

template <typename Inbox, typename Offsets>
inline Result validate_superstep_inbox(const Inbox& inbox,
                                       const Offsets& offsets,
                                       std::size_t num_vertices) {
  if (offsets.size() != num_vertices + 1 || offsets.front() != 0 ||
      offsets.back() != inbox.size()) {
    return Violation{"superstep.offsets.shape",
                     "offset table does not span the inbox (" +
                         std::to_string(offsets.size()) + " entries, last " +
                         (offsets.empty() ? std::string("-")
                                          : std::to_string(offsets.back())) +
                         ", inbox " + std::to_string(inbox.size()) + ")"};
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Violation{"superstep.offsets.monotone",
                       "offsets decrease at vertex " + std::to_string(v)};
    }
    for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (inbox[i].dst != v) {
        return Violation{"superstep.offsets.partition",
                         "message at index " + std::to_string(i) +
                             " (dst=" + std::to_string(inbox[i].dst) +
                             ") filed under vertex " + std::to_string(v)};
      }
    }
  }
  for (std::size_t i = 1; i < inbox.size(); ++i) {
    const auto& a = inbox[i - 1];
    const auto& b = inbox[i];
    const bool ordered =
        a.dst < b.dst ||
        (a.dst == b.dst &&
         (a.src < b.src || (a.src == b.src && a.seq < b.seq)));
    if (!ordered) {
      // Strict ordering: an equal (dst, src, seq) triple means the same
      // emission was delivered twice.
      return Violation{"superstep.inbox.sorted",
                       "inbox not sorted by strict (dst, src, seq) at index " +
                           std::to_string(i)};
    }
  }
  return std::nullopt;
}

}  // namespace sel::check
