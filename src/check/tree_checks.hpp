// Validators for dissemination trees and message delivery accounting:
// acyclicity, one-parent-per-node (the structural guarantee behind
// exactly-once delivery, paper Sec. II-B) and per-message delivery counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"
#include "overlay/tree.hpp"

namespace sel::check {

/// Full tree validation: nodes are unique (each peer receives the message
/// exactly once), every non-root node's parent is in the tree, parent and
/// children tables mirror each other, and every parent chain reaches the
/// root within node_count() steps (acyclicity).
inline Result validate_tree(const overlay::DisseminationTree& tree) {
  const auto& nodes = tree.nodes();
  std::unordered_set<overlay::PeerId> seen;
  seen.reserve(nodes.size());
  for (const overlay::PeerId p : nodes) {
    if (!seen.insert(p).second) {
      return Violation{"tree.unique_nodes",
                       "peer " + std::to_string(p) +
                           " appears twice in the delivery order (duplicate "
                           "delivery)"};
    }
  }
  if (nodes.empty() || nodes.front() != tree.root()) {
    return Violation{"tree.root",
                     "delivery order does not start at the root"};
  }
  if (seen.size() != tree.node_count()) {
    return Violation{"tree.node_count",
                     "node_count() = " + std::to_string(tree.node_count()) +
                         " but delivery order holds " +
                         std::to_string(seen.size()) + " distinct nodes"};
  }
  for (const overlay::PeerId p : nodes) {
    // Children must point back via parent().
    for (const overlay::PeerId c : tree.children(p)) {
      if (tree.parent(c) != p) {
        return Violation{"tree.parent_child",
                         "child " + std::to_string(c) + " of " +
                             std::to_string(p) +
                             " records a different parent (" +
                             std::to_string(tree.parent(c)) + ")"};
      }
    }
    if (p == tree.root()) continue;
    const overlay::PeerId parent = tree.parent(p);
    if (parent == overlay::kInvalidPeer || !seen.contains(parent)) {
      return Violation{"tree.orphan",
                       "node " + std::to_string(p) +
                           " has a parent outside the tree"};
    }
    // Parent must list p as a child exactly once.
    std::size_t listed = 0;
    for (const overlay::PeerId c : tree.children(parent)) {
      if (c == p) ++listed;
    }
    if (listed != 1) {
      return Violation{"tree.child_listing",
                       "node " + std::to_string(p) + " listed " +
                           std::to_string(listed) +
                           " times under its parent " +
                           std::to_string(parent) +
                           " (duplicate forwarding)"};
    }
    // Bounded walk to the root: a cycle would exceed node_count() steps.
    overlay::PeerId cur = p;
    std::size_t steps = 0;
    while (cur != tree.root()) {
      cur = tree.parent(cur);
      if (cur == overlay::kInvalidPeer || ++steps > tree.node_count()) {
        return Violation{"tree.acyclic",
                         "parent chain from node " + std::to_string(p) +
                             " does not reach the root (cycle or broken "
                             "link)"};
      }
    }
  }
  return std::nullopt;
}

/// Exactly-once delivery accounting (fault injection disabled). With a
/// perfect transfer plane every subscriber in the tree receives the message
/// exactly once; see validate_at_least_once() for the accounting that
/// replaces this when a FaultPlan is attached. `max_deliveries` is the
/// number of subscribers present in the tree — each has exactly one arrival
/// event, so exceeding it means a duplicate delivery. `wanted` (online
/// subscribers at publish time) can be lower when churn revives a
/// subscriber mid-flight, so it only bounds completion, not the running
/// count.
inline Result validate_delivery_count(std::size_t delivered,
                                      std::size_t max_deliveries,
                                      std::size_t wanted, bool completed) {
  if (delivered > max_deliveries) {
    return Violation{"pubsub.exactly_once",
                     "message delivered " + std::to_string(delivered) +
                         " times for " + std::to_string(max_deliveries) +
                         " subscribers in its tree (duplicate delivery)"};
  }
  if (completed && delivered < wanted) {
    return Violation{"pubsub.completion",
                     "message marked complete with " +
                         std::to_string(delivered) + "/" +
                         std::to_string(wanted) + " wanted deliveries"};
  }
  return std::nullopt;
}

/// At-least-once delivery accounting — replaces validate_delivery_count()
/// when fault injection is enabled. Duplicate arrivals (injected dups,
/// retransmission races) are legal on the wire but must be suppressed at
/// the subscriber: every counted delivery or replay corresponds to exactly
/// one entry in the receiver dedup set, in-flight deliveries stay within
/// the tree's subscriber population, and completion still requires every
/// wanted subscriber.
inline Result validate_at_least_once(std::size_t delivered,
                                     std::size_t replayed,
                                     std::size_t unique_receivers,
                                     std::size_t max_deliveries,
                                     std::size_t wanted, bool completed) {
  if (unique_receivers != delivered + replayed) {
    return Violation{"pubsub.at_least_once",
                     std::to_string(delivered) + " deliveries + " +
                         std::to_string(replayed) + " replays but " +
                         std::to_string(unique_receivers) +
                         " unique receivers (dedup accounting broken)"};
  }
  if (delivered > max_deliveries) {
    return Violation{"pubsub.at_least_once",
                     "message delivered to " + std::to_string(delivered) +
                         " subscribers but only " +
                         std::to_string(max_deliveries) +
                         " are present in its tree"};
  }
  if (completed && delivered < wanted) {
    return Violation{"pubsub.completion",
                     "message marked complete with " +
                         std::to_string(delivered) + "/" +
                         std::to_string(wanted) + " wanted deliveries"};
  }
  return std::nullopt;
}

/// Replay dedup: the store-and-forward queue must never hand a returning
/// subscriber the same message twice (`queued_twice`), and must skip — not
/// re-deliver — messages the subscriber already received in-flight
/// (`already_delivered` is only legal as a skip, flagged by the caller with
/// `delivering = false`).
inline Result validate_replay_dedup(std::uint64_t msg,
                                    overlay::PeerId subscriber,
                                    bool queued_twice, bool already_delivered,
                                    bool delivering) {
  if (queued_twice) {
    return Violation{"pubsub.replay_dedup",
                     "message " + std::to_string(msg) +
                         " queued twice for subscriber " +
                         std::to_string(subscriber)};
  }
  if (already_delivered && delivering) {
    return Violation{"pubsub.replay_dedup",
                     "message " + std::to_string(msg) +
                         " replayed to subscriber " +
                         std::to_string(subscriber) +
                         " which already received it"};
  }
  return std::nullopt;
}

}  // namespace sel::check
