// Lightweight contract-checking macros in the spirit of the C++ Core
// Guidelines' Expects/Ensures. Violations abort with a source location;
// checks stay on in release builds because every simulation result in this
// repository depends on invariants holding.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sel::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace sel::detail

#define SEL_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sel::detail::contract_failure("Precondition", #cond, __FILE__,     \
                                      __LINE__);                           \
  } while (false)

#define SEL_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sel::detail::contract_failure("Postcondition", #cond, __FILE__,    \
                                      __LINE__);                           \
  } while (false)

#define SEL_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sel::detail::contract_failure("Invariant", #cond, __FILE__,        \
                                      __LINE__);                           \
  } while (false)
