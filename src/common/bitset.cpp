#include "common/bitset.hpp"

#include <bit>

namespace sel {

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t DynamicBitset::hamming_distance(const DynamicBitset& other) const {
  SEL_EXPECTS(size_ == other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::size_t DynamicBitset::intersection_count(const DynamicBitset& other) const {
  SEL_EXPECTS(size_ == other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

std::size_t DynamicBitset::union_count(const DynamicBitset& other) const {
  SEL_EXPECTS(size_ == other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] | other.words_[i]));
  }
  return total;
}

double DynamicBitset::jaccard(const DynamicBitset& other) const {
  const std::size_t uni = union_count(other);
  if (uni == 0) return 1.0;
  return static_cast<double>(intersection_count(other)) /
         static_cast<double>(uni);
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  SEL_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  SEL_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  SEL_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

void DynamicBitset::resize(std::size_t size) {
  size_ = size;
  words_.resize((size + kWordBits - 1) / kWordBits, 0);
  trim();
}

void DynamicBitset::trim() noexcept {
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

std::string DynamicBitset::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(test(i) ? '1' : '0');
  return out;
}

}  // namespace sel
