// Dynamic bitset tuned for friendship bitmaps: dense bit vectors of a few
// hundred bits with fast popcount-based set operations (Hamming distance,
// intersection size, Jaccard similarity). Used by the LSH index and the
// gossip protocol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace sel {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    SEL_EXPECTS(i < size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
  }

  void set(std::size_t i) noexcept {
    SEL_EXPECTS(i < size_);
    words_[i / kWordBits] |= (1ULL << (i % kWordBits));
  }

  void reset(std::size_t i) noexcept {
    SEL_EXPECTS(i < size_);
    words_[i / kWordBits] &= ~(1ULL << (i % kWordBits));
  }

  void assign(std::size_t i, bool value) noexcept {
    if (value)
      set(i);
    else
      reset(i);
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Number of positions where the two bitsets differ. Requires equal sizes.
  [[nodiscard]] std::size_t hamming_distance(const DynamicBitset& other) const;

  /// |a AND b| — size of the intersection. Requires equal sizes.
  [[nodiscard]] std::size_t intersection_count(const DynamicBitset& other) const;

  /// |a OR b| — size of the union. Requires equal sizes.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const;

  /// Jaccard similarity |a AND b| / |a OR b|; 1.0 when both are empty.
  [[nodiscard]] double jaccard(const DynamicBitset& other) const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  [[nodiscard]] bool operator==(const DynamicBitset& other) const = default;

  /// Grows or shrinks to `size` bits; new bits are clear.
  void resize(std::size_t size);

  /// "0110..." rendering, most significant bit last (index order).
  [[nodiscard]] std::string to_string() const;

  /// Direct word access for hashing; trailing bits beyond size() are zero.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  /// Clears bits in the last word beyond size_ so popcounts stay exact.
  void trim() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sel
