#include "common/csv.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace sel {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), columns_(header.size()), out_(path) {
  SEL_EXPECTS(!header.empty());
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  SEL_EXPECTS(values.size() == columns_);
  if (!out_.is_open()) return;
  bool first = true;
  for (const double v : values) {
    if (!first) out_ << ',';
    first = false;
    out_ << v;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  SEL_EXPECTS(values.size() == columns_);
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(values[i]);
  }
  out_ << '\n';
}

}  // namespace sel
