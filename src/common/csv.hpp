// Minimal CSV writer for experiment output. Every bench harness writes its
// series next to the binary so plots can be regenerated offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace sel {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// True when the file opened successfully (benches degrade gracefully when
  /// the working directory is read-only).
  [[nodiscard]] bool ok() const noexcept { return out_.is_open(); }

  /// Writes one row; the column count must match the header.
  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::size_t columns_;
  std::ofstream out_;
};

/// Escapes a field per RFC 4180 (quotes fields containing commas/quotes).
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace sel
