#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace sel {

double env_or(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : fallback;
}

std::int64_t env_or(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end != v ? static_cast<std::int64_t>(parsed) : fallback;
}

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

double bench_scale() { return env_or("SELECT_BENCH_SCALE", 1.0); }

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const double s = bench_scale();
  const auto scaled_n = static_cast<std::size_t>(static_cast<double>(n) * s);
  return std::max(scaled_n, min_n);
}

std::size_t trial_count(std::size_t fallback) {
  const auto t = env_or("SELECT_TRIALS", static_cast<std::int64_t>(fallback));
  return t > 0 ? static_cast<std::size_t>(t) : fallback;
}

}  // namespace sel
