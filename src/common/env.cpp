#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/log.hpp"

// POSIX environment table; the unknown-SEL_*-variable scan walks it.
extern char** environ;  // NOLINT(readability-redundant-declaration)

namespace sel {

namespace env {

namespace {

/// Raw value, or nullptr when unset or empty.
const char* raw(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

std::string lowered(const char* v) {
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

template <typename T>
T range_checked(const std::string& name, T parsed, T fallback, T min_value,
                T max_value) {
  if (parsed < min_value || parsed > max_value) {
    log_warn(name + "=" + std::to_string(parsed) + " outside [" +
             std::to_string(min_value) + ", " + std::to_string(max_value) +
             "]; using default " + std::to_string(fallback));
    return fallback;
  }
  return parsed;
}

}  // namespace

std::int64_t get_int(const std::string& name, std::int64_t fallback,
                     std::int64_t min_value, std::int64_t max_value) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return range_checked<std::int64_t>(name, parsed, fallback, min_value,
                                     max_value);
}

double get_double(const std::string& name, double fallback, double min_value,
                  double max_value) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return range_checked<double>(name, parsed, fallback, min_value, max_value);
}

bool get_bool(const std::string& name, bool fallback) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  const std::string s = lowered(v);
  if (s == "0" || s == "off" || s == "false" || s == "no") return false;
  if (s == "1" || s == "on" || s == "true" || s == "yes") return true;
  return fallback;
}

std::string get_string(const std::string& name, const std::string& fallback) {
  const char* v = raw(name);
  return v != nullptr ? std::string(v) : fallback;
}

std::size_t get_enum(const std::string& name,
                     std::initializer_list<const char*> options,
                     std::size_t fallback_index) {
  const char* v = raw(name);
  if (v == nullptr) return fallback_index;
  const std::string s = lowered(v);
  std::size_t index = 0;
  for (const char* aliases : options) {
    // Walk the pipe-separated alias list of this option.
    const char* start = aliases;
    for (const char* p = aliases;; ++p) {
      if (*p == '|' || *p == '\0') {
        if (s.size() == static_cast<std::size_t>(p - start) &&
            std::equal(start, p, s.begin())) {
          return index;
        }
        if (*p == '\0') break;
        start = p + 1;
      }
    }
    ++index;
  }
  return fallback_index;
}

}  // namespace env

double bench_scale() {
  // Scale 0 would make every experiment degenerate; treat it like any other
  // out-of-range value.
  return env::get_double("SELECT_BENCH_SCALE", 1.0, 1e-6, 1e6);
}

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const double s = bench_scale();
  const auto scaled_n = static_cast<std::size_t>(static_cast<double>(n) * s);
  return std::max(scaled_n, min_n);
}

std::size_t trial_count(std::size_t fallback) {
  return static_cast<std::size_t>(
      env::get_int("SELECT_TRIALS", static_cast<std::int64_t>(fallback), 1,
                   1'000'000));
}

const std::vector<EnvKnob>& env_knobs() {
  static const std::vector<EnvKnob> knobs = {
      {"SEL_OBS", "observability master switch (off disables all telemetry)"},
      {"SEL_CHECK", "invariant checking level: off | cheap | full"},
      {"SEL_TRACE_SAMPLE", "provenance tracing: sample 1-in-N publishes"},
      {"SEL_STABLE_EPS", "round sampler: id-movement stability threshold"},
      {"SEL_FAULT",
       "fault plan, e.g. drop=0.05,dup=0.01,spike=0.02,stall=0.01,crash=1e-3"},
      {"SEL_RETRY", "reliability layer master switch (on enables retries)"},
      {"SEL_RETRY_MAX", "total send attempts per hop (default 4)"},
      {"SEL_RETRY_TIMEOUT_S", "base ack timeout, seconds (default 5)"},
      {"SEL_RETRY_BACKOFF", "exponential backoff factor per retry (default 2)"},
      {"SEL_RETRY_JITTER", "+/- jitter fraction on each timeout (default 0.2)"},
      {"SEL_REPLAY_CAP",
       "store-and-forward queue bound, oldest evicted (0 = unbounded)"},
      {"SEL_MAILBOX",
       "replicated-mailbox durability tier master switch (chaos drivers)"},
      {"SEL_MAILBOX_K", "mailbox replicas per queued message (default 3)"},
      {"SEL_RUNTIME", "execution mode: async | superstep (default async)"},
      {"SEL_TRANSPORT", "transport backend: inproc | socket (default inproc)"},
      {"SEL_RUNTIME_ROUND_S", "superstep barrier length, seconds (default 1)"},
      {"SEL_SHARDS", "socket runtime: shard process count (default 2)"},
      {"SEL_MEM_BUDGET",
       "soft memory budget for tracked bytes, e.g. 512m (k/m/g suffixes)"},
      {"SEL_MEM_PROFILE",
       "per-round memory sampling in reports (same as --mem-profile)"},
      {"SELECT_BENCH_SCALE", "experiment network-size multiplier"},
      {"SELECT_TRIALS", "independent trials per data point"},
      {"SELECT_THREADS", "worker threads for the global pool (0 = hardware)"},
      {"SELECT_LOG", "log level: error | warn | info | debug"},
      {"SELECT_RESULTS_DIR", "bench artifact directory (default results/)"},
  };
  return knobs;
}

std::vector<std::string> unknown_sel_env_vars() {
  std::vector<std::string> unknown;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "SEL_", 4) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name =
        eq != nullptr ? std::string(entry, eq) : std::string(entry);
    bool known = false;
    for (const auto& knob : env_knobs()) {
      if (name == knob.name) {
        known = true;
        break;
      }
    }
    if (!known) unknown.push_back(name);
  }
  std::sort(unknown.begin(), unknown.end());
  return unknown;
}

void warn_unknown_sel_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    for (const auto& name : unknown_sel_env_vars()) {
      log_warn("unknown SEL_* environment variable '" + name +
               "' (typo? known knobs are listed by sel::env_knobs())");
    }
  });
}

}  // namespace sel
