#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/log.hpp"

// POSIX environment table; the unknown-SEL_*-variable scan walks it.
extern char** environ;  // NOLINT(readability-redundant-declaration)

namespace sel {

double env_or(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : fallback;
}

std::int64_t env_or(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end != v ? static_cast<std::int64_t>(parsed) : fallback;
}

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

double bench_scale() { return env_or("SELECT_BENCH_SCALE", 1.0); }

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const double s = bench_scale();
  const auto scaled_n = static_cast<std::size_t>(static_cast<double>(n) * s);
  return std::max(scaled_n, min_n);
}

std::size_t trial_count(std::size_t fallback) {
  const auto t = env_or("SELECT_TRIALS", static_cast<std::int64_t>(fallback));
  return t > 0 ? static_cast<std::size_t>(t) : fallback;
}

const std::vector<EnvKnob>& env_knobs() {
  static const std::vector<EnvKnob> knobs = {
      {"SEL_OBS", "observability master switch (off disables all telemetry)"},
      {"SEL_CHECK", "invariant checking level: off | cheap | full"},
      {"SEL_TRACE_SAMPLE", "provenance tracing: sample 1-in-N publishes"},
      {"SEL_STABLE_EPS", "round sampler: id-movement stability threshold"},
      {"SEL_FAULT",
       "fault plan, e.g. drop=0.05,dup=0.01,spike=0.02,stall=0.01,crash=1e-3"},
      {"SEL_RETRY", "reliability layer master switch (on enables retries)"},
      {"SEL_RETRY_MAX", "total send attempts per hop (default 4)"},
      {"SEL_RETRY_TIMEOUT_S", "base ack timeout, seconds (default 5)"},
      {"SEL_RETRY_BACKOFF", "exponential backoff factor per retry (default 2)"},
      {"SEL_RETRY_JITTER", "+/- jitter fraction on each timeout (default 0.2)"},
      {"SELECT_BENCH_SCALE", "experiment network-size multiplier"},
      {"SELECT_TRIALS", "independent trials per data point"},
      {"SELECT_THREADS", "worker threads for the global pool (0 = hardware)"},
      {"SELECT_LOG", "log level: error | warn | info | debug"},
      {"SELECT_RESULTS_DIR", "bench artifact directory (default results/)"},
  };
  return knobs;
}

std::vector<std::string> unknown_sel_env_vars() {
  std::vector<std::string> unknown;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "SEL_", 4) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name =
        eq != nullptr ? std::string(entry, eq) : std::string(entry);
    bool known = false;
    for (const auto& knob : env_knobs()) {
      if (name == knob.name) {
        known = true;
        break;
      }
    }
    if (!known) unknown.push_back(name);
  }
  std::sort(unknown.begin(), unknown.end());
  return unknown;
}

void warn_unknown_sel_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    for (const auto& name : unknown_sel_env_vars()) {
      log_warn("unknown SEL_* environment variable '" + name +
               "' (typo? known knobs are listed by sel::env_knobs())");
    }
  });
}

}  // namespace sel
