// Environment-variable helpers and the registry of every SEL_*/SELECT_*
// knob the codebase reads. The registry (env_knobs()) is the single source
// of truth for the runtime-configuration surface: unknown SEL_-prefixed
// variables in the environment trigger a one-shot warning, which catches
// the classic chaos-run typo (SEL_FUALT=... silently doing nothing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sel {

/// Returns the environment variable `name` parsed as a double, or `fallback`
/// when unset or unparsable.
[[nodiscard]] double env_or(const std::string& name, double fallback);

/// Integer variant.
[[nodiscard]] std::int64_t env_or(const std::string& name,
                                  std::int64_t fallback);

/// String variant.
[[nodiscard]] std::string env_or(const std::string& name,
                                 const std::string& fallback);

/// Global experiment-size multiplier (SELECT_BENCH_SCALE, default 1.0).
[[nodiscard]] double bench_scale();

/// `n` scaled by bench_scale(), never below `min_n`.
[[nodiscard]] std::size_t scaled(std::size_t n, std::size_t min_n = 32);

/// Number of independent trials (SELECT_TRIALS, default `fallback`).
[[nodiscard]] std::size_t trial_count(std::size_t fallback = 5);

/// One registered environment knob.
struct EnvKnob {
  const char* name;     ///< exact variable name, e.g. "SEL_FAULT"
  const char* summary;  ///< one-line meaning, for docs and --help output
};

/// Every environment variable the codebase reads, SEL_* and SELECT_* alike.
/// New knobs MUST be added here or the unknown-variable warning flags them.
[[nodiscard]] const std::vector<EnvKnob>& env_knobs();

/// SEL_-prefixed variables present in the environment but absent from
/// env_knobs() — almost certainly typos. (SELECT_* uses a distinct prefix
/// and is not scanned; test-only variables would false-positive.)
[[nodiscard]] std::vector<std::string> unknown_sel_env_vars();

/// Logs one warning per process listing unknown SEL_* variables. Called by
/// every SEL_* reader's init path; cheap after the first call.
void warn_unknown_sel_env_once();

}  // namespace sel
