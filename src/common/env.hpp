// Environment-variable helpers used by the bench harnesses:
//   SELECT_BENCH_SCALE — multiplies experiment network sizes (default 1.0)
//   SELECT_TRIALS      — number of independent trials per data point
//   SELECT_THREADS     — worker threads for the global pool (0 = hardware)
#pragma once

#include <cstdint>
#include <string>

namespace sel {

/// Returns the environment variable `name` parsed as a double, or `fallback`
/// when unset or unparsable.
[[nodiscard]] double env_or(const std::string& name, double fallback);

/// Integer variant.
[[nodiscard]] std::int64_t env_or(const std::string& name,
                                  std::int64_t fallback);

/// String variant.
[[nodiscard]] std::string env_or(const std::string& name,
                                 const std::string& fallback);

/// Global experiment-size multiplier (SELECT_BENCH_SCALE, default 1.0).
[[nodiscard]] double bench_scale();

/// `n` scaled by bench_scale(), never below `min_n`.
[[nodiscard]] std::size_t scaled(std::size_t n, std::size_t min_n = 32);

/// Number of independent trials (SELECT_TRIALS, default `fallback`).
[[nodiscard]] std::size_t trial_count(std::size_t fallback = 5);

}  // namespace sel
