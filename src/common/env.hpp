// Environment-variable configuration surface.
//
// Two layers:
//   1. Typed accessors (sel::env::get_*) — every runtime knob is read
//      through one of these, which parse, apply defaults, and validate
//      ranges in one place instead of ad-hoc strtod/strtol scattered across
//      subsystems. Out-of-range values log one warning and fall back to the
//      default (never a silent clamp); unparsable values fall back silently,
//      matching the historical behavior.
//   2. The knob registry (env_knobs()) — the single source of truth for the
//      SEL_*/SELECT_* surface. Unknown SEL_-prefixed variables in the
//      environment trigger a one-shot warning, which catches the classic
//      chaos-run typo (SEL_FUALT=... silently doing nothing).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <string>
#include <vector>

namespace sel {

namespace env {

/// Integer knob. Unset/empty/unparsable values yield `fallback`; a parsed
/// value outside [min_value, max_value] logs a warning and yields
/// `fallback`. Parsing accepts a leading integer ("8x" -> 8), as strtol
/// always has.
[[nodiscard]] std::int64_t get_int(
    const std::string& name, std::int64_t fallback,
    std::int64_t min_value = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max_value = std::numeric_limits<std::int64_t>::max());

/// Floating-point knob; same default/range semantics as get_int.
[[nodiscard]] double get_double(
    const std::string& name, double fallback,
    double min_value = -std::numeric_limits<double>::infinity(),
    double max_value = std::numeric_limits<double>::infinity());

/// Boolean knob: "0", "off", "false", "no" (case-insensitive) are false;
/// "1", "on", "true", "yes" are true; anything else yields `fallback`.
[[nodiscard]] bool get_bool(const std::string& name, bool fallback);

/// Raw string knob: the variable's value, or `fallback` when unset/empty.
[[nodiscard]] std::string get_string(const std::string& name,
                                     const std::string& fallback);

/// Enumerated knob. Each option is a pipe-separated alias list, e.g.
///   get_enum("SEL_CHECK", {"off|0|false|no", "cheap|1", "full|2"}, 1)
/// returns the index of the option whose alias matches the value
/// (case-insensitive), or `fallback_index` when unset or unrecognized.
[[nodiscard]] std::size_t get_enum(const std::string& name,
                                   std::initializer_list<const char*> options,
                                   std::size_t fallback_index);

}  // namespace env

/// Global experiment-size multiplier (SELECT_BENCH_SCALE, default 1.0).
[[nodiscard]] double bench_scale();

/// `n` scaled by bench_scale(), never below `min_n`.
[[nodiscard]] std::size_t scaled(std::size_t n, std::size_t min_n = 32);

/// Number of independent trials (SELECT_TRIALS, default `fallback`).
[[nodiscard]] std::size_t trial_count(std::size_t fallback = 5);

/// One registered environment knob.
struct EnvKnob {
  const char* name;     ///< exact variable name, e.g. "SEL_FAULT"
  const char* summary;  ///< one-line meaning, for docs and --help output
};

/// Every environment variable the codebase reads, SEL_* and SELECT_* alike.
/// New knobs MUST be added here or the unknown-variable warning flags them.
[[nodiscard]] const std::vector<EnvKnob>& env_knobs();

/// SEL_-prefixed variables present in the environment but absent from
/// env_knobs() — almost certainly typos. (SELECT_* uses a distinct prefix
/// and is not scanned; test-only variables would false-positive.)
[[nodiscard]] std::vector<std::string> unknown_sel_env_vars();

/// Logs one warning per process listing unknown SEL_* variables. Called by
/// every SEL_* reader's init path; cheap after the first call.
void warn_unknown_sel_env_once();

}  // namespace sel
