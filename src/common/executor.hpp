// Value-semantic execution policy: where parallel regions run.
//
// Every engine that can parallelize (the superstep engine, the trial
// runner, bench harnesses) takes an Executor by value instead of a nullable
// ThreadPool*. The two states — inline (run on the calling thread) and
// pooled (fan out over a ThreadPool) — are handled inside for_chunks(), so
// call sites never branch on "do I have a pool?". Copies are cheap and
// share the underlying pool; an Executor that owns its pool keeps it alive
// for as long as any copy exists.
//
// Determinism contract: concurrency() is the fixed chunk count a caller may
// use to pre-size per-chunk state. for_chunks() always splits [begin, end)
// into the same contiguous ascending chunks as ThreadPool::parallel_for_chunks
// (ceil-divided), so results that are chunk-order-insensitive are identical
// across executors of any width.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "common/thread_pool.hpp"

namespace sel {

class Executor {
 public:
  /// Inline executor: for_chunks() runs the whole range as one chunk on the
  /// calling thread. This is the default everywhere.
  Executor() = default;

  /// Named alias of the default constructor, for call sites where spelling
  /// the intent out reads better than `{}`.
  [[nodiscard]] static Executor inline_exec() { return Executor(); }

  /// Fans out over a pool owned by the executor (shared among copies).
  /// `threads` as in ThreadPool: 0 means hardware concurrency.
  [[nodiscard]] static Executor pooled(unsigned threads) {
    Executor e;
    e.owned_ = std::make_shared<ThreadPool>(threads);
    e.pool_ = e.owned_.get();
    return e;
  }

  /// Fans out over a caller-owned pool. The pool must outlive every copy of
  /// the executor.
  [[nodiscard]] static Executor pooled(ThreadPool& pool) {
    Executor e;
    e.pool_ = &pool;
    return e;
  }

  /// The process-wide pool (ThreadPool::global(), sized by SELECT_THREADS).
  [[nodiscard]] static Executor global_pool() {
    return pooled(ThreadPool::global());
  }

  /// Number of chunks for_chunks() splits work into: 1 inline, pool width
  /// when pooled. Always >= 1; stable for the executor's lifetime.
  [[nodiscard]] unsigned concurrency() const noexcept {
    return pool_ != nullptr ? std::max(1u, pool_->size()) : 1u;
  }

  /// True when work fans out to worker threads.
  [[nodiscard]] bool is_pooled() const noexcept { return pool_ != nullptr; }

  /// Runs body(chunk_begin, chunk_end) over contiguous ascending chunks of
  /// [begin, end). Inline: one chunk, on the calling thread. Pooled: one
  /// chunk per worker, blocking until all finish; the first exception (in
  /// chunk order) is rethrown after every chunk completed.
  void for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body) const {
    if (begin >= end) return;
    if (pool_ != nullptr) {
      pool_->parallel_for_chunks(begin, end, body);
    } else {
      body(begin, end);
    }
  }

  /// Element-wise convenience: body(i) for i in [begin, end).
  void for_each(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& body) const {
    for_chunks(begin, end, [&body](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }

 private:
  std::shared_ptr<ThreadPool> owned_;  ///< set only for pooled(threads)
  ThreadPool* pool_ = nullptr;         ///< null = inline
};

}  // namespace sel
