// Sorted-vector set with deterministic iteration order.
//
// The repo's determinism contract (DESIGN.md §13-15) forbids iterating
// std::unordered_map/set anywhere the visit order can leak into link
// choice, delivery order, or report bytes — hash-table order is an
// implementation detail of the standard library, not a property of the
// seed. FlatSet is the drop-in replacement for those sites: membership
// queries are O(log n) over one contiguous allocation, and iteration is
// always ascending, so any loop over it is reproducible byte-for-byte
// across runs, thread counts, and standard libraries.
//
// The element sets it replaces (subscriber sets, rewiring adjacency,
// attachment targets) are small — tens to a few hundred entries — where
// the binary search beats hashing on locality anyway. Inserts are O(n)
// (vector shift); callers that build large sets should insert in roughly
// ascending order or use reserve().
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace sel {

template <typename T>
class FlatSet {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;

  FlatSet() = default;

  FlatSet(std::initializer_list<T> init) : values_(init) { normalize(); }

  template <typename InputIt>
  FlatSet(InputIt first, InputIt last) : values_(first, last) {
    normalize();
  }

  /// Inserts `value`; returns true when it was not already present.
  bool insert(const T& value) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), value);
    if (it != values_.end() && *it == value) return false;
    values_.insert(it, value);
    return true;
  }

  /// Removes `value`; returns true when it was present.
  bool erase(const T& value) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), value);
    if (it == values_.end() || *it != value) return false;
    values_.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(const T& value) const {
    return std::binary_search(values_.begin(), values_.end(), value);
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  void clear() noexcept { values_.clear(); }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Ascending, duplicate-free — the deterministic iteration order.
  [[nodiscard]] const_iterator begin() const noexcept {
    return values_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return values_.end(); }

  [[nodiscard]] const std::vector<T>& values() const noexcept {
    return values_;
  }

  friend bool operator==(const FlatSet& a, const FlatSet& b) {
    return a.values_ == b.values_;
  }

 private:
  void normalize() {
    std::sort(values_.begin(), values_.end());
    values_.erase(std::unique(values_.begin(), values_.end()),
                  values_.end());
  }

  std::vector<T> values_;
};

}  // namespace sel
