#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sel {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  SEL_EXPECTS(hi > lo);
  SEL_EXPECTS(bins > 0);
}

void Histogram::add(double x, double weight) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::count(std::size_t i) const {
  SEL_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  SEL_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + width_ / 2.0;
}

double Histogram::fraction(std::size_t i) const {
  SEL_EXPECTS(i < counts_.size());
  if (total_ <= 0.0) return 0.0;
  return counts_[i] / total_;
}

std::size_t Histogram::mode_bin() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

double Histogram::clumpiness() const noexcept {
  const double mean = total_ / static_cast<double>(counts_.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const double c : counts_) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts_.size());
  return std::sqrt(var) / mean;
}

double Histogram::entropy_bits() const noexcept {
  if (total_ <= 0.0) return 0.0;
  double h = 0.0;
  for (const double c : counts_) {
    if (c <= 0.0) continue;
    const double p = c / total_;
    h -= p * std::log2(p);
  }
  return h;
}

std::string Histogram::render(std::size_t max_width) const {
  std::string out;
  const double peak =
      counts_.empty() ? 0.0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%6.3f) ", bin_lo(i));
    out += label;
    const auto bar =
        peak > 0.0 ? static_cast<std::size_t>(counts_[i] / peak *
                                              static_cast<double>(max_width))
                   : 0;
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace sel
