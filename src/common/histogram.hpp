// Fixed-bin histograms used by the figure harnesses (identifier
// distributions, load-per-degree buckets, hop-count distributions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sel {

/// Histogram over [lo, hi) with uniform bins. Values outside the range are
/// clamped into the first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Weight accumulated in bin i.
  [[nodiscard]] double count(std::size_t i) const;
  /// Left edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;
  /// Center of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;

  [[nodiscard]] double total() const noexcept { return total_; }

  /// Fraction of total weight in bin i; 0 when the histogram is empty.
  [[nodiscard]] double fraction(std::size_t i) const;

  /// Index of the bin with the largest weight (first on ties).
  [[nodiscard]] std::size_t mode_bin() const noexcept;

  /// Coefficient of variation of the bin weights: stddev/mean. 0 for a
  /// perfectly uniform histogram; grows as the mass clumps. Used to quantify
  /// identifier clustering in Fig. 8.
  [[nodiscard]] double clumpiness() const noexcept;

  /// Shannon entropy of the bin distribution, in bits; log2(bins) when
  /// uniform. The identifier-distribution harness reports both.
  [[nodiscard]] double entropy_bits() const noexcept;

  /// Simple ASCII rendering, one row per bin (for console output).
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace sel
