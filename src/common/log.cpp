#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/env.hpp"

namespace sel {

namespace {

std::atomic<int> g_level{-1};

LogLevel parse_level() {
  return static_cast<LogLevel>(env::get_enum(
      "SELECT_LOG", {"error", "warn", "info", "debug"},
      static_cast<std::size_t>(LogLevel::kWarn)));
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(parse_level());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace sel
