// Tiny leveled logger. Experiments are long-running; progress lines go to
// stderr so CSV/table output on stdout stays machine-readable.
// Level is controlled by SELECT_LOG (error|warn|info|debug), default warn.
#pragma once

#include <string>

namespace sel {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current global level (parsed once from SELECT_LOG).
[[nodiscard]] LogLevel log_level();

/// Overrides the global level (tests use this).
void set_log_level(LogLevel level);

void log(LogLevel level, const std::string& message);

inline void log_error(const std::string& m) { log(LogLevel::kError, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }

}  // namespace sel
