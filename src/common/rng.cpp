#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace sel {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  SEL_EXPECTS(n > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) noexcept {
  SEL_EXPECTS(rate > 0.0);
  // Inverse CDF on (0,1]; 1-uniform() avoids log(0).
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal() noexcept {
  // Box-Muller transform; u1 in (0,1] to keep log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  SEL_EXPECTS(sigma >= 0.0);
  return std::exp(mu + sigma * normal());
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  SEL_EXPECTS(n >= 1);
  SEL_EXPECTS(s > 0.0);
  // Devroye's rejection method for the Zipf distribution; expected number of
  // iterations is a small constant for any n and s.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) { return std::pow(x, -s); };
  // Integral of h over [1, x]; handles s == 1 separately.
  auto big_h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto big_h_inv = [s](double y) {
    return s == 1.0 ? std::exp(y) : std::pow(1.0 + (1.0 - s) * y, 1.0 / (1.0 - s));
  };
  const double hx0 = big_h(nd + 0.5);
  for (;;) {
    const double u = uniform() * hx0;
    const double x = big_h_inv(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1 || k > n) continue;
    const double kd = static_cast<double>(k);
    // Accept with probability proportional to the true mass at k.
    if (kd - x <= 0.5 || h(kd) >= uniform() * h(x)) {
      return k;
    }
  }
}

}  // namespace sel
