// Deterministic random number generation for simulations.
//
// Every stochastic component in this repository takes an explicit 64-bit
// seed. Trials and per-peer streams derive independent sub-seeds with
// SplitMix64, so results are reproducible regardless of thread count and
// iteration order. The workhorse generator is xoshiro256**, which is fast,
// tiny and has no observable correlations at simulation scale.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace sel {

/// Mixes a 64-bit value into a well-distributed 64-bit value (SplitMix64
/// finalizer). Used both for seed derivation and for hashing small keys.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives an independent sub-seed from a root seed and a stream index.
/// Distinct (seed, stream) pairs yield statistically independent streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  return splitmix64(seed ^ splitmix64(stream + 0x632be59bd9b4e019ULL));
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so any 64-bit seed works.
  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t s = seed;
    for (auto& w : state_) {
      s = splitmix64(s);
      w = s;
    }
    // All-zero state is the one invalid state; SplitMix64 of any seed cannot
    // produce four zero words in a row, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    SEL_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential variate with the given rate (mean = 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Log-normal variate: exp(N(mu, sigma^2)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Standard normal variate (Box-Muller, cached second value discarded for
  /// simplicity and statelessness).
  [[nodiscard]] double normal() noexcept;

  /// Zipf-distributed integer in [1, n] with exponent s, via rejection
  /// sampling (Devroye). Suitable for heavy-tailed workload draws.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Creates an independent generator for the given stream index, derived
  /// from this generator's original seed material.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept {
    return Rng(derive_seed((*this)(), stream));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  if (c.empty()) return;
  for (std::size_t i = c.size() - 1; i > 0; --i) {
    using std::swap;
    swap(c[i], c[static_cast<std::size_t>(rng.below(i + 1))]);
  }
}

}  // namespace sel
