#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sel {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  // Two-sided 95% t critical values for small n; ~1.96 for large n.
  static constexpr double kT[] = {0,     0,     12.71, 4.303, 3.182, 2.776,
                                  2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
                                  2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                                  2.110, 2.101, 2.093, 2.086, 2.080, 2.074,
                                  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                                  2.045};
  const double t = n_ <= 30 ? kT[n_] : 1.96;
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::quantile(double q) const {
  SEL_EXPECTS(q >= 0.0 && q <= 1.0);
  SEL_EXPECTS(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

}  // namespace sel
