// Statistics accumulators used by every experiment harness: streaming
// mean/variance (Welford), exact percentiles over retained samples, and
// Student-t confidence intervals for multi-trial averaging (the paper reports
// averages over 100 independent trials).
#pragma once

#include <cstddef>
#include <vector>

namespace sel {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
/// O(1) memory; numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the ~95% confidence interval on the mean (normal
  /// approximation for n >= 30, t-table lookup below).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains every sample; supports exact quantiles. Use for per-trial metric
/// vectors (hundreds to a few million doubles).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Exact q-quantile (q in [0,1]) with linear interpolation.
  /// Sorts lazily; amortized O(n log n) on first call after inserts.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  void merge(const SampleSet& other);
  void clear() noexcept { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace sel
