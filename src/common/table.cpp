#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace sel {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SEL_EXPECTS(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> row) {
  SEL_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::add_row_numeric(const std::string& label,
                                   const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = emit_row(header_);
  std::size_t rule = 0;
  for (const auto w : widths) rule += w + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace sel
