// Aligned console tables: the bench harnesses print rows shaped like the
// paper's tables/figures, and this keeps them readable in a terminal.
#pragma once

#include <string>
#include <vector>

namespace sel {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  /// Renders the table with a header separator, columns padded to fit.
  [[nodiscard]] std::string render() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for harness code).
[[nodiscard]] std::string fmt(double v, int precision = 2);

}  // namespace sel
