#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/env.hpp"

namespace sel {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end,
                      [&body](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min<std::size_t>(size(), n);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(lo + per, end);
    if (lo >= hi) break;
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  // Wait for EVERY chunk before rethrowing: bailing out on the first
  // exceptional future would destroy `body` (and the caller's captures)
  // while later-queued chunks still reference them — a use-after-free that
  // intermittently crashed ExceptionPropagatesFromBody.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(static_cast<unsigned>(
      env::get_int("SELECT_THREADS", 0, 0, 4096)));
  return pool;
}

}  // namespace sel
