#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace sel {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end,
                      [&body](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min<std::size_t>(size(), n);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(lo + per, end);
    if (lo >= hi) break;
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  // get() propagates the first exception thrown by a chunk.
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      static_cast<unsigned>(env_or("SELECT_THREADS", std::int64_t{0})));
  return pool;
}

}  // namespace sel
