// Fixed-size thread pool plus a deterministic parallel_for.
//
// The superstep simulation engine partitions peers into contiguous chunks and
// runs each chunk on a worker; per-peer RNG streams make results identical
// regardless of thread count. The pool is intentionally simple — submit
// returns a future, parallel_for blocks until the range is done — because
// simulation rounds are barrier-synchronized anyway.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task; the returned future is ready once it ran.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs body(i) for i in [begin, end), split into contiguous chunks across
  /// the pool. Blocks until every chunk finished — even when one throws —
  /// then rethrows the first exception observed (in chunk order), so `body`
  /// never dangles while a worker still runs it.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) per worker chunk. Useful
  /// when the body wants to hoist per-chunk state (e.g. an RNG or a local
  /// accumulator).
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool sized from SELECT_THREADS (default: hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sel
