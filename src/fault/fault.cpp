#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace sel::fault {

namespace {

// Fault-plane telemetry (naming: `fault.*`): what the plan actually injected
// into the run, aggregated process-wide like the pubsub counters.
obs::Counter& drops_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("fault.drops");
  return c;
}
obs::Counter& duplicates_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.duplicates");
  return c;
}
obs::Counter& spikes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.latency_spikes");
  return c;
}
obs::Counter& stalls_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.stalls");
  return c;
}
obs::Counter& crashes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.crashes");
  return c;
}
obs::Counter& bursts_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.bursts");
  return c;
}
obs::Counter& burst_crashes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.burst_crashes");
  return c;
}
obs::Counter& false_acks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.byzantine_false_acks");
  return c;
}
obs::Counter& duplicate_acks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.byzantine_duplicate_acks");
  return c;
}
obs::Counter& withheld_replays_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "fault.byzantine_withheld_replays");
  return c;
}

// Draw salts: distinct streams per fault class so e.g. the drop and
// duplicate decisions of one hop are independent.
constexpr std::uint64_t kDropSalt = 0x5e1d0001;
constexpr std::uint64_t kDupSalt = 0x5e1d0002;
constexpr std::uint64_t kSpikeSalt = 0x5e1d0003;
constexpr std::uint64_t kStallSalt = 0x5e1d0004;
constexpr std::uint64_t kCrashSalt = 0x5e1d0005;
// Adversarial tier.
constexpr std::uint64_t kDomainSalt = 0x5e1d0006;
constexpr std::uint64_t kBurstSalt = 0x5e1d0007;
constexpr std::uint64_t kByzSalt = 0x5e1d0008;
constexpr std::uint64_t kByzStoreSalt = 0x5e1d0009;
constexpr std::uint64_t kByzDupSalt = 0x5e1d000a;

double parse_value(std::string_view key, std::string_view text, double fallback) {
  char* end = nullptr;
  const std::string owned(text);
  const double v = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str()) {
    log_warn("SEL_FAULT: unparsable value for '" + std::string(key) + "': '" +
             owned + "'");
    return fallback;
  }
  return v;
}

void append_knob(std::string& out, const char* key, double value,
                 double default_value) {
  if (value == default_value) return;
  if (!out.empty()) out += ',';
  out += key;
  out += '=';
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  out += buf;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      log_warn("SEL_FAULT: expected key=value, got '" + std::string(item) +
               "'");
      continue;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    if (key == "drop") {
      out.drop = parse_value(key, val, out.drop);
    } else if (key == "dup" || key == "duplicate") {
      out.duplicate = parse_value(key, val, out.duplicate);
    } else if (key == "spike") {
      out.spike = parse_value(key, val, out.spike);
    } else if (key == "spike_factor") {
      out.spike_factor = parse_value(key, val, out.spike_factor);
    } else if (key == "stall") {
      out.stall = parse_value(key, val, out.stall);
    } else if (key == "stall_s") {
      out.stall_s = parse_value(key, val, out.stall_s);
    } else if (key == "crash") {
      out.crash = parse_value(key, val, out.crash);
    } else if (key == "byz" || key == "byzantine") {
      out.byzantine = parse_value(key, val, out.byzantine);
    } else if (key == "bursts") {
      out.bursts = static_cast<std::size_t>(std::max(
          0.0, parse_value(key, val, static_cast<double>(out.bursts))));
    } else if (key == "burst_width") {
      out.burst_width = static_cast<std::size_t>(std::max(
          1.0, parse_value(key, val, static_cast<double>(out.burst_width))));
    } else if (key == "burst_spacing_s") {
      out.burst_spacing_s = parse_value(key, val, out.burst_spacing_s);
    } else {
      log_warn("SEL_FAULT: unknown fault knob '" + std::string(key) + "'");
    }
  }
  return out;
}

FaultSpec FaultSpec::from_env() {
  warn_unknown_sel_env_once();
  return parse(env::get_string("SEL_FAULT", std::string()));
}

std::string FaultSpec::to_string() const {
  const FaultSpec defaults;
  std::string out;
  append_knob(out, "drop", drop, defaults.drop);
  append_knob(out, "dup", duplicate, defaults.duplicate);
  append_knob(out, "spike", spike, defaults.spike);
  append_knob(out, "spike_factor", spike_factor, defaults.spike_factor);
  append_knob(out, "stall", stall, defaults.stall);
  append_knob(out, "stall_s", stall_s, defaults.stall_s);
  append_knob(out, "crash", crash, defaults.crash);
  append_knob(out, "byz", byzantine, defaults.byzantine);
  append_knob(out, "bursts", static_cast<double>(bursts),
              static_cast<double>(defaults.bursts));
  append_knob(out, "burst_width", static_cast<double>(burst_width),
              static_cast<double>(defaults.burst_width));
  append_knob(out, "burst_spacing_s", burst_spacing_s,
              defaults.burst_spacing_s);
  return out;
}

FaultPlan::FaultPlan(FaultSpec spec, std::uint64_t seed, std::size_t num_peers)
    : spec_(spec),
      seed_(seed),
      stalled_until_(num_peers, 0.0),
      crashed_(num_peers, false),
      receive_seq_(num_peers, 0) {
  SEL_EXPECTS(spec.spike_factor >= 1.0);
  SEL_EXPECTS(spec.stall_s >= 0.0);
  // Register the whole fault.* counter family up front so run reports carry
  // a seed-independent schema: a fault class that never fires reports 0
  // instead of omitting the key. CI's exact-match report gates (--fail-on
  // fault.crashes=0 etc.) rely on the key existing in both runs.
  drops_counter();
  duplicates_counter();
  spikes_counter();
  stalls_counter();
  crashes_counter();
  bursts_counter();
  burst_crashes_counter();
  false_acks_counter();
  duplicate_acks_counter();
  withheld_replays_counter();
  // The burst schedule is fixed at construction — a pure function of
  // (seed, spec, num_peers) — so same-seed runs burst identically and
  // reset() need not (and must not) touch it.
  const std::size_t domains = num_domains();
  bursts_.reserve(spec_.bursts);
  for (std::size_t i = 0; i < spec_.bursts; ++i) {
    BurstEvent burst;
    burst.at_s = static_cast<double>(i + 1) * spec_.burst_spacing_s;
    burst.domain = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(u01(kBurstSalt, i, 0, 0) *
                                   static_cast<double>(domains)) %
        domains);
    for (std::uint32_t p = 0; p < num_peers; ++p) {
      if (failure_domain(p) == burst.domain) burst.peers.push_back(p);
    }
    bursts_.push_back(std::move(burst));
  }
}

double FaultPlan::u01(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c) const noexcept {
  // SplitMix chain over (seed, salt, a, b, c): a well-mixed 64-bit hash,
  // mapped to [0,1) with 53 random bits (same mapping as Rng::uniform()).
  std::uint64_t h = splitmix64(seed_ ^ splitmix64(salt));
  h = splitmix64(h ^ splitmix64(a));
  h = splitmix64(h ^ splitmix64(b));
  h = splitmix64(h ^ splitmix64(c));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

HopFate FaultPlan::hop_fate(std::uint64_t msg, std::uint32_t from,
                            std::uint32_t to, std::uint32_t attempt) {
  // Pack (from, to, attempt) into the third hash word; attempts draw
  // independent fates so a retry is a fresh Bernoulli trial.
  const std::uint64_t edge =
      (static_cast<std::uint64_t>(from) << 32) | to;
  HopFate fate;
  if (spec_.drop > 0.0 && u01(kDropSalt, msg, edge, attempt) < spec_.drop) {
    fate.dropped = true;
    ++stats_.drops;
    drops_counter().add(1);
    return fate;  // a dropped hop cannot also duplicate or spike
  }
  if (spec_.duplicate > 0.0 &&
      u01(kDupSalt, msg, edge, attempt) < spec_.duplicate) {
    fate.duplicated = true;
    ++stats_.duplicates;
    duplicates_counter().add(1);
  }
  if (spec_.spike > 0.0 && u01(kSpikeSalt, msg, edge, attempt) < spec_.spike) {
    fate.latency_factor = spec_.spike_factor;
    ++stats_.spikes;
    spikes_counter().add(1);
  }
  return fate;
}

ReceiveState FaultPlan::on_receive(std::uint32_t peer, std::uint64_t msg,
                                   double now_s) {
  SEL_EXPECTS(peer < crashed_.size());
  if (crashed_[peer]) return ReceiveState::kCrashed;
  if (now_s < stalled_until_[peer]) return ReceiveState::kStalled;
  // Each arrival is a fresh Bernoulli trial: the per-peer receive sequence
  // number discriminates the draws, so a retry of the same message cannot
  // replay an earlier stall fate and wedge the pair forever. The sequence
  // is deterministic because the simulator's event order is.
  const std::uint64_t seq = receive_seq_[peer]++;
  // Crash is drawn before stall: a peer that would do both is simply dead.
  if (spec_.crash > 0.0 && u01(kCrashSalt, msg, peer, seq) < spec_.crash) {
    crashed_[peer] = true;
    ++stats_.crashes;
    crashes_counter().add(1);
    return ReceiveState::kCrashed;
  }
  if (spec_.stall > 0.0 && u01(kStallSalt, msg, peer, seq) < spec_.stall) {
    stalled_until_[peer] = now_s + spec_.stall_s;
    ++stats_.stalls;
    stalls_counter().add(1);
    return ReceiveState::kStalled;
  }
  return ReceiveState::kOk;
}

std::vector<std::uint32_t> FaultPlan::crashed_peers() const {
  std::vector<std::uint32_t> out;
  for (std::size_t p = 0; p < crashed_.size(); ++p) {
    if (crashed_[p]) out.push_back(static_cast<std::uint32_t>(p));
  }
  return out;
}

void FaultPlan::reset() {
  std::fill(stalled_until_.begin(), stalled_until_.end(), 0.0);
  std::fill(crashed_.begin(), crashed_.end(), false);
  std::fill(receive_seq_.begin(), receive_seq_.end(), 0);
  stats_ = Stats{};
}

std::uint32_t FaultPlan::failure_domain(std::uint32_t peer) const {
  const std::size_t domains = num_domains();
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(u01(kDomainSalt, peer, 0, 0) *
                                 static_cast<double>(domains)) %
      domains);
}

std::size_t FaultPlan::num_domains() const {
  const std::size_t width = std::max<std::size_t>(1, spec_.burst_width);
  return std::max<std::size_t>(1, crashed_.size() / width);
}

bool FaultPlan::mark_crashed(std::uint32_t peer, const char* counter) {
  SEL_EXPECTS(peer < crashed_.size());
  if (crashed_[peer]) return false;
  crashed_[peer] = true;
  obs::MetricsRegistry::global().counter(counter).add(1);
  return true;
}

void FaultPlan::apply_burst(const BurstEvent& burst) {
  bursts_counter().add(1);
  for (const auto p : burst.peers) {
    if (mark_crashed(p, "fault.burst_crashes")) ++stats_.burst_crashes;
  }
}

void FaultPlan::force_crash(std::uint32_t peer) {
  if (mark_crashed(peer, "fault.crashes")) ++stats_.crashes;
}

bool FaultPlan::byzantine(std::uint32_t peer) const {
  return spec_.byzantine > 0.0 &&
         u01(kByzSalt, peer, 0, 0) < spec_.byzantine;
}

AckFate FaultPlan::mailbox_ack(std::uint32_t peer, std::uint64_t msg,
                               std::uint32_t subscriber,
                               std::uint32_t attempt) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(subscriber) << 32) | attempt;
  AckFate fate;
  fate.acked = true;
  if (!byzantine(peer)) {
    fate.stored = true;
    return fate;
  }
  // Byzantine acceptors always ack but persist only half the time — the
  // false ack is what ⌈(k+1)/2⌉-quorums with ⌊(k−1)/2⌋ byzantine members
  // are sized to tolerate (at least one acked replica is honest).
  fate.stored = u01(kByzStoreSalt, peer, msg, key) < 0.5;
  if (!fate.stored) {
    ++stats_.false_acks;
    false_acks_counter().add(1);
  }
  fate.duplicated = u01(kByzDupSalt, peer, msg, key) < 0.5;
  if (fate.duplicated) {
    ++stats_.duplicate_acks;
    duplicate_acks_counter().add(1);
  }
  return fate;
}

bool FaultPlan::withholds_replay(std::uint32_t peer, std::uint64_t msg) {
  (void)msg;
  if (!byzantine(peer)) return false;
  ++stats_.withheld_replays;
  withheld_replays_counter().add(1);
  return true;
}

}  // namespace sel::fault
