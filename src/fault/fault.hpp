// Deterministic fault injection for the message plane.
//
// The engine's event-queue transfer path is perfect by default: every
// scheduled hop arrives. That never exercises the robustness machinery the
// paper claims (CMA-guided link recovery, Sec. III-F; multipath failover,
// Sec. V), so a FaultPlan injects the failure classes a deployment sees:
//
//   drop        the hop's message is lost in transit (no ack);
//   duplicate   the hop is delivered twice (retransmission race);
//   spike       the hop's transfer takes `spike_factor` times longer;
//   stall       the receiver stops responding for `stall_s` seconds
//               (process pause, NAT rebind) — arrivals are not acked;
//   crash       the receiver dies permanently mid-dissemination.
//
// Determinism contract: per-hop fates are a pure hash of
// (seed, message, from, to, attempt), so a run with the same seed draws the
// same faults regardless of how the event queue interleaves messages.
// Receiver state (stall windows, crash set) is updated at arrival events,
// which the EventQueue orders deterministically — two runs with the same
// seed are bit-identical end to end.
//
// Every injected fault is counted both locally (Stats) and in the global
// metrics registry under `fault.*`, so chaos RunReports record exactly what
// the plan did to the run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sel::fault {

/// Per-class fault probabilities and shape parameters. All probabilities
/// are per hop (drop/duplicate/spike) or per arrival (stall/crash).
struct FaultSpec {
  double drop = 0.0;           ///< P(hop lost in transit)
  double duplicate = 0.0;      ///< P(hop delivered twice)
  double spike = 0.0;          ///< P(latency spike on hop)
  double spike_factor = 10.0;  ///< transfer-time multiplier on spiked hops
  double stall = 0.0;          ///< P(receiver goes unresponsive at arrival)
  double stall_s = 30.0;       ///< unresponsive-window length, seconds
  double crash = 0.0;          ///< P(receiver crashes at arrival)

  /// True when any fault class has non-zero probability.
  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || spike > 0.0 || stall > 0.0 ||
           crash > 0.0;
  }

  /// Parses a comma-separated knob list, e.g.
  /// "drop=0.05,dup=0.01,spike=0.02,spike_factor=5,stall=0.01,stall_s=30,
  /// crash=0.001". Unknown keys warn (SELECT_LOG) and are skipped.
  [[nodiscard]] static FaultSpec parse(std::string_view spec);

  /// parse(SEL_FAULT); all-zero when the variable is unset.
  [[nodiscard]] static FaultSpec from_env();

  /// Round-trippable canonical form (only non-default fields).
  [[nodiscard]] std::string to_string() const;
};

/// Outcome of one hop transmission, drawn at send time.
struct HopFate {
  bool dropped = false;
  bool duplicated = false;
  double latency_factor = 1.0;  ///< >= 1; spike multiplier when spiked
};

/// Receiver condition at an arrival event.
enum class ReceiveState : std::uint8_t { kOk, kStalled, kCrashed };

class FaultPlan {
 public:
  /// `num_peers` sizes the per-peer stall/crash state.
  FaultPlan(FaultSpec spec, std::uint64_t seed, std::size_t num_peers);

  /// Send-time fate of attempt `attempt` of the hop `from -> to` carrying
  /// message `msg`. Pure in (seed, msg, from, to, attempt); counts injected
  /// faults as a side effect.
  [[nodiscard]] HopFate hop_fate(std::uint64_t msg, std::uint32_t from,
                                 std::uint32_t to, std::uint32_t attempt);

  /// Receiver-side draw at an arrival event: consults (and may extend) the
  /// peer's stall window and crash state. Call exactly once per arrival.
  [[nodiscard]] ReceiveState on_receive(std::uint32_t peer, std::uint64_t msg,
                                        double now_s);

  [[nodiscard]] bool crashed(std::uint32_t peer) const {
    return crashed_[peer];
  }
  [[nodiscard]] bool stalled(std::uint32_t peer, double now_s) const {
    return now_s < stalled_until_[peer];
  }
  /// Peers marked crashed so far (sorted ascending).
  [[nodiscard]] std::vector<std::uint32_t> crashed_peers() const;

  /// Clears the accumulated receiver state (stall windows, crash set,
  /// per-peer draw sequence) and the local stats, restoring the plan to its
  /// just-constructed draws. Long-lived plan holders (shard servers that
  /// outlive one engine run) call this between runs so their draws line up
  /// with a driver that constructed a fresh plan; global fault.* counters
  /// are untouched and keep accumulating across runs.
  void reset();

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  struct Stats {
    std::size_t drops = 0;
    std::size_t duplicates = 0;
    std::size_t spikes = 0;
    std::size_t stalls = 0;
    std::size_t crashes = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Uniform [0,1) from a hash of (seed, salt, a, b, c) — the determinism
  /// primitive behind every fault draw.
  [[nodiscard]] double u01(std::uint64_t salt, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const noexcept;

  FaultSpec spec_;
  std::uint64_t seed_;
  std::vector<double> stalled_until_;  ///< absolute sim time, per peer
  std::vector<bool> crashed_;
  /// Per-peer receive counter discriminating successive on_receive() draws.
  std::vector<std::uint64_t> receive_seq_;
  Stats stats_;
};

}  // namespace sel::fault
