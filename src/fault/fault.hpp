// Deterministic fault injection for the message plane.
//
// The engine's event-queue transfer path is perfect by default: every
// scheduled hop arrives. That never exercises the robustness machinery the
// paper claims (CMA-guided link recovery, Sec. III-F; multipath failover,
// Sec. V), so a FaultPlan injects the failure classes a deployment sees:
//
//   drop        the hop's message is lost in transit (no ack);
//   duplicate   the hop is delivered twice (retransmission race);
//   spike       the hop's transfer takes `spike_factor` times longer;
//   stall       the receiver stops responding for `stall_s` seconds
//               (process pause, NAT rebind) — arrivals are not acked;
//   crash       the receiver dies permanently mid-dissemination.
//
// Adversarial tier (DESIGN.md §17): on top of the per-hop classes, a plan
// can seed *correlated* and *byzantine* failures that the replicated-mailbox
// quorum must tolerate:
//
//   byzantine   a seeded fraction of peers act byzantine as mailbox
//               acceptors — they acknowledge store requests they never
//               persist (false acks), occasionally double-ack (duplicate
//               acks), and withhold queued messages at replay time;
//   bursts      correlated crash bursts: whole failure domains (seeded peer
//               groups of `burst_width`) die together at scheduled times,
//               publishers included — the correlated-failure scenario
//               availability-diverse replica placement exists to survive.
//
// Determinism contract: per-hop fates are a pure hash of
// (seed, message, from, to, attempt), so a run with the same seed draws the
// same faults regardless of how the event queue interleaves messages.
// Receiver state (stall windows, crash set) is updated at arrival events,
// which the EventQueue orders deterministically — two runs with the same
// seed are bit-identical end to end.
//
// Every injected fault is counted both locally (Stats) and in the global
// metrics registry under `fault.*`, so chaos RunReports record exactly what
// the plan did to the run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sel::fault {

/// Per-class fault probabilities and shape parameters. All probabilities
/// are per hop (drop/duplicate/spike) or per arrival (stall/crash).
struct FaultSpec {
  double drop = 0.0;           ///< P(hop lost in transit)
  double duplicate = 0.0;      ///< P(hop delivered twice)
  double spike = 0.0;          ///< P(latency spike on hop)
  double spike_factor = 10.0;  ///< transfer-time multiplier on spiked hops
  double stall = 0.0;          ///< P(receiver goes unresponsive at arrival)
  double stall_s = 30.0;       ///< unresponsive-window length, seconds
  double crash = 0.0;          ///< P(receiver crashes at arrival)
  // -- adversarial tier ---------------------------------------------------
  double byzantine = 0.0;  ///< fraction of peers byzantine as mailbox acceptors
  std::size_t bursts = 0;  ///< correlated crash bursts over the run
  std::size_t burst_width = 8;     ///< peers per failure domain
  double burst_spacing_s = 300.0;  ///< virtual seconds between bursts

  /// True when any fault class has non-zero probability.
  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || spike > 0.0 || stall > 0.0 ||
           crash > 0.0 || byzantine > 0.0 || bursts > 0;
  }

  /// Parses a comma-separated knob list, e.g.
  /// "drop=0.05,dup=0.01,spike=0.02,spike_factor=5,stall=0.01,stall_s=30,
  /// crash=0.001,byz=0.15,bursts=2,burst_width=16,burst_spacing_s=450".
  /// Unknown keys warn (SELECT_LOG) and are skipped.
  [[nodiscard]] static FaultSpec parse(std::string_view spec);

  /// parse(SEL_FAULT); all-zero when the variable is unset.
  [[nodiscard]] static FaultSpec from_env();

  /// Round-trippable canonical form (only non-default fields).
  [[nodiscard]] std::string to_string() const;
};

/// Outcome of one hop transmission, drawn at send time.
struct HopFate {
  bool dropped = false;
  bool duplicated = false;
  double latency_factor = 1.0;  ///< >= 1; spike multiplier when spiked
};

/// Receiver condition at an arrival event.
enum class ReceiveState : std::uint8_t { kOk, kStalled, kCrashed };

/// One correlated crash burst: every peer of failure domain `domain` dies
/// together at `at_s`. The schedule is computed at plan construction (pure
/// in seed + spec), so two same-seed runs burst identically.
struct BurstEvent {
  double at_s = 0.0;
  std::uint32_t domain = 0;
  std::vector<std::uint32_t> peers;  ///< ascending
};

/// Outcome of one mailbox store request at a (possibly byzantine) acceptor,
/// drawn when the request arrives at a live peer. Honest acceptors ack and
/// persist; byzantine ones always ack, sometimes twice, and persist only
/// half the time — and what they do persist they withhold at replay.
struct AckFate {
  bool acked = false;       ///< an acknowledgement came back
  bool stored = false;      ///< the acceptor actually persisted the copy
  bool duplicated = false;  ///< a second, identical ack was emitted
};

class FaultPlan {
 public:
  /// `num_peers` sizes the per-peer stall/crash state.
  FaultPlan(FaultSpec spec, std::uint64_t seed, std::size_t num_peers);

  /// Send-time fate of attempt `attempt` of the hop `from -> to` carrying
  /// message `msg`. Pure in (seed, msg, from, to, attempt); counts injected
  /// faults as a side effect.
  [[nodiscard]] HopFate hop_fate(std::uint64_t msg, std::uint32_t from,
                                 std::uint32_t to, std::uint32_t attempt);

  /// Receiver-side draw at an arrival event: consults (and may extend) the
  /// peer's stall window and crash state. Call exactly once per arrival.
  [[nodiscard]] ReceiveState on_receive(std::uint32_t peer, std::uint64_t msg,
                                        double now_s);

  [[nodiscard]] bool crashed(std::uint32_t peer) const {
    return crashed_[peer];
  }
  [[nodiscard]] bool stalled(std::uint32_t peer, double now_s) const {
    return now_s < stalled_until_[peer];
  }
  /// Peers marked crashed so far (sorted ascending).
  [[nodiscard]] std::vector<std::uint32_t> crashed_peers() const;

  // -- adversarial tier -----------------------------------------------------

  /// The peer's correlated-failure domain: a pure hash of (seed, peer) into
  /// num_domains() buckets. Mailbox placement uses this to avoid co-locating
  /// replicas with peers fated to die together; apply_burst() kills a whole
  /// domain at once.
  [[nodiscard]] std::uint32_t failure_domain(std::uint32_t peer) const;
  /// Number of failure domains: max(1, num_peers / spec.burst_width).
  [[nodiscard]] std::size_t num_domains() const;
  /// The burst schedule, computed at construction: spec.bursts events at
  /// (i+1) * spec.burst_spacing_s, each naming a hashed domain and its
  /// member peers. Empty when spec.bursts == 0.
  [[nodiscard]] const std::vector<BurstEvent>& bursts() const noexcept {
    return bursts_;
  }
  /// Marks every member of the burst's domain crashed (counts each newly
  /// crashed peer). Drivers call this when virtual time passes burst.at_s.
  void apply_burst(const BurstEvent& burst);
  /// Driver-forced crash (e.g. the publisher mid-dissemination). Counts the
  /// crash like an injected one.
  void force_crash(std::uint32_t peer);
  /// True when the peer is fated byzantine as a mailbox acceptor — a pure
  /// hash draw of (seed, peer) against spec.byzantine.
  [[nodiscard]] bool byzantine(std::uint32_t peer) const;
  /// Mailbox store-request fate at `peer` for (msg, subscriber, attempt).
  /// Honest peers ack and store; byzantine ones always ack, store only half
  /// the time (false acks), and double-ack half the time. Pure in
  /// (seed, peer, msg, subscriber, attempt); counts byzantine fates.
  [[nodiscard]] AckFate mailbox_ack(std::uint32_t peer, std::uint64_t msg,
                                    std::uint32_t subscriber,
                                    std::uint32_t attempt);
  /// True when a byzantine acceptor withholds its stored copy of `msg` at
  /// replay time (always, for byzantine peers). Counts the withholding.
  [[nodiscard]] bool withholds_replay(std::uint32_t peer, std::uint64_t msg);

  /// Clears the accumulated receiver state (stall windows, crash set,
  /// per-peer draw sequence) and the local stats, restoring the plan to its
  /// just-constructed draws. Long-lived plan holders (shard servers that
  /// outlive one engine run) call this between runs so their draws line up
  /// with a driver that constructed a fresh plan; global fault.* counters
  /// are untouched and keep accumulating across runs.
  void reset();

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  struct Stats {
    std::size_t drops = 0;
    std::size_t duplicates = 0;
    std::size_t spikes = 0;
    std::size_t stalls = 0;
    std::size_t crashes = 0;
    // adversarial tier
    std::size_t burst_crashes = 0;
    std::size_t false_acks = 0;
    std::size_t duplicate_acks = 0;
    std::size_t withheld_replays = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Uniform [0,1) from a hash of (seed, salt, a, b, c) — the determinism
  /// primitive behind every fault draw.
  [[nodiscard]] double u01(std::uint64_t salt, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const noexcept;

  /// Marks `peer` crashed if not already, bumping local + global counters.
  /// `counter` names the global metric charged ("fault.crashes" or
  /// "fault.burst_crashes"); returns true when the peer newly crashed.
  bool mark_crashed(std::uint32_t peer, const char* counter);

  FaultSpec spec_;
  std::uint64_t seed_;
  std::vector<double> stalled_until_;  ///< absolute sim time, per peer
  std::vector<bool> crashed_;
  /// Per-peer receive counter discriminating successive on_receive() draws.
  std::vector<std::uint64_t> receive_seq_;
  std::vector<BurstEvent> bursts_;  ///< fixed at construction; reset() keeps
  Stats stats_;
};

}  // namespace sel::fault
