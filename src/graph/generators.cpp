#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/flat_set.hpp"

namespace sel::graph {

SocialGraph erdos_renyi(std::size_t n, double p, std::uint64_t seed) {
  SEL_EXPECTS(p >= 0.0 && p <= 1.0);
  GraphBuilder builder(n);
  if (n < 2 || p <= 0.0) return builder.build();
  Rng rng(seed);
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
    }
    return builder.build();
  }
  // Geometric skipping over the n*(n-1)/2 potential edges (Batagelj–Brandes).
  const double log1mp = std::log(1.0 - p);
  std::size_t v = 1;
  std::ptrdiff_t w = -1;
  while (v < n) {
    const double r = 1.0 - rng.uniform();  // (0, 1]
    w += 1 + static_cast<std::ptrdiff_t>(std::floor(std::log(r) / log1mp));
    while (w >= static_cast<std::ptrdiff_t>(v) && v < n) {
      w -= static_cast<std::ptrdiff_t>(v);
      ++v;
    }
    if (v < n) {
      builder.add_edge(static_cast<NodeId>(w), static_cast<NodeId>(v));
    }
  }
  return builder.build();
}

SocialGraph watts_strogatz(std::size_t n, std::size_t k, double beta,
                           std::uint64_t seed) {
  SEL_EXPECTS(k % 2 == 0);
  SEL_EXPECTS(k < n);
  SEL_EXPECTS(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  // has_edge bookkeeping so rewiring avoids duplicates. FlatSet: the final
  // per-node edge emission below iterates these sets, and that order must
  // not depend on hash-table internals (same seed ⇒ same graph bytes).
  std::vector<FlatSet<NodeId>> adj(n);
  auto connect = [&adj](NodeId u, NodeId v) {
    adj[u].insert(v);
    adj[v].insert(u);
  };
  auto disconnect = [&adj](NodeId u, NodeId v) {
    adj[u].erase(v);
    adj[v].erase(u);
  };
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      connect(u, static_cast<NodeId>((u + j) % n));
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      if (!adj[u].contains(v)) continue;  // already rewired away
      if (!rng.chance(beta)) continue;
      // Rewire (u, v) to (u, w) for a uniform w avoiding self-loop/dup.
      NodeId w = u;
      for (int attempts = 0; attempts < 64; ++attempts) {
        w = static_cast<NodeId>(rng.below(n));
        if (w != u && !adj[u].contains(w)) break;
        w = u;
      }
      if (w == u) continue;  // node saturated; keep original edge
      disconnect(u, v);
      connect(u, w);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : adj[u]) {
      if (u < v) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

SocialGraph barabasi_albert(std::size_t n, std::size_t m, std::uint64_t seed) {
  return holme_kim(n, m, 0.0, seed);
}

SocialGraph holme_kim(std::size_t n, std::size_t m, double triad_p,
                      std::uint64_t seed) {
  SEL_EXPECTS(m >= 1);
  SEL_EXPECTS(n > m);
  SEL_EXPECTS(triad_p >= 0.0 && triad_p <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  // repeated_nodes holds each endpoint once per incident edge, so a uniform
  // draw from it is a degree-proportional draw (standard BA trick).
  std::vector<NodeId> repeated_nodes;
  repeated_nodes.reserve(2 * n * m);
  std::vector<std::vector<NodeId>> adj(n);
  auto link = [&](NodeId u, NodeId v) {
    builder.add_edge(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    repeated_nodes.push_back(u);
    repeated_nodes.push_back(v);
  };
  // Seed clique over the first m+1 nodes so preferential attachment has
  // targets with nonzero degree.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) link(u, v);
  }
  // FlatSet: the link loop below iterates the drawn target set, and its
  // order feeds back into repeated_nodes (hence every later draw) — it must
  // be a function of the seed alone, not of hash-table iteration order.
  FlatSet<NodeId> targets;
  for (NodeId u = static_cast<NodeId>(m + 1); u < n; ++u) {
    targets.clear();
    NodeId last_target = kInvalidNode;
    while (targets.size() < m) {
      NodeId candidate;
      const bool try_triad =
          last_target != kInvalidNode && rng.chance(triad_p);
      if (try_triad) {
        // Triad closure: connect to a random neighbour of the last target.
        const auto& nbrs = adj[last_target];
        candidate = nbrs[rng.below(nbrs.size())];
      } else {
        candidate = repeated_nodes[rng.below(repeated_nodes.size())];
      }
      if (candidate == u || targets.contains(candidate)) {
        // Fall back to preferential attachment on a bad triad draw so the
        // loop always terminates.
        last_target = kInvalidNode;
        continue;
      }
      targets.insert(candidate);
      last_target = candidate;
    }
    for (const NodeId t : targets) link(u, t);
  }
  return builder.build();
}

SocialGraph degree_preserving_rewire(const SocialGraph& g,
                                     double swaps_per_edge,
                                     std::uint64_t seed) {
  SEL_EXPECTS(swaps_per_edge >= 0.0);
  // Materialize the edge list, then repeatedly pick two edges (a,b), (c,d)
  // and swap endpoints to (a,d), (c,b) when that creates neither self-loops
  // nor duplicates.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  if (edges.size() < 2) {
    GraphBuilder builder(g.num_nodes());
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
    return builder.build();
  }
  std::unordered_set<std::uint64_t> present;
  present.reserve(edges.size() * 2);
  auto key = [](NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
           std::max(a, b);
  };
  for (const auto& [u, v] : edges) present.insert(key(u, v));

  Rng rng(seed);
  const auto target = static_cast<std::size_t>(
      swaps_per_edge * static_cast<double>(edges.size()));
  std::size_t done = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = target * 20 + 100;
  while (done < target && attempts < max_attempts) {
    ++attempts;
    const std::size_t i = rng.below(edges.size());
    const std::size_t j = rng.below(edges.size());
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    // Randomize orientation so both swap variants are reachable.
    if (rng.chance(0.5)) std::swap(a, b);
    if (rng.chance(0.5)) std::swap(c, d);
    if (a == d || c == b || a == c || b == d) continue;
    if (present.contains(key(a, d)) || present.contains(key(c, b))) continue;
    present.erase(key(edges[i].first, edges[i].second));
    present.erase(key(edges[j].first, edges[j].second));
    edges[i] = {std::min(a, d), std::max(a, d)};
    edges[j] = {std::min(c, b), std::max(c, b)};
    present.insert(key(a, d));
    present.insert(key(c, b));
    ++done;
  }
  GraphBuilder builder(g.num_nodes());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

}  // namespace sel::graph
