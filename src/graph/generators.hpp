// Synthetic social-graph generators.
//
// The paper evaluates on four SNAP datasets (Facebook, Twitter, Slashdot,
// Google Plus). Those files are not available offline, so we synthesize
// graphs with matching structure: heavy-tailed degree distributions and high
// clustering, via the Holme–Kim model (Barabási–Albert preferential
// attachment with triad-closure steps). Plain BA, Watts–Strogatz and
// Erdős–Rényi generators are provided for ablations and tests.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/social_graph.hpp"

namespace sel::graph {

/// Erdős–Rényi G(n, p): each pair independently connected with probability p.
/// O(n + m) expected time via geometric edge skipping.
[[nodiscard]] SocialGraph erdos_renyi(std::size_t n, double p,
                                      std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbours per side... k
/// must be even; each edge rewired with probability beta.
[[nodiscard]] SocialGraph watts_strogatz(std::size_t n, std::size_t k,
                                         double beta, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new node attaches to m
/// existing nodes chosen proportionally to degree.
[[nodiscard]] SocialGraph barabasi_albert(std::size_t n, std::size_t m,
                                          std::uint64_t seed);

/// Holme–Kim powerlaw-cluster graph: BA attachment where each of the m links
/// is followed, with probability triad_p, by a triad-closure link to a random
/// neighbour of the just-linked node. Produces power-law degrees AND high
/// clustering — the structure the paper's datasets share.
[[nodiscard]] SocialGraph holme_kim(std::size_t n, std::size_t m,
                                    double triad_p, std::uint64_t seed);

/// Degree-preserving randomization (configuration-model null model): applies
/// `swaps_per_edge * |E|` double-edge swaps, destroying clustering and
/// community structure while keeping every node's degree exactly. Used by
/// the structure-vs-degree ablation: if SELECT's wins survived rewiring they
/// would come from the degree sequence, not the social structure.
[[nodiscard]] SocialGraph degree_preserving_rewire(const SocialGraph& g,
                                                   double swaps_per_edge,
                                                   std::uint64_t seed);

}  // namespace sel::graph
