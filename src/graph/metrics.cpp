#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace sel::graph {

std::vector<std::size_t> degree_sequence(const SocialGraph& g) {
  std::vector<std::size_t> degrees(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) degrees[u] = g.degree(u);
  return degrees;
}

std::vector<std::size_t> degree_distribution(const SocialGraph& g) {
  std::vector<std::size_t> counts(g.max_degree() + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++counts[g.degree(u)];
  return counts;
}

double clustering_coefficient(const SocialGraph& g, std::size_t samples,
                              std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0.0;
  Rng rng(seed);
  std::vector<NodeId> nodes;
  if (samples >= n) {
    nodes.resize(n);
    std::iota(nodes.begin(), nodes.end(), NodeId{0});
  } else {
    nodes.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.below(n)));
    }
  }
  double total = 0.0;
  for (const NodeId u : nodes) {
    const auto nbrs = g.neighbors(u);
    const std::size_t d = nbrs.size();
    if (d < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    total += 2.0 * static_cast<double>(closed) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return total / static_cast<double>(nodes.size());
}

namespace {

/// BFS marking component ids; returns component sizes.
std::vector<std::size_t> component_sizes(const SocialGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> sizes;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    std::size_t size = 0;
    visited[start] = true;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      ++size;
      for (const NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          frontier.push(v);
        }
      }
    }
    sizes.push_back(size);
  }
  return sizes;
}

}  // namespace

std::size_t connected_components(const SocialGraph& g) {
  return component_sizes(g).size();
}

std::size_t largest_component_size(const SocialGraph& g) {
  const auto sizes = component_sizes(g);
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

double powerlaw_alpha(const SocialGraph& g, std::size_t d_min) {
  // Discrete MLE: alpha ≈ 1 + n / sum(ln(d_i / (d_min - 0.5))).
  double log_sum = 0.0;
  std::size_t n = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::size_t d = g.degree(u);
    if (d < d_min) continue;
    log_sum += std::log(static_cast<double>(d) /
                        (static_cast<double>(d_min) - 0.5));
    ++n;
  }
  if (n < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace sel::graph
