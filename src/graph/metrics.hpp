// Structural graph metrics used to validate the synthetic datasets against
// Table II and to bucket peers by social degree (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/social_graph.hpp"

namespace sel::graph {

/// Degree of every node.
[[nodiscard]] std::vector<std::size_t> degree_sequence(const SocialGraph& g);

/// counts[d] = number of nodes with degree d.
[[nodiscard]] std::vector<std::size_t> degree_distribution(const SocialGraph& g);

/// Average local clustering coefficient, estimated over `samples` random
/// nodes (exact when samples >= num_nodes). Nodes with degree < 2 count as 0.
[[nodiscard]] double clustering_coefficient(const SocialGraph& g,
                                            std::size_t samples,
                                            std::uint64_t seed);

/// Number of connected components (BFS).
[[nodiscard]] std::size_t connected_components(const SocialGraph& g);

/// Size of the largest connected component.
[[nodiscard]] std::size_t largest_component_size(const SocialGraph& g);

/// Fits the power-law exponent alpha of the degree distribution via the
/// discrete MLE (Clauset et al.) over degrees >= d_min. Returns 0 when there
/// are fewer than 10 qualifying nodes.
[[nodiscard]] double powerlaw_alpha(const SocialGraph& g, std::size_t d_min = 5);

}  // namespace sel::graph
