#include "graph/profiles.hpp"

#include "graph/generators.hpp"

namespace sel::graph {

// gen_m is chosen so the generated average degree (~2m) tracks Table II's
// average degree; gen_triad_p tunes clustering: friendship graphs (Facebook)
// are highly clustered, follower graphs (Twitter) less so.
const std::array<DatasetProfile, 4>& all_profiles() {
  static const std::array<DatasetProfile, 4> profiles = {{
      {"facebook", 63'731, 817'090, 25.642, 13, 0.85},
      {"twitter", 3'990'418, 294'865'207, 73.89, 37, 0.55},
      {"slashdot", 82'168, 948'463, 11.543, 6, 0.40},
      {"gplus", 107'614, 13'673'453, 127.0, 63, 0.60},
  }};
  return profiles;
}

const DatasetProfile& profile_by_name(std::string_view name) {
  for (const auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  SEL_ASSERT(false && "unknown dataset profile");
  return all_profiles()[0];  // unreachable
}

SocialGraph make_dataset_graph(const DatasetProfile& profile, std::size_t n,
                               std::uint64_t seed) {
  // Clamp m so tiny test graphs stay valid (holme_kim requires n > m).
  const std::size_t m = std::min(profile.gen_m, n > 2 ? (n - 1) / 2 : 1);
  return holme_kim(n, std::max<std::size_t>(m, 1), profile.gen_triad_p, seed);
}

}  // namespace sel::graph
