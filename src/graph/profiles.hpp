// Dataset profiles mirroring the paper's Table II. Each profile records the
// published statistics of the real dataset and the generator parameters that
// reproduce its structure (average degree, clustering) at arbitrary scale.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "graph/social_graph.hpp"

namespace sel::graph {

struct DatasetProfile {
  std::string_view name;
  /// Published size (Table II) — for reporting, not for generation.
  std::size_t paper_users;
  std::size_t paper_connections;
  double paper_avg_degree;
  /// Holme–Kim parameters that reproduce the structure at any scale:
  /// each node attaches with `m` links; triad_p controls clustering.
  std::size_t gen_m;
  double gen_triad_p;
};

/// The four datasets of Table II.
[[nodiscard]] const std::array<DatasetProfile, 4>& all_profiles();

/// Profile by name ("facebook", "twitter", "slashdot", "gplus").
/// Aborts on unknown names (programming error in a harness).
[[nodiscard]] const DatasetProfile& profile_by_name(std::string_view name);

/// Generates a synthetic graph with the profile's structure at `n` users.
[[nodiscard]] SocialGraph make_dataset_graph(const DatasetProfile& profile,
                                             std::size_t n,
                                             std::uint64_t seed);

}  // namespace sel::graph
