#include "graph/snap_loader.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace sel::graph {

namespace {

/// Parses one whitespace-separated unsigned integer starting at pos;
/// advances pos past it. Returns false when no digits are found.
bool parse_uint(std::string_view line, std::size_t& pos, std::uint64_t& out) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr == begin) return false;
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

}  // namespace

std::optional<SnapLoadResult> parse_snap_edge_list(std::string_view text) {
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t parsed = 0;
  std::size_t skipped = 0;

  auto intern = [&remap](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.try_emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    const std::size_t line_end = text.find('\n', line_start);
    const std::string_view line =
        text.substr(line_start,
                    (line_end == std::string_view::npos ? text.size()
                                                        : line_end) -
                        line_start);
    line_start = line_end == std::string_view::npos ? text.size() + 1
                                                    : line_end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t pos = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!parse_uint(line, pos, a) || !parse_uint(line, pos, b)) {
      ++skipped;
      continue;
    }
    ++parsed;
    if (a == b) continue;
    edges.emplace_back(intern(a), intern(b));
  }

  if (edges.empty()) return std::nullopt;
  GraphBuilder builder(remap.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return SnapLoadResult{builder.build(), parsed, skipped};
}

std::optional<SnapLoadResult> load_snap_edge_list(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_snap_edge_list(buffer.str());
}

}  // namespace sel::graph
