// Loader for SNAP-style edge lists ("u<TAB>v" or "u v" per line, '#'
// comments). If the real Facebook/Twitter/Slashdot/GooglePlus files are
// available they can be dropped in and used instead of the synthetic
// profiles; node ids are remapped to a dense range.
#pragma once

#include <optional>
#include <string>

#include "graph/social_graph.hpp"

namespace sel::graph {

struct SnapLoadResult {
  SocialGraph graph;
  std::size_t lines_parsed = 0;
  std::size_t lines_skipped = 0;
};

/// Parses the file at `path`. Directed input is symmetrized (the paper's
/// subscriber set is the publisher's friend set, i.e. an undirected
/// relationship). Returns nullopt when the file cannot be opened or contains
/// no valid edges.
[[nodiscard]] std::optional<SnapLoadResult> load_snap_edge_list(
    const std::string& path);

/// Parses edge-list text from memory (testable core of the loader).
[[nodiscard]] std::optional<SnapLoadResult> parse_snap_edge_list(
    std::string_view text);

}  // namespace sel::graph
