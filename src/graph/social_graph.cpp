#include "graph/social_graph.hpp"

#include <algorithm>

namespace sel::graph {

bool SocialGraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t SocialGraph::common_neighbors(NodeId u, NodeId v) const {
  const auto a = neighbors(u);
  const auto b = neighbors(v);
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double SocialGraph::social_strength(NodeId u, NodeId v) const {
  const std::size_t du = degree(u);
  if (du == 0) return 0.0;
  return static_cast<double>(common_neighbors(u, v)) /
         static_cast<double>(du);
}

std::size_t SocialGraph::max_degree() const noexcept {
  std::size_t best = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) best = std::max(best, degree(u));
  return best;
}

SocialGraph GraphBuilder::build() const {
  // Normalize to (min, max) pairs, sort, unique, then fill CSR both ways.
  std::vector<std::pair<NodeId, NodeId>> normalized;
  normalized.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    normalized.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());

  SocialGraph g;
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : normalized) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(normalized.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : normalized) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Adjacency lists are already sorted for the lower endpoint ordering only;
  // sort each list to guarantee the invariant.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[u + 1]));
  }
  return g;
}

}  // namespace sel::graph
