// Compact immutable social graph.
//
// The paper's pub/sub model (Sec. II-B) is a social graph G = (V, E) where a
// publisher's subscribers are exactly its social friends. We store the graph
// in CSR form with sorted adjacency lists, which makes common-neighbour
// counting (the social-strength numerator, Eq. 2) a linear merge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "obs/memory.hpp"

namespace sel::graph {

/// Index of a social user; dense in [0, num_nodes).
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Undirected simple graph in CSR form. Build with GraphBuilder.
class SocialGraph {
 public:
  SocialGraph() = default;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    SEL_EXPECTS(u < num_nodes());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Sorted neighbour list of u.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    SEL_EXPECTS(u < num_nodes());
    return std::span<const NodeId>(adjacency_.data() + offsets_[u],
                                   offsets_[u + 1] - offsets_[u]);
  }

  /// O(log degree) membership test on the sorted adjacency list.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// |N(u) ∩ N(v)| via linear merge of the sorted lists.
  [[nodiscard]] std::size_t common_neighbors(NodeId u, NodeId v) const;

  /// Social strength s(u,v) = |C_u ∩ C_v| / |C_u| (paper Eq. 2). Note the
  /// asymmetry: normalized by u's own friend count. Zero when u has no
  /// friends.
  [[nodiscard]] double social_strength(NodeId u, NodeId v) const;

  [[nodiscard]] double average_degree() const noexcept {
    const std::size_t n = num_nodes();
    return n == 0 ? 0.0
                  : 2.0 * static_cast<double>(num_edges()) /
                        static_cast<double>(n);
  }

  [[nodiscard]] std::size_t max_degree() const noexcept;

 private:
  friend class GraphBuilder;

  // CSR storage is the process's largest long-lived allocation at scale;
  // attributed to `mem.graph` (obs/memory.hpp). Exposed only through spans,
  // so the allocator is invisible to callers.
  obs::AccountedVector<std::size_t, obs::Subsystem::kGraph>
      offsets_;  // size num_nodes + 1
  obs::AccountedVector<NodeId, obs::Subsystem::kGraph>
      adjacency_;  // concatenated sorted neighbour lists
};

/// Accumulates undirected edges, deduplicates, drops self-loops, and
/// finalizes into a CSR SocialGraph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Records the undirected edge {u, v}; self-loops and duplicates are
  /// removed at finalize().
  void add_edge(NodeId u, NodeId v) {
    SEL_EXPECTS(u < num_nodes_ && v < num_nodes_);
    edges_.emplace_back(u, v);
  }

  [[nodiscard]] std::size_t pending_edges() const noexcept {
    return edges_.size();
  }

  /// Builds the CSR graph. The builder may be reused afterwards (edges kept).
  [[nodiscard]] SocialGraph build() const;

 private:
  std::size_t num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace sel::graph
