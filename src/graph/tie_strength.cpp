#include "graph/tie_strength.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sel::graph {

TieStrengthIndex::TieStrengthIndex(const SocialGraph& g)
    : g_(&g), rows_(g.num_nodes()) {}

std::size_t TieStrengthIndex::common_neighbors(NodeId u, NodeId v) {
  SEL_EXPECTS(u < g_->num_nodes() && v < g_->num_nodes());
  if (u == v) {
    // N(u) ∩ N(u) = N(u); no merge, and nothing worth caching.
    ++stats_.uncacheable;
    return g_->degree(u);
  }
  // The numerator is symmetric; canonicalize to the lower endpoint so both
  // query directions land on the same slot.
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);
  const auto nbrs = g_->neighbors(a);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
  if (it == nbrs.end() || *it != b) {
    // Non-edge: no slot. Merge directly — the repeat-query savings all come
    // from edges (the gossip loop only pairs friends).
    ++stats_.uncacheable;
    return g_->common_neighbors(u, v);
  }
  const auto slot = static_cast<std::size_t>(it - nbrs.begin());
  Row& row = rows_[a];
  if (row.epoch.empty()) {
    row.count.assign(nbrs.size(), 0);
    row.epoch.assign(nbrs.size(), 0);
  }
  if (row.epoch[slot] == epoch_) {
    ++stats_.hits;
    return row.count[slot];
  }
  ++stats_.misses;
  const std::size_t common = g_->common_neighbors(a, b);
  row.count[slot] = static_cast<std::uint32_t>(common);
  row.epoch[slot] = epoch_;
  return common;
}

double TieStrengthIndex::social_strength(NodeId u, NodeId v) {
  const std::size_t deg = g_->degree(u);
  if (deg == 0) return 0.0;
  return static_cast<double>(common_neighbors(u, v)) /
         static_cast<double>(deg);
}

void TieStrengthIndex::invalidate() {
  if (++epoch_ == 0) {
    // 32-bit epoch wrapped (needs 2^32 invalidations): reset every stamp so
    // no stale slot can collide with a recycled epoch value.
    for (Row& row : rows_) {
      std::fill(row.epoch.begin(), row.epoch.end(), 0u);
    }
    epoch_ = 1;
  }
}

void TieStrengthIndex::invalidate_node(NodeId u) {
  SEL_EXPECTS(u < g_->num_nodes());
  clear_row(u);
  for (const NodeId w : g_->neighbors(u)) clear_row(w);
}

void TieStrengthIndex::clear_row(NodeId a) {
  std::fill(rows_[a].epoch.begin(), rows_[a].epoch.end(), 0u);
}

}  // namespace sel::graph
