// Memoized tie-strength queries over an immutable SocialGraph.
//
// The gossip loop (Alg. 3-4) computes |N(u) ∩ N(v)| for the same friend
// pairs round after round: each peer re-samples its friends every round and
// both endpoints of a pair ask for the same symmetric numerator. On a CSR
// graph every query is a fresh linear merge of two adjacency lists — cheap
// once, wasteful a hundred times. This index caches the merge result per
// *edge*: one slot per (node, friend-index) pair, stored on the lower
// endpoint so both query directions share it. Non-edges (e.g. ring
// successors probed by the coherence analysis) fall through to a direct
// merge each call — they carry no slot, and the protocol never repeats them
// the way it repeats friend pairs.
//
// Rows are allocated lazily (first query touching a node) and validity is
// an epoch stamp per slot, so invalidate() is O(1) and invalidate_node()
// touches only the affected rows. The index is NOT thread-safe: queries
// mutate the cache. Use one instance per thread or guard externally.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.hpp"

namespace sel::graph {

class TieStrengthIndex {
 public:
  /// Deterministic query accounting (independent of SEL_OBS): a query is a
  /// hit, or a miss (cold slot, merge + fill), or uncacheable (non-edge /
  /// self pair). `merges` counts actual adjacency-list merges executed —
  /// the work the cache exists to avoid; misses + uncacheable == merges.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t uncacheable = 0;
    [[nodiscard]] std::uint64_t queries() const noexcept {
      return hits + misses + uncacheable;
    }
    [[nodiscard]] std::uint64_t merges() const noexcept {
      return misses + uncacheable;
    }
  };

  /// The graph must outlive the index. The graph is immutable, so cached
  /// counts only go stale if *callers* decide their epoch is over (e.g. a
  /// harness swapping workload semantics) — see invalidate().
  explicit TieStrengthIndex(const SocialGraph& g);

  /// |N(u) ∩ N(v)|, memoized when {u, v} is an edge. u == v returns
  /// degree(u) without a merge (N(u) ∩ N(u) = N(u)).
  [[nodiscard]] std::size_t common_neighbors(NodeId u, NodeId v);

  /// Social strength s(u,v) = |N(u) ∩ N(v)| / |N(u)| (paper Eq. 2 — note
  /// the asymmetry: normalized by u's side). Zero when u has no friends.
  [[nodiscard]] double social_strength(NodeId u, NodeId v);

  /// Drops every cached count at once (epoch bump, O(1)).
  void invalidate();

  /// Drops every cached pair whose count could involve u: pairs with u as
  /// an endpoint and pairs of two of u's neighbours (u is a candidate
  /// common neighbour of exactly those). Clears row u and the rows of all
  /// w ∈ N(u) — a superset of the affected pairs, never less.
  void invalidate_node(NodeId u);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SocialGraph& graph() const noexcept { return *g_; }

 private:
  /// Cache row of node a: slot i memoizes common_neighbors(a, N(a)[i]).
  /// Vectors stay empty until the row is first written (lazily sized to
  /// degree(a)); a slot is valid iff its stamp equals the current epoch.
  struct Row {
    std::vector<std::uint32_t> count;
    std::vector<std::uint32_t> epoch;
  };

  void clear_row(NodeId a);

  const SocialGraph* g_;
  std::vector<Row> rows_;
  std::uint32_t epoch_ = 1;  ///< 0 is reserved: "slot never written"
  Stats stats_;
};

}  // namespace sel::graph
