#include "lsh/lsh.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sel::lsh {

BitSamplingHasher::BitSamplingHasher(std::size_t dim,
                                     std::size_t bits_per_hash,
                                     std::uint64_t seed)
    : dim_(dim) {
  SEL_EXPECTS(bits_per_hash > 0 && bits_per_hash <= 64);
  Rng rng(seed);
  positions_.reserve(bits_per_hash);
  for (std::size_t i = 0; i < bits_per_hash; ++i) {
    positions_.push_back(
        dim_ == 0 ? 0 : static_cast<std::uint32_t>(rng.below(dim_)));
  }
}

std::uint64_t BitSamplingHasher::hash(const DynamicBitset& bitmap) const {
  std::uint64_t h = 0;
  for (const std::uint32_t pos : positions_) {
    h <<= 1;
    if (pos < bitmap.size() && bitmap.test(pos)) h |= 1;
  }
  return h;
}

LshIndex::LshIndex(std::size_t dim, std::size_t buckets,
                   std::size_t bits_per_hash, std::uint64_t seed)
    : hasher_(dim, bits_per_hash, seed), buckets_(std::max<std::size_t>(buckets, 1)) {}

std::size_t LshIndex::bucket_of(const DynamicBitset& bitmap) const {
  // splitmix64 spreads the (few-bit) hash across buckets uniformly.
  return static_cast<std::size_t>(splitmix64(hasher_.hash(bitmap)) %
                                  buckets_.size());
}

std::size_t LshIndex::bucket_of_peer(std::uint32_t peer) const {
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (const auto& e : buckets_[b]) {
      if (e.peer == peer) return b;
    }
  }
  return static_cast<std::size_t>(-1);
}

void LshIndex::insert(std::uint32_t peer, const DynamicBitset& bitmap) {
  erase(peer);
  const std::size_t b = bucket_of(bitmap);
  buckets_[b].push_back(Entry{peer, bitmap});
  ++count_;
}

void LshIndex::erase(std::uint32_t peer) {
  for (auto& bucket : buckets_) {
    const auto it = std::find_if(bucket.begin(), bucket.end(),
                                 [peer](const Entry& e) { return e.peer == peer; });
    if (it != bucket.end()) {
      bucket.erase(it);
      --count_;
      return;
    }
  }
}

const std::vector<LshIndex::Entry>& LshIndex::bucket(std::size_t b) const {
  SEL_EXPECTS(b < buckets_.size());
  return buckets_[b];
}

std::vector<std::uint32_t> LshIndex::same_bucket_peers(
    std::uint32_t peer) const {
  std::vector<std::uint32_t> out;
  const std::size_t b = bucket_of_peer(peer);
  if (b == static_cast<std::size_t>(-1)) return out;
  for (const auto& e : buckets_[b]) {
    if (e.peer != peer) out.push_back(e.peer);
  }
  return out;
}

void LshIndex::clear() {
  for (auto& b : buckets_) b.clear();
  count_ = 0;
}

}  // namespace sel::lsh
