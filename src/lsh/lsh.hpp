// Locality Sensitive Hashing over friendship bitmaps (paper Sec. III-D,
// citing Gionis/Indyk/Motwani [14]).
//
// Peers index the connectivity bitmaps of their social neighbourhood into
// |H| = K buckets; peers with similar bitmaps (connected to the same part of
// the neighbourhood) collide, and only one peer per bucket is kept as a
// long-range link — covering K distinct "zones" with K links.
//
// The family used is bit sampling for Hamming distance: a hash is the
// concatenation of `bits_per_hash` sampled bit positions, so
// P[h(a) = h(b)] = (1 - H(a,b)/dim)^bits_per_hash.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.hpp"
#include "common/rng.hpp"

namespace sel::lsh {

/// Bit-sampling hash function family for Hamming space.
class BitSamplingHasher {
 public:
  /// Samples `bits_per_hash` positions (with replacement) from [0, dim).
  BitSamplingHasher(std::size_t dim, std::size_t bits_per_hash,
                    std::uint64_t seed);

  /// Hash of a bitmap: the sampled bits packed into an integer.
  /// bitmap.size() must be >= dim used at construction? — positions beyond
  /// the bitmap read as 0 so shrunken bitmaps remain hashable.
  [[nodiscard]] std::uint64_t hash(const DynamicBitset& bitmap) const;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t bits_per_hash() const noexcept {
    return positions_.size();
  }

 private:
  std::size_t dim_;
  std::vector<std::uint32_t> positions_;
};

/// K-bucket LSH index over (peer id, bitmap) entries; |H| = K per the paper.
class LshIndex {
 public:
  struct Entry {
    std::uint32_t peer;
    DynamicBitset bitmap;
  };

  /// `dim` is the bitmap width (|C_p|); `buckets` is K.
  LshIndex(std::size_t dim, std::size_t buckets, std::size_t bits_per_hash,
           std::uint64_t seed);

  /// Indexes a peer's bitmap (replaces a previous entry for the same peer).
  void insert(std::uint32_t peer, const DynamicBitset& bitmap);

  /// Removes a peer from the index; no-op when absent.
  void erase(std::uint32_t peer);

  [[nodiscard]] std::size_t bucket_of(const DynamicBitset& bitmap) const;

  /// Bucket id holding `peer`, or SIZE_MAX when not indexed.
  [[nodiscard]] std::size_t bucket_of_peer(std::uint32_t peer) const;

  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] const std::vector<Entry>& bucket(std::size_t b) const;

  /// Peers sharing the bucket of `peer`, excluding `peer` itself. Used by
  /// the recovery mechanism: a failed link is replaced with a same-bucket
  /// peer (Sec. III-F).
  [[nodiscard]] std::vector<std::uint32_t> same_bucket_peers(
      std::uint32_t peer) const;

  void clear();

 private:
  BitSamplingHasher hasher_;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t count_ = 0;
};

}  // namespace sel::lsh
