#include "net/id_space.hpp"

#include <numbers>
#include <vector>

namespace sel::net {

double ring_distance(OverlayId a, OverlayId b) noexcept {
  const double d = std::fabs(a.value() - b.value());
  return d <= 0.5 ? d : 1.0 - d;
}

double clockwise_distance(OverlayId a, OverlayId b) noexcept {
  double d = b.value() - a.value();
  if (d < 0.0) d += 1.0;
  return d;
}

OverlayId ring_midpoint(OverlayId a, OverlayId b) noexcept {
  const double cw = clockwise_distance(a, b);
  if (cw <= 0.5) {
    return advance(a, cw / 2.0);
  }
  // Shorter arc runs counterclockwise from a; equivalently clockwise from b.
  return advance(b, (1.0 - cw) / 2.0);
}

OverlayId circular_mean(const std::vector<OverlayId>& ids,
                        OverlayId fallback) noexcept {
  if (ids.empty()) return fallback;
  double sx = 0.0;
  double sy = 0.0;
  for (const OverlayId id : ids) {
    const double theta = 2.0 * std::numbers::pi * id.value();
    sx += std::cos(theta);
    sy += std::sin(theta);
  }
  // Degenerate (vectors cancel): no meaningful mean direction.
  if (sx * sx + sy * sy < 1e-12) return fallback;
  double angle = std::atan2(sy, sx) / (2.0 * std::numbers::pi);
  if (angle < 0.0) angle += 1.0;
  return OverlayId(angle);
}

OverlayId advance(OverlayId id, double offset) noexcept {
  return OverlayId(id.value() + offset);
}

OverlayId near(OverlayId anchor, std::uint64_t key, double epsilon) noexcept {
  // Deterministic offset in (-epsilon, +epsilon) \ {0} derived from the key.
  const double unit =
      static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;  // [0,1)
  const double offset = (unit * 2.0 - 1.0) * epsilon;
  return advance(anchor, offset == 0.0 ? epsilon / 2.0 : offset);
}

}  // namespace sel::net
