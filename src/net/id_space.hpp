// The overlay identifier space I = [0, 1) (paper Sec. II-A).
//
// Identifiers live on the unit ring. SELECT's whole contribution rests on
// *mutable* identifiers, so OverlayId is a value type with the ring geometry
// the algorithms need: shortest-arc distance, clockwise distance, and the
// shorter-arc midpoint used by identifier reassignment (Alg. 2).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace sel::net {

class OverlayId {
 public:
  constexpr OverlayId() = default;

  /// Wraps `value` into [0, 1).
  explicit OverlayId(double value) : value_(wrap(value)) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  /// Uniform hash of an arbitrary 64-bit key into the ID space (the paper's
  /// SHA-1 role; SplitMix64 is an adequate uniform mixer here).
  [[nodiscard]] static OverlayId from_hash(std::uint64_t key) noexcept {
    return OverlayId(static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53);
  }

  [[nodiscard]] constexpr auto operator<=>(const OverlayId&) const = default;

 private:
  [[nodiscard]] static double wrap(double v) noexcept {
    v = v - std::floor(v);
    // floor of a value just below an integer can still round to 1.0.
    if (v >= 1.0) v -= 1.0;
    return v;
  }

  double value_ = 0.0;
};

/// Shortest-arc (ring) distance d_I(u, v) in [0, 0.5].
[[nodiscard]] double ring_distance(OverlayId a, OverlayId b) noexcept;

/// Clockwise distance from a to b in [0, 1): how far to travel in the
/// increasing-id direction.
[[nodiscard]] double clockwise_distance(OverlayId a, OverlayId b) noexcept;

/// Midpoint of the *shorter* arc between a and b — the "centroid" of two
/// positions used by identifier reassignment (Alg. 2). When a and b are
/// antipodal the clockwise midpoint from a is returned.
[[nodiscard]] OverlayId ring_midpoint(OverlayId a, OverlayId b) noexcept;

/// Circular mean of a set of positions (used by the centroid-of-all-friends
/// ablation). Returns fallback when the positions cancel out.
[[nodiscard]] OverlayId circular_mean(const std::vector<OverlayId>& ids,
                                      OverlayId fallback) noexcept;

/// Moves `id` by a signed offset along the ring.
[[nodiscard]] OverlayId advance(OverlayId id, double offset) noexcept;

/// An id adjacent to `anchor` (within +/- epsilon), deterministically derived
/// from `key`. Used by invitation-based projection (Alg. 1): the invited
/// peer is placed right next to its inviter.
[[nodiscard]] OverlayId near(OverlayId anchor, std::uint64_t key,
                             double epsilon = 1e-4) noexcept;

}  // namespace sel::net
