#include "net/network_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sel::net {

const std::vector<BandwidthClass>& default_bandwidth_mix() {
  static const std::vector<BandwidthClass> mix = {
      {"adsl", 1e6, 8e6, 0.15},
      {"cable", 5e6, 50e6, 0.35},
      {"vdsl", 20e6, 100e6, 0.35},
      {"fiber", 100e6, 500e6, 0.15},
  };
  return mix;
}

NetworkModel::NetworkModel(std::size_t num_peers, std::uint64_t seed,
                           const std::vector<BandwidthClass>& mix,
                           double median_latency_ms, double latency_sigma,
                           GeoParams geo)
    : latency_seed_(derive_seed(seed, 0x6c61746e63ULL)),
      latency_mu_(std::log(median_latency_ms / 1000.0)),
      latency_sigma_(latency_sigma),
      geo_(geo) {
  SEL_EXPECTS(!mix.empty());
  SEL_EXPECTS(median_latency_ms > 0.0);
  double total_weight = 0.0;
  for (const auto& c : mix) {
    SEL_EXPECTS(c.weight >= 0.0);
    total_weight += c.weight;
  }
  SEL_EXPECTS(total_weight > 0.0);

  Rng rng(derive_seed(seed, 0x62616e64ULL));
  profiles_.reserve(num_peers);
  for (std::size_t p = 0; p < num_peers; ++p) {
    double pick = rng.uniform() * total_weight;
    const BandwidthClass* chosen = &mix.back();
    for (const auto& c : mix) {
      if (pick < c.weight) {
        chosen = &c;
        break;
      }
      pick -= c.weight;
    }
    profiles_.push_back(PeerLinkProfile{chosen->up_bps, chosen->down_bps});
  }
  if (geo_.regions > 0) {
    Rng region_rng(derive_seed(seed, 0x67656fULL));
    regions_.reserve(num_peers);
    for (std::size_t p = 0; p < num_peers; ++p) {
      regions_.push_back(
          static_cast<std::uint32_t>(region_rng.below(geo_.regions)));
    }
  }
}

std::size_t NetworkModel::region_of(std::size_t peer) const {
  SEL_EXPECTS(peer < profiles_.size());
  return regions_.empty() ? 0 : regions_[peer];
}

const PeerLinkProfile& NetworkModel::profile(std::size_t peer) const {
  SEL_EXPECTS(peer < profiles_.size());
  return profiles_[peer];
}

double NetworkModel::latency_s(std::size_t a, std::size_t b) const {
  SEL_EXPECTS(a < profiles_.size() && b < profiles_.size());
  if (a == b) return 0.0;
  // Deterministic per unordered pair: seed an RNG from the pair key.
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  Rng rng(derive_seed(latency_seed_, (lo << 32) ^ hi));
  double latency = rng.lognormal(latency_mu_, latency_sigma_);
  if (!regions_.empty() && regions_[a] != regions_[b]) {
    latency += geo_.inter_region_extra_ms / 1000.0;
  }
  return latency;
}

double NetworkModel::transfer_time_s(std::size_t sender, std::size_t receiver,
                                     double bytes,
                                     std::size_t concurrent_sends) const {
  SEL_EXPECTS(bytes >= 0.0);
  SEL_EXPECTS(concurrent_sends >= 1);
  const double up =
      profile(sender).up_bps / static_cast<double>(concurrent_sends);
  const double down = profile(receiver).down_bps;
  const double bottleneck_bps = std::min(up, down);
  return latency_s(sender, receiver) + bytes * 8.0 / bottleneck_bps;
}

double NetworkModel::star_broadcast_time_s(
    std::size_t center, const std::vector<std::size_t>& receivers,
    double bytes) const {
  if (receivers.empty()) return 0.0;
  double worst = 0.0;
  for (const std::size_t r : receivers) {
    worst = std::max(worst,
                     transfer_time_s(center, r, bytes, receivers.size()));
  }
  return worst;
}

}  // namespace sel::net
