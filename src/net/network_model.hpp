// Heterogeneous peer network model for the paper's "realistic" experiments.
//
// The paper deployed WebRTC browser peers across 18 VMs, with per-peer
// bandwidth differences and per-pair latency, and disseminated 1.2 MB
// payloads (average image size). We model exactly the quantities those
// experiments measure:
//   - each peer gets an up/down bandwidth drawn from an access-link mix,
//   - each ordered pair gets a propagation latency (lognormal, deterministic
//     per pair),
//   - a transfer of B bytes from u to v that shares u's uplink with c
//     concurrent transfers takes  latency(u,v) + B / min(up(u)/c, down(v)).
// The star-transfer experiment (Sec. IV-D) falls out of the same formula.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace sel::net {

/// The paper sends 1.2 MB data fragments ("average image size").
constexpr double kDefaultPayloadBytes = 1.2e6;

/// An access-link class in the bandwidth mix.
struct BandwidthClass {
  std::string_view name;
  double up_bps;    ///< uplink, bits per second
  double down_bps;  ///< downlink, bits per second
  double weight;    ///< relative share of peers in this class
};

/// Residential access mix: ADSL / cable / VDSL / fiber.
[[nodiscard]] const std::vector<BandwidthClass>& default_bandwidth_mix();

struct PeerLinkProfile {
  double up_bps = 0.0;
  double down_bps = 0.0;
};

/// Geographic model (the "geographical distribution study" the paper's
/// Discussion leaves as future work): peers are spread over regions; pairs
/// in different regions pay an extra propagation latency.
struct GeoParams {
  /// 0 disables geography (flat latency model).
  std::size_t regions = 0;
  /// Extra one-way latency between distinct regions, milliseconds.
  double inter_region_extra_ms = 60.0;
};

class NetworkModel {
 public:
  /// Assigns every peer a bandwidth class (weighted draw) deterministically
  /// from `seed`. Latency parameters: lognormal with median ~`median_ms` and
  /// multiplicative spread sigma.
  NetworkModel(std::size_t num_peers, std::uint64_t seed,
               const std::vector<BandwidthClass>& mix = default_bandwidth_mix(),
               double median_latency_ms = 40.0, double latency_sigma = 0.5,
               GeoParams geo = {});

  [[nodiscard]] std::size_t num_peers() const noexcept {
    return profiles_.size();
  }

  [[nodiscard]] const PeerLinkProfile& profile(std::size_t peer) const;

  /// Uplink bandwidth in bits/second — the "bw" the picker (Alg. 6) compares.
  [[nodiscard]] double uplink_bps(std::size_t peer) const {
    return profile(peer).up_bps;
  }

  /// One-way propagation latency between two peers, seconds. Symmetric,
  /// deterministic per pair; self-latency is 0.
  [[nodiscard]] double latency_s(std::size_t a, std::size_t b) const;

  /// Time for `bytes` from `sender` to `receiver` when the sender's uplink
  /// is shared by `concurrent_sends` simultaneous transfers.
  [[nodiscard]] double transfer_time_s(std::size_t sender, std::size_t receiver,
                                       double bytes,
                                       std::size_t concurrent_sends = 1) const;

  /// Total completion time when `center` pushes `bytes` to each of `fanout`
  /// receivers simultaneously (the star experiment): the slowest transfer
  /// with the uplink split `fanout` ways.
  [[nodiscard]] double star_broadcast_time_s(
      std::size_t center, const std::vector<std::size_t>& receivers,
      double bytes) const;

  /// Region of a peer; 0 when geography is disabled.
  [[nodiscard]] std::size_t region_of(std::size_t peer) const;
  [[nodiscard]] std::size_t num_regions() const noexcept {
    return geo_.regions;
  }

 private:
  std::vector<PeerLinkProfile> profiles_;
  std::uint64_t latency_seed_;
  double latency_mu_;     // lognormal mu (of seconds)
  double latency_sigma_;
  GeoParams geo_;
  std::vector<std::uint32_t> regions_;
};

}  // namespace sel::net
