#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sel::obs::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  throw std::runtime_error(std::string("json: expected ") + want +
                           ", got type " +
                           std::to_string(static_cast<int>(got)));
}

/// Integral doubles inside the exact range print as integers so counters
/// survive a round-trip byte-identically.
void format_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; emit null like most encoders.
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// -- accessors ---------------------------------------------------------------

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Value::as_int64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return static_cast<std::int64_t>(num_);
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Value::Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Value::Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

Value::Array& Value::array() {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

Value::Object& Value::object() {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Value& Value::at(std::string_view key) const {
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  if (it == obj.end()) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return it->second;
}

bool Value::contains(std::string_view key) const noexcept {
  return type_ == Type::kObject && obj_.find(std::string(key)) != obj_.end();
}

// -- writer ------------------------------------------------------------------

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
               ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: format_number(out, num_); break;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        out += '"';
        out += escape(k);
        out += "\":";
        if (pretty) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// -- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // reports only emit ASCII and pass-through UTF-8 bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace sel::obs::json
