// Minimal JSON value + writer + recursive-descent parser, enough for run
// reports and their tooling round-trip (no external dependency available in
// the build image). Numbers are stored as double; integral values within the
// exact-double range serialize without a fractional part, so int64 counters
// round-trip unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sel::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  // Ordered map: deterministic serialization without tracking insertion.
  using Object = std::map<std::string, Value>;

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::uint64_t u)  // NOLINT (covers std::size_t on LP64)
      : Value(static_cast<std::int64_t>(u)) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Mutable containers (converts a null value in place, like nlohmann).
  Array& array();
  Object& object();

  /// Object field access; throws when absent or not an object.
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  Value& operator[](std::string_view key) { return object()[std::string(key)]; }

  /// Serializes; indent < 0 → compact, otherwise pretty-printed.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (throws std::runtime_error with the
  /// byte offset on malformed input; trailing garbage is an error).
  [[nodiscard]] static Value parse(std::string_view text);

  bool operator==(const Value& other) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// RFC 8259 string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace sel::obs::json
