#include "obs/memory.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace sel::obs {

namespace {

/// CAS high-water update, relaxed: telemetry only, never synchronizes.
void raise_peak(std::atomic<std::int64_t>& peak, std::int64_t v) noexcept {
  std::int64_t cur = peak.load(std::memory_order_relaxed);
  while (v > cur &&
         !peak.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

thread_local Subsystem t_scope = Subsystem::kOther;

constexpr std::array<const char*, kSubsystemCount> kNames = {
    "graph", "overlay", "pubsub", "runtime", "arena", "other"};

/// "12.3MiB"-style rendering for breakdown dumps.
std::string human_bytes(std::int64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes >= (std::int64_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", b / (1 << 20));
  } else if (bytes >= (std::int64_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", b / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  }
  return buf;
}

std::atomic<std::size_t> g_peer_count{0};

}  // namespace

const char* subsystem_name(Subsystem s) noexcept {
  const auto i = static_cast<std::size_t>(s);
  return i < kSubsystemCount ? kNames[i] : "other";
}

// -- MemTracker --------------------------------------------------------------

void MemTracker::charge(Subsystem s, std::size_t bytes) noexcept {
  const auto delta = static_cast<std::int64_t>(bytes);
  auto& cell = cells_[static_cast<std::size_t>(s) % kSubsystemCount];
  const std::int64_t live =
      cell.live.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_peak(cell.peak, live);
  const std::int64_t total =
      total_.live.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_peak(total_.peak, total);
}

void MemTracker::discharge(Subsystem s, std::size_t bytes) noexcept {
  const auto delta = static_cast<std::int64_t>(bytes);
  cells_[static_cast<std::size_t>(s) % kSubsystemCount].live.fetch_sub(
      delta, std::memory_order_relaxed);
  total_.live.fetch_sub(delta, std::memory_order_relaxed);
}

std::int64_t MemTracker::live_bytes(Subsystem s) const noexcept {
  return cells_[static_cast<std::size_t>(s) % kSubsystemCount].live.load(
      std::memory_order_relaxed);
}

std::int64_t MemTracker::peak_bytes(Subsystem s) const noexcept {
  return cells_[static_cast<std::size_t>(s) % kSubsystemCount].peak.load(
      std::memory_order_relaxed);
}

std::int64_t MemTracker::total_live_bytes() const noexcept {
  return total_.live.load(std::memory_order_relaxed);
}

std::int64_t MemTracker::total_peak_bytes() const noexcept {
  return total_.peak.load(std::memory_order_relaxed);
}

void MemTracker::reset() noexcept {
  for (auto& cell : cells_) {
    cell.live.store(0, std::memory_order_relaxed);
    cell.peak.store(0, std::memory_order_relaxed);
  }
  total_.live.store(0, std::memory_order_relaxed);
  total_.peak.store(0, std::memory_order_relaxed);
}

void MemTracker::publish_gauges() const {
  if (!enabled()) return;
  auto& reg = MetricsRegistry::global();
  for (std::size_t i = 0; i < kSubsystemCount; ++i) {
    const auto s = static_cast<Subsystem>(i);
    const std::string base = std::string("mem.") + kNames[i];
    reg.gauge(base + ".live_bytes")
        .set(static_cast<double>(live_bytes(s)));
    reg.gauge(base + ".peak_bytes")
        .set(static_cast<double>(peak_bytes(s)));
  }
  reg.gauge("mem.tracked.live_bytes")
      .set(static_cast<double>(total_live_bytes()));
  reg.gauge("mem.tracked.peak_bytes")
      .set(static_cast<double>(total_peak_bytes()));
}

MemTracker& MemTracker::global() noexcept {
  static MemTracker tracker;
  return tracker;
}

// -- MemScope ----------------------------------------------------------------

MemScope::MemScope(Subsystem s) noexcept : prev_(t_scope) { t_scope = s; }
MemScope::~MemScope() { t_scope = prev_; }
Subsystem MemScope::current() noexcept { return t_scope; }

// -- RSS ---------------------------------------------------------------------

RssSample read_rss() {
  RssSample sample;
  // /proc/self/status lines look like "VmRSS:      123456 kB". stdio keeps
  // this allocation-free; the file is tiny.
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return sample;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::int64_t* field = nullptr;
    const char* rest = nullptr;
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      field = &sample.rss_bytes;
      rest = line + 6;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      field = &sample.rss_peak_bytes;
      rest = line + 6;
    }
    if (field != nullptr) {
      *field = std::strtoll(rest, nullptr, 10) * 1024;  // value is in kB
      if (sample.rss_bytes != 0 && sample.rss_peak_bytes != 0) break;
    }
  }
  std::fclose(f);
  return sample;
}

void set_peer_count(std::size_t n) noexcept {
  g_peer_count.store(n, std::memory_order_relaxed);
}

std::size_t peer_count() noexcept {
  return g_peer_count.load(std::memory_order_relaxed);
}

void poll_memory_gauges() {
  if (!enabled()) return;
  MemTracker::global().publish_gauges();
  const RssSample rss = read_rss();
  auto& reg = MetricsRegistry::global();
  reg.gauge("mem.rss_bytes").set(static_cast<double>(rss.rss_bytes));
  reg.gauge("mem.rss_peak_bytes")
      .set(static_cast<double>(rss.rss_peak_bytes));
  const std::size_t peers = peer_count();
  if (peers > 0) {
    reg.gauge("mem.bytes_per_peer")
        .set(static_cast<double>(rss.rss_bytes) /
             static_cast<double>(peers));
  }
}

// -- budget ------------------------------------------------------------------

std::int64_t mem_budget_bytes() {
  static const std::int64_t budget = [] {
    const std::string raw = env::get_string("SEL_MEM_BUDGET", "");
    if (raw.empty()) return std::int64_t{0};
    char* end = nullptr;
    const double base = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || base < 0) return std::int64_t{0};
    double mult = 1.0;
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': mult = 1024.0; break;
      case 'm': mult = 1024.0 * 1024.0; break;
      case 'g': mult = 1024.0 * 1024.0 * 1024.0; break;
      default: break;
    }
    return static_cast<std::int64_t>(base * mult);
  }();
  return budget;
}

bool budget_exceeded() {
  const std::int64_t budget = mem_budget_bytes();
  return budget > 0 && MemTracker::global().total_live_bytes() > budget;
}

std::string memory_breakdown() {
  const auto& tracker = MemTracker::global();
  std::string out;
  for (std::size_t i = 0; i < kSubsystemCount; ++i) {
    if (!out.empty()) out += ' ';
    out += kNames[i];
    out += '=';
    out += human_bytes(tracker.live_bytes(static_cast<Subsystem>(i)));
  }
  out += " tracked_total=";
  out += human_bytes(tracker.total_live_bytes());
  out += " rss=";
  out += human_bytes(read_rss().rss_bytes);
  return out;
}

// -- per-round profiling -----------------------------------------------------

namespace {

/// Scans /proc/self/cmdline for an exact `--mem-profile` argument, so every
/// harness gets the flag without touching its own main(). NUL-separated.
bool cmdline_has_mem_profile() {
  std::FILE* f = std::fopen("/proc/self/cmdline", "re");
  if (f == nullptr) return false;
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (buf[i] == '\0') {
      if (std::string_view(buf + start, i - start) == "--mem-profile") {
        return true;
      }
      start = i + 1;
    }
  }
  return false;
}

}  // namespace

bool mem_profile_enabled() {
  static const bool on =
      env::get_bool("SEL_MEM_PROFILE", false) || cmdline_has_mem_profile();
  return on;
}

std::map<std::string, double> memory_values() {
  std::map<std::string, double> out;
  const auto& tracker = MemTracker::global();
  for (std::size_t i = 0; i < kSubsystemCount; ++i) {
    const auto s = static_cast<Subsystem>(i);
    const std::string base = std::string("mem.") + kNames[i];
    out.emplace(base + ".live_bytes",
                static_cast<double>(tracker.live_bytes(s)));
    out.emplace(base + ".peak_bytes",
                static_cast<double>(tracker.peak_bytes(s)));
  }
  out.emplace("mem.tracked.live_bytes",
              static_cast<double>(tracker.total_live_bytes()));
  out.emplace("mem.tracked.peak_bytes",
              static_cast<double>(tracker.total_peak_bytes()));
  const RssSample rss = read_rss();
  out.emplace("mem.rss_bytes", static_cast<double>(rss.rss_bytes));
  out.emplace("mem.rss_peak_bytes", static_cast<double>(rss.rss_peak_bytes));
  const std::size_t peers = peer_count();
  if (peers > 0) {
    out.emplace("mem.bytes_per_peer",
                static_cast<double>(rss.rss_bytes) /
                    static_cast<double>(peers));
  }
  return out;
}

}  // namespace sel::obs
