// Resource observability: subsystem memory accounting and RSS gauges.
//
// Three layers, all feeding the `mem.*` gauge family of the global
// MetricsRegistry (obs/metrics.hpp):
//
//   1. MemTracker — a process-wide table of live/peak heap bytes per
//      Subsystem, updated by the tagged allocator below. Charges and
//      discharges are relaxed atomics (one add + one CAS-max per
//      allocation), cheap enough for container hot paths.
//   2. Accounted<T, S> — a std::allocator drop-in that attributes every
//      allocation to subsystem S (or, for S = kDynamic, to the subsystem
//      named by the innermost MemScope active at allocation time). The tag
//      is baked into the allocator *instance*, and the allocator propagates
//      on copy/move/swap, so bytes are always discharged against the same
//      subsystem they were charged to — attribution sums to zero after a
//      full alloc/free round-trip (asserted by obs_memory_test).
//   3. An RSS poller reading /proc/self/status (VmRSS / VmHWM). Like the
//      wall clock in obs/time.hpp, the /proc read is fenced into obs/ —
//      resident-set bytes never feed back into protocol behaviour, they are
//      telemetry only.
//
// `SEL_MEM_BUDGET` (bytes; k/m/g suffixes) arms a soft budget: once live
// tracked bytes exceed it, budget_exceeded() reports the overrun and
// check/memory_checks.hpp turns that into a SEL_CHECK violation carrying a
// per-subsystem breakdown. 0 (default) disables the budget.
//
// `--mem-profile` (any harness) or SEL_MEM_PROFILE=on enables per-round
// memory sampling: obs/sampler.hpp folds mem.* values into every
// timeseries point when mem_profile_enabled() is true.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace sel::obs {

/// Subsystem families bytes are attributed to. Order defines the gauge
/// names (`mem.<name>.live_bytes` / `mem.<name>.peak_bytes`) and the
/// breakdown dump; append new families at the end, before kSubsystemCount.
enum class Subsystem : std::uint8_t {
  kGraph = 0,    ///< CSR social graph (offsets + adjacency)
  kOverlay = 1,  ///< ring/long-link peer state + dissemination trees
  kPubsub = 2,   ///< in-flight dissemination + store-and-forward buffers
  kRuntime = 3,  ///< event engine + transport plane
  kArena = 4,    ///< superstep counting-sort arenas (outboxes/inbox/offsets)
  kOther = 5,    ///< MemScope-tagged allocations outside the named owners
};
inline constexpr std::size_t kSubsystemCount = 6;

/// Stable lowercase name ("graph", "overlay", ...) used in gauge keys.
[[nodiscard]] const char* subsystem_name(Subsystem s) noexcept;

/// Process-wide live/peak byte table, one cache-line-padded cell per
/// subsystem. The tagged allocator calls charge()/discharge(); everything
/// else reads.
class MemTracker {
 public:
  void charge(Subsystem s, std::size_t bytes) noexcept;
  void discharge(Subsystem s, std::size_t bytes) noexcept;

  [[nodiscard]] std::int64_t live_bytes(Subsystem s) const noexcept;
  [[nodiscard]] std::int64_t peak_bytes(Subsystem s) const noexcept;
  /// Sum of live bytes across every subsystem.
  [[nodiscard]] std::int64_t total_live_bytes() const noexcept;
  /// High-water mark of the *total* (not the sum of per-subsystem peaks).
  [[nodiscard]] std::int64_t total_peak_bytes() const noexcept;

  /// Zeroes every cell (tests and forked shard children; the driver never
  /// resets mid-run). Outstanding allocations will discharge below zero —
  /// callers reset only at quiescent points.
  void reset() noexcept;

  /// Writes the current table into the global registry's mem.* gauges.
  void publish_gauges() const;

  static MemTracker& global() noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> live{0};
    std::atomic<std::int64_t> peak{0};
  };
  std::array<Cell, kSubsystemCount> cells_{};
  Cell total_{};
};

/// RAII subsystem tag for allocations made through Accounted<T> (the
/// dynamic-tag form). Scopes nest; the innermost wins. Thread-local.
class MemScope {
 public:
  explicit MemScope(Subsystem s) noexcept;
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

  /// Innermost active scope on this thread; kOther when none.
  [[nodiscard]] static Subsystem current() noexcept;

 private:
  Subsystem prev_;
};

namespace detail {
/// Sentinel template tag: resolve the subsystem from MemScope at
/// allocation time instead of the template parameter.
inline constexpr std::uint8_t kDynamicTag = 0xFF;
}  // namespace detail

/// Tagged counting allocator. With an explicit Subsystem the tag is a
/// compile-time constant; Accounted<T> (default tag) captures
/// MemScope::current() at construction. The tag lives in the allocator
/// instance and propagates with the container's memory on copy/move/swap,
/// so deallocate() always credits the subsystem that allocate() debited.
template <typename T, std::uint8_t Tag = detail::kDynamicTag>
class Accounted {
 public:
  using value_type = T;
  /// Non-type template parameters defeat allocator_traits' default rebind;
  /// spell it out.
  template <typename U>
  struct rebind {
    using other = Accounted<U, Tag>;
  };
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  Accounted() noexcept
      : tag_(Tag == detail::kDynamicTag
                 ? static_cast<std::uint8_t>(MemScope::current())
                 : Tag) {}
  explicit Accounted(Subsystem s) noexcept
      : tag_(static_cast<std::uint8_t>(s)) {}
  template <typename U>
  Accounted(const Accounted<U, Tag>& other) noexcept  // NOLINT(google-explicit-constructor): allocator rebind
      : tag_(other.tag()) {}

  T* allocate(std::size_t n) {
    MemTracker::global().charge(subsystem(), n * sizeof(T));
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    MemTracker::global().discharge(subsystem(), n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  [[nodiscard]] Subsystem subsystem() const noexcept {
    return static_cast<Subsystem>(tag_);
  }
  [[nodiscard]] std::uint8_t tag() const noexcept { return tag_; }

  template <typename U>
  [[nodiscard]] bool operator==(const Accounted<U, Tag>& other) const noexcept {
    return tag_ == other.tag();
  }

 private:
  std::uint8_t tag_;
};

/// Convenience aliases for the heavy owners. The enum spelling keeps call
/// sites readable: AccountedVector<NodeId, Subsystem::kGraph>.
template <typename T, Subsystem S>
using Tagged = Accounted<T, static_cast<std::uint8_t>(S)>;

template <typename T, Subsystem S>
using AccountedVector = std::vector<T, Tagged<T, S>>;

// -- RSS ---------------------------------------------------------------------

/// Resident-set sample from /proc/self/status. Zero fields when the file is
/// unavailable (non-Linux).
struct RssSample {
  std::int64_t rss_bytes = 0;       ///< VmRSS
  std::int64_t rss_peak_bytes = 0;  ///< VmHWM
};

/// The one sanctioned /proc read (fenced into obs/ like obs/time.hpp).
[[nodiscard]] RssSample read_rss();

/// Reads RSS, publishes `mem.rss_bytes` / `mem.rss_peak_bytes`, the
/// per-subsystem live/peak gauges and — when a peer count has been set —
/// `mem.bytes_per_peer` (RSS divided by peers). Call at sample points
/// (round sampler, report write); cheap enough for per-round use.
void poll_memory_gauges();

/// Sets the peer population the bytes-per-peer gauge divides by (0 clears).
/// Benches and the overlay constructor call this.
void set_peer_count(std::size_t n) noexcept;
[[nodiscard]] std::size_t peer_count() noexcept;

// -- budget ------------------------------------------------------------------

/// SEL_MEM_BUDGET in bytes (suffixes k/m/g = 2^10/2^20/2^30, case
/// insensitive); 0 = budget disabled. Parsed once per process.
[[nodiscard]] std::int64_t mem_budget_bytes();

/// True when the budget is armed and live tracked bytes exceed it.
/// check/memory_checks.hpp turns this into a SEL_CHECK violation.
[[nodiscard]] bool budget_exceeded();

/// "graph=12.3MiB overlay=1.1MiB ..." — the breakdown attached to a budget
/// violation and handy for logs. Live bytes per subsystem plus rss.
[[nodiscard]] std::string memory_breakdown();

// -- per-round profiling -----------------------------------------------------

/// True when --mem-profile was passed on the command line (scanned from
/// /proc/self/cmdline once) or SEL_MEM_PROFILE is truthy. Gates per-round
/// mem sampling in obs/sampler.cpp.
[[nodiscard]] bool mem_profile_enabled();

/// Current mem.* values as a flat name→value map (tracked subsystems + RSS
/// + bytes-per-peer). Used by the sampler, the report memory section and
/// the budget dump. Deterministic iteration (std::map).
[[nodiscard]] std::map<std::string, double> memory_values();

}  // namespace sel::obs
