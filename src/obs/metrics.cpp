#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/env.hpp"

namespace sel::obs {

namespace detail {

bool read_env_enabled() { return env::get_bool("SEL_OBS", true); }

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

namespace {

/// Relaxed CAS add for atomic<double> (fetch_add on floating atomics is
/// C++20 but spotty across standard libraries).
void atomic_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace detail

// -- Histogram ---------------------------------------------------------------

namespace {

/// Default bounds suit millisecond-scale phase timings and small counts.
std::vector<double> default_bounds() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
          5.0,   10.0,  50.0, 100.0, 500.0, 1000.0};
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::observe(double x) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, x);
  detail::atomic_min(min_, x);
  detail::atomic_max(max_, x);
}

std::vector<std::int64_t> Histogram::counts() const {
  std::vector<std::int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::merge(const HistogramSnapshot& remote) noexcept {
  if (remote.count == 0) return;
  if (remote.bounds == bounds_ &&
      remote.counts.size() == buckets_.size()) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i].fetch_add(remote.counts[i], std::memory_order_relaxed);
    }
  } else {
    // Bounds disagree (different binaries?) — keep the aggregate stats
    // exact and fold the observations into the overflow bucket.
    buckets_.back().fetch_add(remote.count, std::memory_order_relaxed);
  }
  count_.fetch_add(remote.count, std::memory_order_relaxed);
  detail::atomic_add(sum_, remote.sum);
  detail::atomic_min(min_, remote.min);
  detail::atomic_max(max_, remote.max);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// -- Snapshot ----------------------------------------------------------------

std::int64_t Snapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// -- MetricsRegistry ---------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(  // NOLINT(modernize-make-unique): private ctor
                          new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(  // NOLINT(modernize-make-unique): private ctor
                          new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(  // NOLINT(modernize-make-unique)
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

Span& MetricsRegistry::span(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    it = spans_
             .emplace(std::string(name),
                      std::unique_ptr<Span>(  // NOLINT(modernize-make-unique): private ctor
                          new Span(std::string(name))))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::add_round(RoundSample sample) {
  std::lock_guard lock(mu_);
  if (rounds_.size() >= kMaxRounds) {
    auto it = counters_.find("obs.rounds_dropped");
    if (it == counters_.end()) {
      it = counters_
               .emplace("obs.rounds_dropped",
                        std::unique_ptr<Counter>(  // NOLINT(modernize-make-unique)
                            new Counter("obs.rounds_dropped")))
               .first;
    }
    // Direct shard write: we already hold the registry mutex.
    it->second->shards_[0].v.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rounds_.push_back(std::move(sample));
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->bounds(), h->counts(), h->count(),
                               h->sum(), h->min(), h->max()});
  }
  snap.spans.reserve(spans_.size());
  for (const auto& [name, s] : spans_) {
    snap.spans.push_back({name, s->count(), s->total_ns()});
  }
  snap.rounds = rounds_;
  return snap;
}

std::vector<CounterSnapshot> MetricsRegistry::counters_snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, c->value()});
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : spans_) s->reset();
  rounds_.clear();
}

void MetricsRegistry::merge_snapshot(const Snapshot& remote,
                                     std::uint32_t shard_id) {
  for (const auto& c : remote.counters) {
    counter(c.name).add(c.value);
  }
  for (const auto& s : remote.spans) {
    Span& dst = span(s.name);
    // Direct shard-0 writes keep counts exact (record_ns adds one count per
    // call; a merge adds many).
    dst.shards_[0].ns.fetch_add(s.total_ns, std::memory_order_relaxed);
    dst.shards_[0].count.fetch_add(s.count, std::memory_order_relaxed);
  }
  for (const auto& h : remote.histograms) {
    histogram(h.name, h.bounds).merge(h);
  }
  const std::string prefix =
      "mem.shard" + std::to_string(shard_id) + ".";
  for (const auto& g : remote.gauges) {
    constexpr std::string_view kMem = "mem.";
    if (g.name.compare(0, kMem.size(), kMem) == 0) {
      gauge(prefix + g.name.substr(kMem.size())).set(g.value);
    }
  }
  counter("runtime.shard.snapshots_merged").add(1);
}

namespace {

/// Seed-independent report schema: the resource-observability and shard
/// families exist (as zeros) in every global-registry report, even when the
/// run never allocates in a subsystem or spawns a shard. Local registries
/// (tests) stay empty — obs_metrics_test asserts exact snapshot sizes.
void preregister_builtin_families(MetricsRegistry& reg) {
  for (const char* sub :
       {"graph", "overlay", "pubsub", "runtime", "arena", "other",
        "tracked"}) {
    reg.gauge(std::string("mem.") + sub + ".live_bytes");
    reg.gauge(std::string("mem.") + sub + ".peak_bytes");
  }
  reg.gauge("mem.rss_bytes");
  reg.gauge("mem.rss_peak_bytes");
  reg.gauge("mem.bytes_per_peer");
  reg.counter("runtime.shard.snapshots_merged");
  reg.gauge("runtime.shard.count");
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  static const bool preregistered = [] {
    preregister_builtin_families(registry);
    return true;
  }();
  (void)preregistered;
  return registry;
}

}  // namespace sel::obs
