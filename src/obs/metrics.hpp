// Runtime observability: a process-wide metrics registry.
//
// The registry hands out stable references to named counters, gauges,
// histograms and tracing spans. Hot-path updates are designed to be cheap
// enough for per-message/per-exchange call sites:
//   - counters are sharded across cache-line-padded atomics (one shard per
//     thread slot), so concurrent increments from pool workers never contend;
//     an increment is a single relaxed fetch_add;
//   - gauges are one relaxed atomic store;
//   - histograms use fixed bucket bounds chosen at registration, so observe()
//     is a small linear scan plus a relaxed add;
//   - every update is a no-op when observability is disabled (SEL_OBS=off),
//     costing one predictable branch.
//
// Naming convention: `subsystem.metric` (e.g. `select.gossip_exchanges`,
// `pubsub.relay_forwards`, `sim.superstep.messages`). Handles are meant to be
// looked up once (static local at the call site) and reused; registration
// takes a mutex, updates never do.
//
// Snapshots merge the shards into plain structs that the RunReport emitter
// (obs/report.hpp) serializes to JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sel::obs {

namespace detail {
/// Parses SEL_OBS once ("off"/"0"/"false" disable; anything else enables).
[[nodiscard]] bool read_env_enabled();

/// Small dense per-thread slot id used to pick a counter shard.
[[nodiscard]] std::size_t thread_slot() noexcept;
}  // namespace detail

/// True unless SEL_OBS=off (cached after the first call).
[[nodiscard]] inline bool enabled() noexcept {
  static const bool e = detail::read_env_enabled();
  return e;
}

/// Shards per counter. Power of two; 16 covers typical pool widths without
/// bloating snapshot cost.
inline constexpr std::size_t kCounterShards = 16;

struct HistogramSnapshot;

/// Monotonic named counter. Increments are relaxed atomic adds on a
/// per-thread shard; value() sums the shards.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::thread_slot() & (kCounterShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  std::string name_;
  std::array<Cell, kCounterShards> shards_{};
};

/// Last-write-wins named value (e.g. `run.n`, `run.seed`).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges; one implicit
/// overflow bucket catches everything above the last edge. Tracks count, sum,
/// min and max alongside the bucket counts.
class Histogram {
 public:
  void observe(double x) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Bucket counts; size is bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::int64_t> counts() const;
  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty (min_/max_ hold ±infinity sentinels internally).
  [[nodiscard]] double min() const noexcept {
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto c = count();
    return c == 0 ? 0.0 : sum() / static_cast<double>(c);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  void reset() noexcept;
  /// Adds a remote snapshot of the same histogram (see
  /// MetricsRegistry::merge_snapshot for the bounds-mismatch rule).
  void merge(const HistogramSnapshot& remote) noexcept;

  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Accumulated wall-time for a labelled phase; fed by ScopedSpan
/// (obs/trace.hpp). Sharded like Counter so parallel sections can trace.
class Span {
 public:
  void record_ns(std::int64_t ns) noexcept {
    const std::size_t slot = detail::thread_slot() & (kCounterShards - 1);
    shards_[slot].ns.fetch_add(ns, std::memory_order_relaxed);
    shards_[slot].count.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t total_ns() const noexcept {
    std::int64_t sum = 0;
    for (const auto& s : shards_) sum += s.ns.load(std::memory_order_relaxed);
    return sum;
  }
  [[nodiscard]] std::int64_t count() const noexcept {
    std::int64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.count.load(std::memory_order_relaxed);
    }
    return sum;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Span(std::string name) : name_(std::move(name)) {}
  void reset() noexcept {
    for (auto& s : shards_) {
      s.ns.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
    }
  }

  struct alignas(64) Cell {
    std::atomic<std::int64_t> ns{0};
    std::atomic<std::int64_t> count{0};
  };
  std::string name_;
  std::array<Cell, kCounterShards> shards_{};
};

/// One synchronized protocol/superstep round, as recorded by the engines.
/// `label` distinguishes producers ("select.round", "sim.superstep").
struct RoundSample {
  std::string label;
  std::uint64_t round = 0;
  double compute_ms = 0.0;  ///< vertex/peer work (max busy chunk)
  double barrier_ms = 0.0;  ///< idle time waiting on the slowest chunk
  double deliver_ms = 0.0;  ///< message merge/sort/offsets or ring rebuild
  std::uint64_t messages = 0;
};

// -- snapshots ---------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct SpanSnapshot {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
};

/// Point-in-time merge of every instrument in a registry.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SpanSnapshot> spans;
  std::vector<RoundSample> rounds;

  /// Counter value by name (0 when absent) — convenience for tests/tools.
  [[nodiscard]] std::int64_t counter(std::string_view name) const noexcept;
};

/// Named-instrument registry. Registration is mutex-protected and returns
/// stable references (instruments are never destroyed before the registry);
/// updates through the returned references are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Repeated calls with the same name return the same instrument.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` are used only on first registration; pass empty for the
  /// default latency-style buckets.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});
  Span& span(std::string_view name);

  /// Appends one round of protocol telemetry. Bounded: after kMaxRounds
  /// samples further rounds are counted in `obs.rounds_dropped` instead of
  /// stored, so unbounded simulations cannot grow the registry forever.
  void add_round(RoundSample sample);

  static constexpr std::size_t kMaxRounds = 20'000;

  [[nodiscard]] Snapshot snapshot() const;

  /// Counter-only snapshot: what the per-round sampler (obs/sampler.hpp)
  /// needs each round, without copying histograms or round telemetry.
  [[nodiscard]] std::vector<CounterSnapshot> counters_snapshot() const;

  /// Folds a remote registry snapshot (a shard child's end-of-run state,
  /// shipped over the wire) into this registry:
  ///   - counters and spans are summed into the same-named instruments;
  ///   - histograms merge bucket-wise when the bounds match (they do when
  ///     driver and shard run the same binary); mismatched bounds fold
  ///     into the overflow bucket, preserving count/sum/min/max exactly;
  ///   - `mem.*` gauges are republished as `mem.shard<id>.<rest>` so the
  ///     merged report carries a per-shard memory breakdown; other remote
  ///     gauges are dropped (the driver owns run-level gauges);
  ///   - round telemetry is dropped (shard servers run no rounds).
  /// Callers merge shards in ascending id order for deterministic output;
  /// each call bumps `runtime.shard.snapshots_merged`.
  void merge_snapshot(const Snapshot& remote, std::uint32_t shard_id);

  /// Zeroes every instrument and clears round telemetry (instrument handles
  /// stay valid). Benches call this between independent runs.
  void reset();

  /// Process-wide registry used by SEL_TRACE_SCOPE and the wired-in
  /// protocol/engine call sites.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  // Node-based maps keep instrument addresses stable across registration.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Span>, std::less<>> spans_;
  std::vector<RoundSample> rounds_;
};

}  // namespace sel::obs
