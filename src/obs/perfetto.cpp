#include "obs/perfetto.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace sel::obs {

namespace {

constexpr std::int64_t kPeersPid = 1;
constexpr std::int64_t kRoundsPid = 2;
constexpr std::int64_t kSpansPid = 3;

std::int64_t sim_us(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6);
}

json::Value::Object event_base(const char* ph, const char* cat,
                               std::string name, std::int64_t ts,
                               std::int64_t pid, std::int64_t tid) {
  json::Value::Object e;
  e.emplace("ph", ph);
  e.emplace("cat", cat);
  e.emplace("name", std::move(name));
  e.emplace("ts", ts);
  e.emplace("pid", pid);
  e.emplace("tid", tid);
  return e;
}

void add_process_name(json::Value::Array& events, std::int64_t pid,
                      const char* name) {
  auto e = event_base("M", "__metadata", "process_name", 0, pid, 0);
  json::Value::Object args;
  args.emplace("name", name);
  e.emplace("args", std::move(args));
  events.emplace_back(std::move(e));
}

void add_thread_name(json::Value::Array& events, std::int64_t pid,
                     std::int64_t tid, std::string name) {
  auto e = event_base("M", "__metadata", "thread_name", 0, pid, tid);
  json::Value::Object args;
  args.emplace("name", std::move(name));
  e.emplace("args", std::move(args));
  events.emplace_back(std::move(e));
}

void add_provenance(json::Value::Array& events,
                    const ProvenanceTracer::Snapshot& prov) {
  if (prov.publishes.empty() && prov.hops.empty()) return;
  add_process_name(events, kPeersPid, "peers");

  // Completion time per trace: the latest hop arrival.
  std::unordered_map<TraceId, double> completed_s;
  std::vector<std::uint32_t> peers;
  peers.reserve(prov.hops.size() * 2 + prov.publishes.size());
  for (const auto& h : prov.hops) {
    auto [it, inserted] = completed_s.try_emplace(h.trace, h.arrive_s);
    if (!inserted) it->second = std::max(it->second, h.arrive_s);
    peers.push_back(h.from);
    peers.push_back(h.to);
  }
  for (const auto& p : prov.publishes) peers.push_back(p.publisher);
  // Ascending peer id — the trace JSON must be byte-stable across runs so
  // compare_reports.py can diff traces.
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  for (const std::uint32_t p : peers) {
    add_thread_name(events, kPeersPid, p, "peer " + std::to_string(p));
  }

  for (const auto& p : prov.publishes) {
    const char* what = p.kind == TraceKind::kPlan ? "plan #" : "publish #";
    auto e = event_base("X", "provenance", what + std::to_string(p.msg),
                        sim_us(p.publish_s), kPeersPid, p.publisher);
    const auto done = completed_s.find(p.trace);
    const std::int64_t dur =
        done == completed_s.end()
            ? 0
            : std::max<std::int64_t>(
                  0, sim_us(done->second) - sim_us(p.publish_s));
    e.emplace("dur", dur);
    json::Value::Object args;
    args.emplace("trace", p.trace);
    e.emplace("args", std::move(args));
    events.emplace_back(std::move(e));
  }

  std::uint64_t flow_id = 0;
  for (const auto& h : prov.hops) {
    ++flow_id;
    const std::string msg_name = "msg " + std::to_string(h.msg);
    // The hop slice lives on the receiving peer's track and spans the
    // transfer; the flow arrow links it back to the sending peer. Retry and
    // failover hops get their own slice names so chaos runs read at a
    // glance in the Perfetto UI.
    const char* what = h.failover ? "failover d"
                       : h.attempt > 0 ? "retry d"
                                       : "hop d";
    auto slice = event_base("X", "provenance", what + std::to_string(h.depth),
                            sim_us(h.send_s), kPeersPid, h.to);
    slice.emplace("dur", std::max<std::int64_t>(
                             0, sim_us(h.arrive_s) - sim_us(h.send_s)));
    json::Value::Object args;
    args.emplace("msg", h.msg);
    args.emplace("trace", h.trace);
    args.emplace("from", static_cast<std::uint64_t>(h.from));
    args.emplace("depth", static_cast<std::uint64_t>(h.depth));
    args.emplace("attempt", static_cast<std::uint64_t>(h.attempt));
    args.emplace("relay", h.relay);
    args.emplace("delivered", h.delivered);
    args.emplace("failover", h.failover);
    slice.emplace("args", std::move(args));
    events.emplace_back(std::move(slice));

    auto start = event_base("s", "provenance", msg_name, sim_us(h.send_s),
                            kPeersPid, h.from);
    start.emplace("id", flow_id);
    events.emplace_back(std::move(start));
    auto finish = event_base("f", "provenance", msg_name, sim_us(h.arrive_s),
                             kPeersPid, h.to);
    finish.emplace("id", flow_id);
    finish.emplace("bp", "e");  // bind to the enclosing hop slice
    events.emplace_back(std::move(finish));
  }
}

void add_rounds(json::Value::Array& events,
                const std::vector<PhaseEvent>& phases,
                const std::vector<TimeSeriesPoint>& timeseries) {
  if (phases.empty() && timeseries.empty()) return;
  add_process_name(events, kRoundsPid, "rounds");
  std::map<std::string, std::int64_t> tids;
  const auto tid_for = [&events, &tids](const std::string& label) {
    const auto it = tids.find(label);
    if (it != tids.end()) return it->second;
    const auto tid = static_cast<std::int64_t>(tids.size());
    tids.emplace(label, tid);
    add_thread_name(events, kRoundsPid, tid, label);
    return tid;
  };

  for (const auto& ph : phases) {
    auto e = event_base("X", "rounds", ph.phase, ph.ts_us, kRoundsPid,
                        tid_for(ph.label));
    e.emplace("dur", ph.dur_us);
    json::Value::Object args;
    args.emplace("round", ph.round);
    e.emplace("args", std::move(args));
    events.emplace_back(std::move(e));
  }

  // Per-round metric series as counter tracks (Perfetto plots each args
  // key as its own series under the event name).
  for (const auto& point : timeseries) {
    auto e = event_base("C", "timeseries", point.label, point.ts_us,
                        kRoundsPid, tid_for(point.label));
    json::Value::Object args;
    for (const auto& [k, v] : point.values) args.emplace(k, v);
    e.emplace("args", std::move(args));
    events.emplace_back(std::move(e));
  }
}

void add_span_totals(json::Value::Array& events, const Snapshot& metrics) {
  if (metrics.spans.empty()) return;
  add_process_name(events, kSpansPid, "span totals");
  add_thread_name(events, kSpansPid, 0, "accumulated spans");
  // Begin times are not recorded for aggregate spans; lay the totals out
  // end-to-end so relative weight is visible at a glance.
  std::int64_t cursor = 0;
  for (const auto& s : metrics.spans) {
    if (s.count == 0) continue;
    auto e = event_base("X", "spans", s.name, cursor, kSpansPid, 0);
    const std::int64_t dur = std::max<std::int64_t>(1, s.total_ns / 1000);
    e.emplace("dur", dur);
    json::Value::Object args;
    args.emplace("count", s.count);
    args.emplace("total_ns", s.total_ns);
    e.emplace("args", std::move(args));
    events.emplace_back(std::move(e));
    cursor += dur;
  }
}

}  // namespace

json::Value build_trace_json(const ProvenanceTracer::Snapshot& provenance,
                             const std::vector<PhaseEvent>& phases,
                             const std::vector<TimeSeriesPoint>& timeseries,
                             const Snapshot& metrics) {
  json::Value::Array events;
  add_provenance(events, provenance);
  add_rounds(events, phases, timeseries);
  add_span_totals(events, metrics);

  json::Value::Object doc;
  doc.emplace("traceEvents", std::move(events));
  doc.emplace("displayTimeUnit", "ms");
  json::Value::Object meta;
  meta.emplace("publishes_seen", provenance.publishes_seen);
  meta.emplace("publishes_sampled", provenance.publishes_sampled);
  meta.emplace("hops_recorded", provenance.hops_recorded);
  doc.emplace("metadata", std::move(meta));
  return json::Value(std::move(doc));
}

json::Value build_trace_json() {
  return build_trace_json(ProvenanceTracer::global().snapshot(),
                          TraceBuffer::global().events(),
                          RoundSampler::global().snapshot(),
                          MetricsRegistry::global().snapshot());
}

bool write_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << build_trace_json().dump() << '\n';
  return out.good();
}

std::string trace_path_for_csv(const std::string& csv_path) {
  constexpr std::string_view kExt = ".csv";
  if (csv_path.size() > kExt.size() &&
      csv_path.compare(csv_path.size() - kExt.size(), kExt.size(), kExt) ==
          0) {
    return csv_path.substr(0, csv_path.size() - kExt.size()) + ".trace.json";
  }
  return csv_path + ".trace.json";
}

}  // namespace sel::obs
