// Perfetto / Chrome Trace Event Format exporter.
//
// Serializes the global trace state — per-message provenance
// (obs/provenance.hpp), protocol/superstep phase events (TraceBuffer) and
// aggregate SEL_TRACE_SCOPE span totals — into the JSON Trace Event Format
// understood by ui.perfetto.dev and chrome://tracing.
//
// Track layout (pid = process group, tid = track):
//   pid 1 "peers"       one track per peer that appears in a traced
//                       dissemination; hop slices (sim time, µs) linked
//                       parent→child with flow events (ph "s"/"f")
//   pid 2 "rounds"      one track per producer label ("select.round",
//                       "sim.superstep", ...); compute/barrier/deliver
//                       slices with wall-clock timestamps, plus per-round
//                       counter series (ph "C") from the round sampler
//   pid 3 "span totals" aggregate SEL_TRACE_SCOPE spans laid out
//                       end-to-end (their individual begin times are not
//                       recorded — only totals)
//
// Every emitted event carries ph/ts/pid/tid; "X" events add dur, flow
// events add id, and each flow id appears exactly once as "s" and once as
// "f" (asserted by tests/obs_trace_test.cpp).
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/sampler.hpp"

namespace sel::obs {

/// Builds the trace document from explicit snapshots (unit-testable).
[[nodiscard]] json::Value build_trace_json(
    const ProvenanceTracer::Snapshot& provenance,
    const std::vector<PhaseEvent>& phases,
    const std::vector<TimeSeriesPoint>& timeseries, const Snapshot& metrics);

/// Builds the trace document from the process-wide recorders.
[[nodiscard]] json::Value build_trace_json();

/// Writes the global trace to `path` (compact JSON). Returns false when the
/// file could not be opened — callers degrade like RunReport::write.
bool write_trace_file(const std::string& path);

/// `<csv_path minus .csv>.trace.json` (plain `path + ".trace.json"` when
/// the extension is absent).
[[nodiscard]] std::string trace_path_for_csv(const std::string& csv_path);

}  // namespace sel::obs
