#include "obs/provenance.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace sel::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Oldest-first copy of a ring that has wrapped `total` insertions.
template <typename T>
std::vector<T> unroll_ring(const std::vector<T>& ring, std::size_t capacity,
                           std::int64_t total) {
  if (static_cast<std::size_t>(total) <= capacity) return ring;
  std::vector<T> out;
  out.reserve(capacity);
  const std::size_t head = static_cast<std::size_t>(total) % capacity;
  out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(head),
             ring.end());
  out.insert(out.end(), ring.begin(),
             ring.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

template <typename T>
void ring_push(std::vector<T>& ring, std::size_t capacity, std::int64_t total,
               T value) {
  if (static_cast<std::size_t>(total) < capacity) {
    ring.push_back(std::move(value));
  } else {
    ring[static_cast<std::size_t>(total) % capacity] = std::move(value);
  }
}

}  // namespace

std::int64_t wall_us(std::chrono::steady_clock::time_point tp) noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp -
                                                               trace_epoch())
      .count();
}

std::int64_t wall_now_us() noexcept {
  return wall_us(std::chrono::steady_clock::now());
}

// -- ProvenanceTracer --------------------------------------------------------

TraceId ProvenanceTracer::begin_publish(std::uint64_t msg,
                                        std::uint32_t publisher, double time_s,
                                        TraceKind kind) {
  if (!enabled()) return 0;
  std::lock_guard lock(mu_);
  if (sample_every_ == 0) {
    sample_every_ = static_cast<std::size_t>(
        env::get_int("SEL_TRACE_SAMPLE", 64, 1, 1u << 30));
  }
  const auto seen = publishes_seen_++;
  if (static_cast<std::size_t>(seen) % sample_every_ != 0) return 0;
  const TraceId id = next_trace_++;
  ring_push(publishes_, kMaxPublishes, publishes_sampled_,
            PublishRecord{id, msg, publisher, kind, time_s, wall_now_us()});
  ++publishes_sampled_;
  return id;
}

void ProvenanceTracer::record_hop(HopRecord hop) {
  if (!enabled()) return;
  hop.wall_ts_us = wall_now_us();
  std::lock_guard lock(mu_);
  ring_push(hops_, kMaxHops, hops_recorded_, hop);
  ++hops_recorded_;
}

ProvenanceTracer::Snapshot ProvenanceTracer::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.publishes = unroll_ring(publishes_, kMaxPublishes, publishes_sampled_);
  snap.hops = unroll_ring(hops_, kMaxHops, hops_recorded_);
  snap.publishes_seen = publishes_seen_;
  snap.publishes_sampled = publishes_sampled_;
  snap.hops_recorded = hops_recorded_;
  return snap;
}

void ProvenanceTracer::reset() {
  std::lock_guard lock(mu_);
  publishes_.clear();
  hops_.clear();
  publishes_seen_ = 0;
  publishes_sampled_ = 0;
  hops_recorded_ = 0;
  next_trace_ = 1;
}

std::size_t ProvenanceTracer::sample_every() const noexcept {
  std::lock_guard lock(mu_);
  return sample_every_;
}

void ProvenanceTracer::set_sample_every(std::size_t n) {
  std::lock_guard lock(mu_);
  sample_every_ = n;
  publishes_seen_ = 0;
}

ProvenanceTracer& ProvenanceTracer::global() {
  static ProvenanceTracer tracer;
  return tracer;
}

// -- TraceBuffer -------------------------------------------------------------

void TraceBuffer::add(const PhaseEvent& event) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  ring_push(events_, kMaxEvents, recorded_, event);
  ++recorded_;
}

std::vector<PhaseEvent> TraceBuffer::events() const {
  std::lock_guard lock(mu_);
  return unroll_ring(events_, kMaxEvents, recorded_);
}

std::int64_t TraceBuffer::recorded() const noexcept {
  std::lock_guard lock(mu_);
  return recorded_;
}

void TraceBuffer::reset() {
  std::lock_guard lock(mu_);
  events_.clear();
  recorded_ = 0;
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

}  // namespace sel::obs
