// Causal message provenance + timestamped trace events.
//
// Two bounded, process-wide recorders feed the Perfetto exporter
// (obs/perfetto.hpp):
//
//   ProvenanceTracer — assigns sampled publishes a trace id and records
//   every hop of the dissemination (publisher → tree edges →
//   subscriber/relay) as parent-linked events carrying peer ids, hop depth,
//   relay/delivered flags and sim + wall timestamps. Sampling is 1-in-N
//   publishes (SEL_TRACE_SAMPLE, default 64; the first publish is always
//   sampled so short runs still produce a trace). Storage is a fixed-size
//   ring buffer: old records are overwritten, never reallocated, so an
//   unbounded run cannot grow the tracer.
//
//   TraceBuffer — generic (label, phase, [ts, ts+dur]) wall-clock events
//   for protocol rounds and superstep phases, same ring-buffer bound.
//
// Cost contract: with SEL_OBS=off every entry point is a single predictable
// branch (measured by BM_Trace* in bench_micro). When enabled, an unsampled
// publish costs one relaxed atomic increment; sampled records take a mutex
// (sampled volume is tiny by construction).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace sel::obs {

/// Microseconds of `tp` since the process trace epoch (first use).
[[nodiscard]] std::int64_t wall_us(
    std::chrono::steady_clock::time_point tp) noexcept;

/// Microseconds since the process trace epoch.
[[nodiscard]] std::int64_t wall_now_us() noexcept;

/// Identifies one traced dissemination; 0 = untraced (publish not sampled).
using TraceId = std::uint64_t;

/// What a trace follows: a real published message or a multipath plan.
enum class TraceKind : std::uint8_t { kPublish, kPlan };

struct PublishRecord {
  TraceId trace = 0;
  std::uint64_t msg = 0;        ///< engine message id / plan id
  std::uint32_t publisher = 0;  ///< root peer
  TraceKind kind = TraceKind::kPublish;
  double publish_s = 0.0;  ///< sim time
  std::int64_t wall_ts_us = 0;
};

/// One tree edge of a traced dissemination. Parent linkage is implicit:
/// `from` is the parent peer, so the hop set reproduces the tree exactly.
struct HopRecord {
  TraceId trace = 0;
  std::uint64_t msg = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t depth = 0;   ///< depth of `to` in the tree (root = 0)
  std::uint32_t attempt = 0; ///< send attempt; > 0 marks a retry hop
  bool relay = false;        ///< `to` forwards without being subscribed
  bool delivered = false;    ///< `to` is an online subscriber
  bool failover = false;     ///< hop rides a multipath backup route
  double send_s = 0.0;       ///< sim time the parent started the transfer
  double arrive_s = 0.0;     ///< sim time the hop completes
  std::int64_t wall_ts_us = 0;
};

class ProvenanceTracer {
 public:
  /// Ring capacities: ~4k publishes / 64k hops bound memory at a few MB.
  static constexpr std::size_t kMaxPublishes = 4096;
  static constexpr std::size_t kMaxHops = 1u << 16;

  /// Returns a fresh trace id when observability is on and this publish is
  /// sampled; 0 otherwise. SEL_OBS=off: a single branch.
  TraceId begin_publish(std::uint64_t msg, std::uint32_t publisher,
                        double time_s, TraceKind kind = TraceKind::kPublish);

  /// Records one hop of a sampled dissemination. Callers gate on the trace
  /// id, so unsampled messages never reach this.
  void record_hop(HopRecord hop);

  struct Snapshot {
    std::vector<PublishRecord> publishes;  ///< oldest first
    std::vector<HopRecord> hops;           ///< oldest first
    std::int64_t publishes_seen = 0;       ///< sampled or not
    std::int64_t publishes_sampled = 0;
    std::int64_t hops_recorded = 0;  ///< includes overwritten entries
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Clears records and the sampling counter (sample handles stay valid).
  void reset();

  /// 1-in-N publish sampling. Defaults to SEL_TRACE_SAMPLE (64). Setting it
  /// also resets the sampling counter so "every Nth starting now" holds.
  [[nodiscard]] std::size_t sample_every() const noexcept;
  void set_sample_every(std::size_t n);

  static ProvenanceTracer& global();

 private:
  mutable std::mutex mu_;
  std::size_t sample_every_ = 0;  ///< 0 = read env on first use
  std::uint64_t next_trace_ = 1;
  std::int64_t publishes_seen_ = 0;
  std::int64_t publishes_sampled_ = 0;
  std::int64_t hops_recorded_ = 0;
  std::vector<PublishRecord> publishes_;  ///< ring, capacity kMaxPublishes
  std::vector<HopRecord> hops_;           ///< ring, capacity kMaxHops
};

/// One timed phase of a protocol/superstep round, wall-clock stamped.
/// `label`/`phase` must be string literals (stored as pointers).
struct PhaseEvent {
  const char* label = "";  ///< track, e.g. "select.round"
  const char* phase = "";  ///< slice name: "compute" | "barrier" | "deliver"
  std::uint64_t round = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
};

class TraceBuffer {
 public:
  static constexpr std::size_t kMaxEvents = 1u << 16;

  /// Appends an event (ring overwrite past the cap). SEL_OBS=off: a single
  /// branch.
  void add(const PhaseEvent& event);

  /// Oldest-first copy of the buffered events.
  [[nodiscard]] std::vector<PhaseEvent> events() const;
  [[nodiscard]] std::int64_t recorded() const noexcept;

  void reset();

  static TraceBuffer& global();

 private:
  mutable std::mutex mu_;
  std::int64_t recorded_ = 0;
  std::vector<PhaseEvent> events_;  ///< ring, capacity kMaxEvents
};

}  // namespace sel::obs
