#include "obs/report.hpp"

#include <cstdio>
#include <fstream>

namespace sel::obs {

json::Value snapshot_to_json(const Snapshot& snap) {
  json::Value::Object counters;
  for (const auto& c : snap.counters) {
    counters.emplace(c.name, json::Value(c.value));
  }
  json::Value::Object gauges;
  for (const auto& g : snap.gauges) {
    gauges.emplace(g.name, json::Value(g.value));
  }
  json::Value::Object histograms;
  for (const auto& h : snap.histograms) {
    json::Value::Object hist;
    json::Value::Array bounds;
    for (const double b : h.bounds) bounds.emplace_back(b);
    json::Value::Array counts;
    for (const std::int64_t c : h.counts) counts.emplace_back(c);
    hist.emplace("bounds", std::move(bounds));
    hist.emplace("counts", std::move(counts));
    hist.emplace("count", h.count);
    hist.emplace("sum", h.sum);
    hist.emplace("min", h.min);
    hist.emplace("max", h.max);
    histograms.emplace(h.name, std::move(hist));
  }
  json::Value::Object spans;
  for (const auto& s : snap.spans) {
    json::Value::Object span;
    span.emplace("count", s.count);
    span.emplace("total_ns", s.total_ns);
    spans.emplace(s.name, std::move(span));
  }
  json::Value::Array rounds;
  for (const auto& r : snap.rounds) {
    json::Value::Object round;
    round.emplace("label", r.label);
    round.emplace("round", r.round);
    round.emplace("compute_ms", r.compute_ms);
    round.emplace("barrier_ms", r.barrier_ms);
    round.emplace("deliver_ms", r.deliver_ms);
    round.emplace("messages", r.messages);
    rounds.emplace_back(std::move(round));
  }
  json::Value::Object out;
  out.emplace("counters", std::move(counters));
  out.emplace("gauges", std::move(gauges));
  out.emplace("histograms", std::move(histograms));
  out.emplace("spans", std::move(spans));
  out.emplace("rounds", std::move(rounds));
  return json::Value(std::move(out));
}

Snapshot snapshot_from_json(const json::Value& v) {
  Snapshot snap;
  for (const auto& [name, val] : v.at("counters").as_object()) {
    snap.counters.push_back({name, val.as_int64()});
  }
  for (const auto& [name, val] : v.at("gauges").as_object()) {
    snap.gauges.push_back({name, val.as_double()});
  }
  for (const auto& [name, val] : v.at("histograms").as_object()) {
    HistogramSnapshot h;
    h.name = name;
    for (const auto& b : val.at("bounds").as_array()) {
      h.bounds.push_back(b.as_double());
    }
    for (const auto& c : val.at("counts").as_array()) {
      h.counts.push_back(c.as_int64());
    }
    h.count = val.at("count").as_int64();
    h.sum = val.at("sum").as_double();
    h.min = val.at("min").as_double();
    h.max = val.at("max").as_double();
    snap.histograms.push_back(std::move(h));
  }
  for (const auto& [name, val] : v.at("spans").as_object()) {
    snap.spans.push_back(
        {name, val.at("count").as_int64(), val.at("total_ns").as_int64()});
  }
  for (const auto& r : v.at("rounds").as_array()) {
    RoundSample s;
    s.label = r.at("label").as_string();
    s.round = static_cast<std::uint64_t>(r.at("round").as_int64());
    s.compute_ms = r.at("compute_ms").as_double();
    s.barrier_ms = r.at("barrier_ms").as_double();
    s.deliver_ms = r.at("deliver_ms").as_double();
    s.messages = static_cast<std::uint64_t>(r.at("messages").as_int64());
    snap.rounds.push_back(std::move(s));
  }
  return snap;
}

json::Value RunReport::to_json() const {
  json::Value::Object out;
  out.emplace("schema_version", kSchemaVersion);
  out.emplace("experiment", experiment);
  out.emplace("git_describe", git_describe);
  json::Value::Object meta;
  for (const auto& [k, v] : metadata) meta.emplace(k, json::Value(v));
  out.emplace("metadata", std::move(meta));
  out.emplace("metrics", snapshot_to_json(snapshot));
  json::Value::Array series;
  for (const auto& point : timeseries) {
    json::Value::Object p;
    p.emplace("label", point.label);
    p.emplace("round", point.round);
    p.emplace("ts_us", point.ts_us);
    json::Value::Object values;
    for (const auto& [k, v] : point.values) values.emplace(k, v);
    p.emplace("values", std::move(values));
    series.emplace_back(std::move(p));
  }
  out.emplace("timeseries", std::move(series));
  json::Value::Object mem;
  for (const auto& [k, v] : memory) mem.emplace(k, json::Value(v));
  out.emplace("memory", std::move(mem));
  return json::Value(std::move(out));
}

RunReport RunReport::from_json(const json::Value& v) {
  RunReport rep;
  rep.experiment = v.at("experiment").as_string();
  rep.git_describe = v.at("git_describe").as_string();
  for (const auto& [k, val] : v.at("metadata").as_object()) {
    rep.metadata.emplace(k, val.as_string());
  }
  rep.snapshot = snapshot_from_json(v.at("metrics"));
  // Optional since schema v2 — v1 reports stay readable.
  if (v.contains("timeseries")) {
    for (const auto& p : v.at("timeseries").as_array()) {
      TimeSeriesPoint point;
      point.label = p.at("label").as_string();
      point.round = static_cast<std::uint64_t>(p.at("round").as_int64());
      point.ts_us = p.at("ts_us").as_int64();
      for (const auto& [k, val] : p.at("values").as_object()) {
        point.values.emplace(k, val.as_double());
      }
      rep.timeseries.push_back(std::move(point));
    }
  }
  // Optional since schema v3 — v1/v2 reports stay readable.
  if (v.contains("memory")) {
    for (const auto& [k, val] : v.at("memory").as_object()) {
      rep.memory.emplace(k, val.as_double());
    }
  }
  return rep;
}

bool RunReport::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << to_json().dump(2) << '\n';
  return out.good();
}

const std::string& git_describe() {
  static const std::string cached = [] {
    std::string result = "unknown";
    FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
    if (pipe != nullptr) {
      char buf[128];
      if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
        std::string line(buf);
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        if (!line.empty()) result = line;
      }
      ::pclose(pipe);
    }
    return result;
  }();
  return cached;
}

std::string report_path_for_csv(const std::string& csv_path) {
  constexpr std::string_view kExt = ".csv";
  if (csv_path.size() > kExt.size() &&
      csv_path.compare(csv_path.size() - kExt.size(), kExt.size(), kExt) ==
          0) {
    return csv_path.substr(0, csv_path.size() - kExt.size()) + ".report.json";
  }
  return csv_path + ".report.json";
}

}  // namespace sel::obs
