// RunReport: a JSON artifact describing one run — metadata (experiment name,
// profile, N, seed, rounds, git describe, scale/trials/threads) plus a full
// metrics snapshot (counters, gauges, histograms, spans, per-round
// telemetry). Bench harnesses emit `<experiment>.report.json` next to every
// CSV; `scripts/compare_reports.py` diffs two of them.
#pragma once

#include <map>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace sel::obs {

struct RunReport {
  /// Schema version for tooling; bump when the layout changes.
  /// v2: adds the `timeseries` section (per-round counter deltas + gauges
  /// from obs/sampler.hpp). v3: adds the `memory` section (flat mem.*
  /// values from obs/memory.hpp). Both optional on parse, so older
  /// reports stay readable.
  static constexpr int kSchemaVersion = 3;

  std::string experiment;  ///< e.g. "fig5_convergence"
  /// Free-form run metadata (profile, n, seed, rounds, scale, trials, ...).
  /// String-valued to keep the schema simple; numbers go through fmt.
  std::map<std::string, std::string> metadata;
  std::string git_describe;  ///< `git describe --always --dirty` or "unknown"
  Snapshot snapshot;
  /// Per-round time-series (one point per sampled protocol round).
  std::vector<TimeSeriesPoint> timeseries;
  /// End-of-run resource summary (obs::memory_values()): subsystem
  /// live/peak bytes, RSS, bytes-per-peer. Ordered map: deterministic
  /// serialization. Since schema v3.
  std::map<std::string, double> memory;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static RunReport from_json(const json::Value& v);

  /// Serializes to `path` (pretty-printed). Returns false when the file
  /// could not be opened (read-only working dir) — callers degrade like
  /// CsvWriter does.
  bool write(const std::string& path) const;
};

/// Metrics snapshot <-> JSON, shared by RunReport and the socket
/// transport's cross-process MetricsSnapshot frame (runtime/wire.hpp).
[[nodiscard]] json::Value snapshot_to_json(const Snapshot& snap);
[[nodiscard]] Snapshot snapshot_from_json(const json::Value& v);

/// `git describe --always --dirty` for the current working tree, cached for
/// the process. "unknown" when git or the repo is unavailable.
[[nodiscard]] const std::string& git_describe();

/// `<csv_path minus .csv>.report.json` (plain `path + ".report.json"` when
/// the extension is absent).
[[nodiscard]] std::string report_path_for_csv(const std::string& csv_path);

}  // namespace sel::obs
