#include "obs/sampler.hpp"

#include "common/env.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"

namespace sel::obs {

void RoundSampler::sample(std::string_view label, std::uint64_t round,
                          std::map<std::string, double> gauges) {
  if (!enabled()) return;
  // Counter totals first (registry lock), then our own state.
  auto& reg = MetricsRegistry::global();
  const auto counters = reg.counters_snapshot();

  std::lock_guard lock(mu_);
  if (epsilon_ < 0.0) {
    epsilon_ = env::get_double("SEL_STABLE_EPS", 1e-3, 0.0, 1.0);
  }

  TimeSeriesPoint point;
  point.label = std::string(label);
  point.round = round;
  point.ts_us = wall_now_us();
  point.values = std::move(gauges);

  double deliveries = 0.0;
  double relay_forwards = 0.0;
  double delivery_hops = 0.0;
  for (const auto& c : counters) {
    auto [it, inserted] = prev_counters_.try_emplace(c.name, 0);
    const auto delta = c.value - it->second;
    it->second = c.value;
    if (delta == 0) continue;
    const auto d = static_cast<double>(delta);
    point.values.emplace(c.name, d);
    if (c.name == "pubsub.deliveries") deliveries = d;
    if (c.name == "pubsub.relay_forwards") relay_forwards = d;
    if (c.name == "pubsub.delivery_hops") delivery_hops = d;
  }
  if (deliveries > 0.0) {
    point.values.emplace("relay_ratio", relay_forwards / deliveries);
    point.values.emplace("avg_route_hops", delivery_hops / deliveries);
  }

  // --mem-profile / SEL_MEM_PROFILE: fold the memory gauges into every
  // round point so per-round footprint curves come out of the same report
  // (DESIGN.md §16). Off by default — an RSS poll per round is an I/O
  // syscall benchmark inner loops should not pay unasked.
  if (mem_profile_enabled()) {
    poll_memory_gauges();
    for (const auto& [name, value] : memory_values()) {
      point.values.emplace(name, value);
    }
  }

  // Alg. 2 stability: the gauge tracks how many movement-carrying rounds
  // passed until the last one whose movement reached epsilon.
  const auto movement = point.values.find("id_movement");
  if (movement != point.values.end()) {
    ++movement_samples_;
    if (movement->second >= epsilon_) stable_after_ = movement_samples_;
    reg.gauge("select.rounds_to_stable_ids")
        .set(static_cast<double>(stable_after_));
  }

  if (points_.size() >= kMaxPoints) {
    reg.counter("obs.timeseries_dropped").add(1);
    return;
  }
  points_.push_back(std::move(point));
}

std::vector<TimeSeriesPoint> RoundSampler::snapshot() const {
  std::lock_guard lock(mu_);
  return points_;
}

std::uint64_t RoundSampler::rounds_to_stable_ids() const {
  std::lock_guard lock(mu_);
  return stable_after_;
}

double RoundSampler::stable_epsilon() const {
  std::lock_guard lock(mu_);
  return epsilon_ < 0.0 ? env::get_double("SEL_STABLE_EPS", 1e-3, 0.0, 1.0)
                        : epsilon_;
}

void RoundSampler::reset() {
  std::lock_guard lock(mu_);
  prev_counters_.clear();
  points_.clear();
  movement_samples_ = 0;
  stable_after_ = 0;
}

RoundSampler& RoundSampler::global() {
  static RoundSampler sampler;
  return sampler;
}

}  // namespace sel::obs
