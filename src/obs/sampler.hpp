// Per-round time-series: one registry snapshot per protocol round.
//
// The metrics registry answers "how much over the whole run"; the sampler
// answers "how did it evolve round by round". At each sample point it
// snapshots every counter, stores the *delta* since the previous sample
// (zero deltas are elided), merges in caller-provided gauges (id movement,
// link changes, ...) and derives round-level ratios:
//
//   relay_ratio     Δpubsub.relay_forwards / Δpubsub.deliveries
//   avg_route_hops  Δpubsub.delivery_hops  / Δpubsub.deliveries
//
// The series is attached to the RunReport as its `timeseries` section and
// rendered by scripts/trace_report.py.
//
// It also derives `select.rounds_to_stable_ids` — the number of rounds
// until Alg. 2 identifier movement falls (and stays) below epsilon
// (SEL_STABLE_EPS, default 1e-3) — published as a registry gauge after
// every sample.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sel::obs {

struct TimeSeriesPoint {
  std::string label;       ///< producer, e.g. "select.round"
  std::uint64_t round = 0; ///< producer's monotonic round index
  std::int64_t ts_us = 0;  ///< wall clock at sample time (trace epoch)
  /// Counter deltas since the previous sample (by counter name), caller
  /// gauges, and derived ratios. Ordered map: deterministic serialization.
  std::map<std::string, double> values;
};

class RoundSampler {
 public:
  /// Same bound as MetricsRegistry::kMaxRounds; later samples are counted
  /// in `obs.timeseries_dropped` instead of stored.
  static constexpr std::size_t kMaxPoints = 20'000;

  /// Snapshots the global registry and appends one point. `gauges` are
  /// stored as-is; the key "id_movement" additionally feeds the
  /// rounds-to-stable-ids derivation. SEL_OBS=off: a single branch.
  void sample(std::string_view label, std::uint64_t round,
              std::map<std::string, double> gauges = {});

  [[nodiscard]] std::vector<TimeSeriesPoint> snapshot() const;

  /// Rounds until id movement stayed below epsilon: 0 when every sampled
  /// round was already stable, N when round N-1 (0-based sample index) was
  /// the last unstable one. Also published as the registry gauge
  /// `select.rounds_to_stable_ids`.
  [[nodiscard]] std::uint64_t rounds_to_stable_ids() const;

  [[nodiscard]] double stable_epsilon() const;

  /// Clears the series and the delta baseline.
  void reset();

  static RoundSampler& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> prev_counters_;
  std::vector<TimeSeriesPoint> points_;
  std::uint64_t movement_samples_ = 0;  ///< samples carrying "id_movement"
  std::uint64_t stable_after_ = 0;      ///< rounds until movement stayed < eps
  double epsilon_ = -1.0;               ///< < 0 = read env on first use
};

}  // namespace sel::obs
