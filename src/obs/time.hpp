// Wall-clock access for instrumentation, fenced into obs/.
//
// The determinism analyzer (scripts/sel_analyze.py, DESIGN.md §15) forbids
// raw steady_clock/system_clock reads outside src/obs/: virtual time in the
// simulation and runtime subsystems must come from runtime::EventEngine,
// and the only legitimate wall-clock consumers are the observability
// timers, which never feed back into protocol behaviour. Code that wants
// to time a phase for metrics/tracing uses these helpers; the alias keeps
// call sites free of any chrono clock spelling, so the analyzer can prove
// the absence of wall-clock reads in deterministic code by inspection.
#pragma once

#include <chrono>
#include <cstdint>

namespace sel::obs {

/// Monotonic wall-clock instant for instrumentation timing. Opaque outside
/// obs/: deterministic subsystems may hold and subtract these, never mint
/// them from a clock directly.
using WallTimePoint = std::chrono::steady_clock::time_point;

/// The one sanctioned wall-clock read.
[[nodiscard]] inline WallTimePoint wall_now() noexcept {
  return std::chrono::steady_clock::now();
}

/// Nanoseconds from `start` to `end`.
[[nodiscard]] inline std::int64_t ns_between(WallTimePoint start,
                                             WallTimePoint end) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
      .count();
}

/// Milliseconds (fractional) from `start` to `end`.
[[nodiscard]] inline double ms_between(WallTimePoint start,
                                       WallTimePoint end) noexcept {
  return static_cast<double>(ns_between(start, end)) / 1e6;
}

}  // namespace sel::obs
