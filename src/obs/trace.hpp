// Scoped tracing spans: RAII wall-time accumulation per labelled phase.
//
//   void build() {
//     SEL_TRACE_SCOPE("select.build");
//     ...
//   }
//
// accumulates elapsed nanoseconds (and a hit count) into the span
// "select.build" of the global registry. The handle is looked up once (a
// function-local static), so steady-state cost is two steady_clock reads and
// one sharded relaxed add. With SEL_OBS=off the scope takes no clock reads —
// just one predictable branch.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace sel::obs {

/// RAII timer feeding a Span. Null span (observability disabled) = no-op.
class ScopedSpan {
 public:
  explicit ScopedSpan(Span& span) noexcept
      : span_(enabled() ? &span : nullptr) {
    if (span_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (span_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      span_->record_ns(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Span* span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sel::obs

#define SEL_OBS_CONCAT_INNER(a, b) a##b
#define SEL_OBS_CONCAT(a, b) SEL_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope into the global registry under `name_literal`.
#define SEL_TRACE_SCOPE(name_literal)                                     \
  static ::sel::obs::Span& SEL_OBS_CONCAT(sel_obs_span_, __LINE__) =      \
      ::sel::obs::MetricsRegistry::global().span(name_literal);           \
  ::sel::obs::ScopedSpan SEL_OBS_CONCAT(sel_obs_scope_, __LINE__)(        \
      SEL_OBS_CONCAT(sel_obs_span_, __LINE__))
