// Explicit lookahead sets L_p (paper Table I / Sec. III-E).
//
// In a deployment a peer does not see its neighbours' routing tables live;
// it holds *snapshots* exchanged through gossip ("a set of connections that
// the peer v ∈ R_p maintains"). This cache materializes those snapshots:
// routing with RouteOptions::lookahead_cache consults the snapshot instead
// of the ground truth, so stale knowledge behaves exactly as it would in a
// real network — a shortcut through a dropped link costs extra hops rather
// than silently working.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "overlay/overlay.hpp"

namespace sel::overlay {

class LookaheadCache {
 public:
  explicit LookaheadCache(const RingSubstrate& ov)
      : ov_(&ov), snapshots_(ov.num_peers()), known_(ov.num_peers(), false) {}

  /// Refreshes the snapshot of `p`'s neighbour set (ring + long links).
  void refresh(PeerId p) {
    auto list = ov_->neighbor_list(p);
    std::sort(list.begin(), list.end());
    snapshots_[p] = std::move(list);
    known_[p] = true;
  }

  void refresh_all() {
    for (PeerId p = 0; p < snapshots_.size(); ++p) refresh(p);
  }

  [[nodiscard]] bool has_snapshot(PeerId p) const { return known_[p]; }

  /// The snapshotted neighbour list (sorted); empty when unknown.
  [[nodiscard]] std::span<const PeerId> snapshot(PeerId p) const {
    static const std::vector<PeerId> kEmpty;
    return known_[p] ? std::span<const PeerId>(snapshots_[p])
                     : std::span<const PeerId>(kEmpty);
  }

  /// L_p query: does the *snapshot* of `via` contain `target`?
  /// Unknown peers answer false (no lookahead claim without knowledge).
  [[nodiscard]] bool cached_contains(PeerId via, PeerId target) const {
    if (!known_[via]) return false;
    const auto& snap = snapshots_[via];
    return std::binary_search(snap.begin(), snap.end(), target);
  }

  /// Entries in the snapshot that no longer match the live neighbour set —
  /// a staleness measure for tests and diagnostics.
  [[nodiscard]] std::size_t stale_entries(PeerId p) const {
    if (!known_[p]) return 0;
    auto live = ov_->neighbor_list(p);
    std::sort(live.begin(), live.end());
    const auto& snap = snapshots_[p];
    std::size_t divergent = 0;
    // Symmetric difference size via merge walk.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < snap.size() || j < live.size()) {
      if (j >= live.size() || (i < snap.size() && snap[i] < live[j])) {
        ++divergent;
        ++i;
      } else if (i >= snap.size() || live[j] < snap[i]) {
        ++divergent;
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    return divergent;
  }

  [[nodiscard]] std::size_t num_snapshots() const {
    std::size_t count = 0;
    for (const bool k : known_) {
      if (k) ++count;
    }
    return count;
  }

 private:
  const RingSubstrate* ov_;
  std::vector<std::vector<PeerId>> snapshots_;
  std::vector<bool> known_;
};

}  // namespace sel::overlay
