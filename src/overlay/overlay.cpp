#include "overlay/overlay.hpp"

#include "overlay/lookahead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "check/overlay_checks.hpp"

namespace sel::overlay {

RingSubstrate::RingSubstrate(std::size_t num_peers) : peers_(num_peers) {
  // Feed the mem.bytes_per_peer gauge (obs/memory.hpp). Last overlay wins,
  // which is what size sweeps want.
  obs::set_peer_count(num_peers);
}

void RingSubstrate::join(PeerId p, net::OverlayId id) {
  auto& pr = peer(p);
  if (!pr.joined) {
    pr.joined = true;
    ++joined_count_;
  }
  pr.id = id;
  pr.online = true;
}

void RingSubstrate::set_id(PeerId p, net::OverlayId id) {
  SEL_EXPECTS(peer(p).joined);
  peer(p).id = id;
}

void RingSubstrate::set_online(PeerId p, bool online) { peer(p).online = online; }

void RingSubstrate::rebuild_ring(bool online_only) {
  std::vector<PeerId> order;
  order.reserve(joined_count_);
  for (PeerId p = 0; p < peers_.size(); ++p) {
    if (!peers_[p].joined) continue;
    if (online_only && !peers_[p].online) {
      peers_[p].succ = kInvalidPeer;
      peers_[p].pred = kInvalidPeer;
      continue;
    }
    order.push_back(p);
  }
  std::sort(order.begin(), order.end(), [this](PeerId a, PeerId b) {
    if (peers_[a].id != peers_[b].id) return peers_[a].id < peers_[b].id;
    return a < b;
  });
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId p = order[i];
    if (n == 1) {
      peers_[p].succ = kInvalidPeer;
      peers_[p].pred = kInvalidPeer;
    } else {
      peers_[p].succ = order[(i + 1) % n];
      peers_[p].pred = order[(i + n - 1) % n];
    }
  }
  if (check::enabled()) {
    check::enforce(check::enabled(check::Level::kFull)
                       ? check::validate_ring(*this, online_only)
                       : check::validate_ring_sample(*this, online_only));
  }
}

bool RingSubstrate::add_long_link(PeerId from, PeerId to) {
  if (from == to) return false;
  auto& f = peer(from);
  auto& t = peer(to);
  if (!f.joined || !t.joined) return false;
  if (std::find(f.out_links.begin(), f.out_links.end(), to) !=
      f.out_links.end()) {
    return false;
  }
  f.out_links.push_back(to);
  t.in_links.push_back(from);
  if (check::enabled(check::Level::kFull)) {
    check::enforce(check::validate_peer_links(*this, from));
    check::enforce(check::validate_peer_links(*this, to));
  }
  return true;
}

bool RingSubstrate::remove_long_link(PeerId from, PeerId to) {
  auto& f = peer(from);
  const auto it = std::find(f.out_links.begin(), f.out_links.end(), to);
  if (it == f.out_links.end()) return false;
  f.out_links.erase(it);
  auto& t = peer(to);
  const auto rit = std::find(t.in_links.begin(), t.in_links.end(), from);
  SEL_ASSERT(rit != t.in_links.end());
  t.in_links.erase(rit);
  if (check::enabled(check::Level::kFull)) {
    check::enforce(check::validate_peer_links(*this, from));
    check::enforce(check::validate_peer_links(*this, to));
  }
  return true;
}

void RingSubstrate::clear_long_links(PeerId p) {
  // Copy: remove_long_link mutates the vectors we iterate.
  const std::vector<PeerId> outs(peer(p).out_links.begin(),
                                 peer(p).out_links.end());
  for (const PeerId to : outs) remove_long_link(p, to);
  const std::vector<PeerId> ins(peer(p).in_links.begin(),
                                peer(p).in_links.end());
  for (const PeerId from : ins) remove_long_link(from, p);
}

bool RingSubstrate::linked(PeerId a, PeerId b) const {
  const auto& pa = peer(a);
  if (std::find(pa.out_links.begin(), pa.out_links.end(), b) !=
      pa.out_links.end()) {
    return true;
  }
  return std::find(pa.in_links.begin(), pa.in_links.end(), b) !=
         pa.in_links.end();
}

bool RingSubstrate::neighbors_of_contains(PeerId a, PeerId b) const {
  const auto& pa = peer(a);
  return pa.succ == b || pa.pred == b || linked(a, b);
}

void RingSubstrate::for_each_neighbor(
    PeerId p, const std::function<void(PeerId)>& fn) const {
  const auto& pr = peer(p);
  // Small neighbour sets (K + 2): linear dedup beats hashing.
  std::vector<PeerId> seen;
  seen.reserve(pr.out_links.size() + pr.in_links.size() + 2);
  auto visit = [&seen, &fn](PeerId q) {
    if (q == kInvalidPeer) return;
    if (std::find(seen.begin(), seen.end(), q) != seen.end()) return;
    seen.push_back(q);
    fn(q);
  };
  visit(pr.succ);
  visit(pr.pred);
  for (const PeerId q : pr.out_links) visit(q);
  for (const PeerId q : pr.in_links) visit(q);
}

std::vector<PeerId> RingSubstrate::neighbor_list(PeerId p) const {
  std::vector<PeerId> out;
  for_each_neighbor(p, [&out](PeerId q) { out.push_back(q); });
  return out;
}

RouteResult RingSubstrate::greedy_route(PeerId src, PeerId dst,
                                  const RouteOptions& opts) const {
  RouteResult result;
  if (!peer(src).joined || !peer(dst).joined) return result;
  std::size_t max_hops = opts.max_hops;
  if (max_hops == 0) {
    const double n = std::max<double>(2.0, static_cast<double>(joined_count_));
    max_hops = static_cast<std::size_t>(4.0 * std::log2(n)) + 32;
  }

  result.path.push_back(src);
  if (src == dst) {
    result.success = true;
    result.status = RouteStatus::kOk;
    return result;
  }

  std::unordered_set<PeerId> visited{src};
  PeerId current = src;
  const net::OverlayId target = peer(dst).id;

  auto usable = [this, &opts, dst](PeerId q) {
    if (q == kInvalidPeer || !peer(q).joined) return false;
    if (opts.require_online && !peer(q).online) return false;
    if (opts.avoid != nullptr && q != dst && opts.avoid->contains(q)) {
      return false;
    }
    return true;
  };

  while (result.path.size() <= max_hops) {
    // Direct neighbour?
    if (neighbors_of_contains(current, dst) && usable(dst)) {
      result.path.push_back(dst);
      result.success = true;
      result.status = RouteStatus::kOk;
      return result;
    }

    PeerId next = kInvalidPeer;

    if (opts.lookahead) {
      // Neighbour whose own neighbour set contains dst (and that is usable):
      // guarantees delivery in two hops from here. With a cache, the claim
      // comes from the gossip snapshot and may be stale — the route then
      // simply continues from w.
      auto set_contains = [this, &opts](PeerId via, PeerId target) {
        return opts.lookahead_cache != nullptr
                   ? opts.lookahead_cache->cached_contains(via, target)
                   : neighbors_of_contains(via, target);
      };
      for_each_neighbor(current, [&](PeerId w) {
        if (next != kInvalidPeer) return;
        if (!usable(w) || visited.contains(w)) return;
        if (set_contains(w, dst)) next = w;
      });
      if (next == kInvalidPeer && opts.lookahead_depth >= 2) {
        // Depth 2: a neighbour w one of whose neighbours x connects to dst
        // (guaranteed 3 hops). Scan w's (cached) neighbour list.
        for_each_neighbor(current, [&](PeerId w) {
          if (next != kInvalidPeer) return;
          if (!usable(w) || visited.contains(w)) return;
          if (opts.lookahead_cache != nullptr) {
            for (const PeerId x : opts.lookahead_cache->snapshot(w)) {
              if (!usable(x)) continue;
              if (opts.lookahead_cache->cached_contains(x, dst)) {
                next = w;
                return;
              }
            }
          } else {
            for (const PeerId x : neighbor_list(w)) {
              if (!usable(x)) continue;
              if (neighbors_of_contains(x, dst)) {
                next = w;
                return;
              }
            }
          }
        });
      }
    }

    if (next == kInvalidPeer) {
      // Classic greedy: unvisited usable neighbour closest to the target.
      // Inside a tight id cluster ring distances tie at ~0, so break ties
      // by clockwise distance — this degenerates into an ordered ring walk
      // that always terminates at the target.
      double best = std::numeric_limits<double>::infinity();
      double best_cw = std::numeric_limits<double>::infinity();
      const double here = net::ring_distance(peer(current).id, target);
      for_each_neighbor(current, [&](PeerId w) {
        if (!usable(w) || visited.contains(w)) return;
        const double d = net::ring_distance(peer(w).id, target);
        const double cw = net::clockwise_distance(peer(w).id, target);
        if (d < best || (d == best && cw < best_cw)) {
          best = d;
          best_cw = cw;
          next = w;
        }
      });
      if (next != kInvalidPeer && !opts.allow_detour && best >= here) {
        next = kInvalidPeer;  // strict greedy: stuck at a local minimum
      }
    }

    if (next == kInvalidPeer) return result;  // dead end
    visited.insert(next);
    result.path.push_back(next);
    current = next;
    if (current == dst) {
      result.success = true;
      result.status = RouteStatus::kOk;
      return result;
    }
  }
  return result;  // TTL exceeded
}

double RingSubstrate::average_long_degree() const {
  if (joined_count_ == 0) return 0.0;
  std::size_t total = 0;
  for (const auto& p : peers_) {
    if (p.joined) total += p.out_links.size();
  }
  return static_cast<double>(total) / static_cast<double>(joined_count_);
}

}  // namespace sel::overlay
