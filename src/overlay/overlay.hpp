// The structured P2P overlay substrate shared by SELECT and the baselines
// (paper Sec. II-A).
//
// Peers carry an identifier in [0,1); every joined peer keeps two
// short-range links (ring successor/predecessor) plus a bounded set of
// long-range links. Links model TCP connections and are therefore usable in
// both directions for routing and dissemination. Greedy routing picks the
// neighbour closest to the target in ID space; optional 1-step lookahead
// (Symphony [10]) lets a peer shortcut to a neighbour that is directly
// connected to the target.
//
// This class is the *simulation* representation: it holds the global state
// that, in a deployment, would be distributed across peers. Protocol code is
// written so each peer only reads what the real protocol could know.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/flat_set.hpp"
#include "net/id_space.hpp"
#include "obs/memory.hpp"

namespace sel::check::testing {
struct Corruptor;
}

namespace sel::overlay {

using PeerId = std::uint32_t;
constexpr PeerId kInvalidPeer = static_cast<PeerId>(-1);

class LookaheadCache;

struct RouteOptions {
  /// Abort after this many hops (0 = 2*log2(n) + 16, a generous TTL).
  std::size_t max_hops = 0;
  /// Use neighbour-of-neighbour lookahead (L_p, paper Table I).
  bool lookahead = true;
  /// Lookahead depth: 1 = classic Symphony (neighbour's neighbours), 2 =
  /// SELECT's richer L_p (friends' friends' connections, Sec. III-E) —
  /// finds guaranteed 3-hop paths before falling back to greedy steps.
  std::size_t lookahead_depth = 1;
  /// Skip offline peers while routing (churn experiments).
  bool require_online = true;
  /// Permit non-improving moves (with a visited set) instead of failing at
  /// local minima; keeps routing alive under churn.
  bool allow_detour = true;
  /// Peers that must not be used as intermediate hops (multipath
  /// dissemination routes a backup path disjoint from the primary). The
  /// source and destination are always allowed. Not owned. A FlatSet so the
  /// avoidance contract stays deterministic (sel_analyze.py rules).
  const FlatSet<PeerId>* avoid = nullptr;
  /// When set, lookahead consults these gossip-maintained L_p snapshots
  /// instead of live neighbour state (see overlay/lookahead.hpp); stale
  /// knowledge then behaves as it would in a deployment. Not owned.
  const LookaheadCache* lookahead_cache = nullptr;
};

/// Why a route attempt ended the way it did. `kUnsupported` distinguishes
/// "this overlay cannot answer that kind of query" (e.g. route_avoiding on
/// an overlay without the capability) from an honest routing failure, so
/// fallback and failure land in different fault.* counters.
enum class RouteStatus : std::uint8_t {
  kNoRoute = 0,    ///< attempted and failed (dead end, TTL, offline target)
  kOk = 1,         ///< path delivered
  kUnsupported = 2 ///< query kind not supported by this overlay
};

struct RouteResult {
  bool success = false;
  RouteStatus status = RouteStatus::kNoRoute;
  /// Peers visited, src first; includes dst when success.
  std::vector<PeerId> path;

  [[nodiscard]] std::size_t hops() const noexcept {
    return path.size() <= 1 ? 0 : path.size() - 1;
  }

  /// The canonical "this overlay does not answer that query" result.
  [[nodiscard]] static RouteResult unsupported() {
    RouteResult r;
    r.status = RouteStatus::kUnsupported;
    return r;
  }
};

class RingSubstrate {
 public:
  explicit RingSubstrate(std::size_t num_peers);

  [[nodiscard]] std::size_t num_peers() const noexcept { return peers_.size(); }
  [[nodiscard]] std::size_t joined_count() const noexcept { return joined_count_; }

  // -- membership -----------------------------------------------------------
  /// Marks the peer as part of the overlay with the given identifier.
  void join(PeerId p, net::OverlayId id);
  [[nodiscard]] bool joined(PeerId p) const { return peer(p).joined; }

  // -- identifiers ----------------------------------------------------------
  [[nodiscard]] net::OverlayId id(PeerId p) const { return peer(p).id; }
  /// Changes a peer's identifier (SELECT reassignment). Ring links become
  /// stale until rebuild_ring().
  void set_id(PeerId p, net::OverlayId id);

  // -- liveness -------------------------------------------------------------
  [[nodiscard]] bool online(PeerId p) const { return peer(p).online; }
  void set_online(PeerId p, bool online);

  // -- ring (short-range links) ----------------------------------------------
  /// Recomputes successor/predecessor over all joined peers, ordered by
  /// (id, peer). O(n log n); protocols call it once per round. With
  /// `online_only`, offline peers are skipped (ring repair under churn) and
  /// their own short links are invalidated.
  void rebuild_ring(bool online_only = false);
  [[nodiscard]] PeerId successor(PeerId p) const { return peer(p).succ; }
  [[nodiscard]] PeerId predecessor(PeerId p) const { return peer(p).pred; }

  // -- long-range links -------------------------------------------------------
  /// Adds a (bidirectional-TCP) long link from -> to. Returns false when the
  /// link already exists, is a self-loop, or either end has not joined.
  bool add_long_link(PeerId from, PeerId to);
  bool remove_long_link(PeerId from, PeerId to);
  /// Drops every long link incident to p (both directions).
  void clear_long_links(PeerId p);

  [[nodiscard]] std::span<const PeerId> out_links(PeerId p) const {
    return peer(p).out_links;
  }
  [[nodiscard]] std::span<const PeerId> in_links(PeerId p) const {
    return peer(p).in_links;
  }
  [[nodiscard]] std::size_t out_degree(PeerId p) const {
    return peer(p).out_links.size();
  }
  [[nodiscard]] std::size_t in_degree(PeerId p) const {
    return peer(p).in_links.size();
  }

  /// True when a long link exists in either direction.
  [[nodiscard]] bool linked(PeerId a, PeerId b) const;

  /// True when b is reachable from a in one hop (ring or long link).
  [[nodiscard]] bool neighbors_of_contains(PeerId a, PeerId b) const;

  /// Invokes fn for every one-hop neighbour of p: succ, pred, out- and
  /// in-links (deduplicated).
  void for_each_neighbor(PeerId p,
                         const std::function<void(PeerId)>& fn) const;

  /// Materialized neighbour list (deduplicated, deterministic order).
  [[nodiscard]] std::vector<PeerId> neighbor_list(PeerId p) const;

  // -- routing ----------------------------------------------------------------
  /// Greedy route from src to dst. See RouteOptions.
  [[nodiscard]] RouteResult greedy_route(PeerId src, PeerId dst,
                                         const RouteOptions& opts = {}) const;

  /// Average out-degree over joined peers (long links only).
  [[nodiscard]] double average_long_degree() const;

 private:
  // Test backdoor: check_invariants_test seeds violations the public API
  // refuses to create (see check/corrupt.hpp).
  friend struct ::sel::check::testing::Corruptor;

  /// Per-peer link vectors are attributed to `mem.overlay`
  /// (obs/memory.hpp): with bounded long-link budgets this IS the overlay's
  /// per-node state cost, the quantity ROADMAP item 1 budgets per peer.
  using LinkVector = obs::AccountedVector<PeerId, obs::Subsystem::kOverlay>;

  struct Peer {
    net::OverlayId id;
    bool joined = false;
    bool online = true;
    PeerId succ = kInvalidPeer;
    PeerId pred = kInvalidPeer;
    LinkVector out_links;
    LinkVector in_links;
  };

  [[nodiscard]] const Peer& peer(PeerId p) const {
    SEL_EXPECTS(p < peers_.size());
    return peers_[p];
  }
  [[nodiscard]] Peer& peer(PeerId p) {
    SEL_EXPECTS(p < peers_.size());
    return peers_[p];
  }

  obs::AccountedVector<Peer, obs::Subsystem::kOverlay> peers_;
  std::size_t joined_count_ = 0;
};

}  // namespace sel::overlay
