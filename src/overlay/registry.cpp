#include "overlay/registry.hpp"

#include <string>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace sel::overlay {

OverlayRegistry& OverlayRegistry::instance() {
  static OverlayRegistry reg;
  return reg;
}

void OverlayRegistry::register_overlay(std::string name, FactoryFn factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::vector<std::string> OverlayRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, fn] : factories_) out.push_back(name);
  return out;  // std::map iterates ascending — deterministic
}

bool OverlayRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Overlay> OverlayRegistry::create(
    std::string_view name, const graph::SocialGraph& g,
    const OverlayConfig& config) const {
  const auto it = factories_.find(name);
  SEL_EXPECTS(it != factories_.end());
  preregister_overlay_metrics(name);
  return it->second(g, config);
}

void preregister_overlay_metrics(std::string_view name) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "overlay." + std::string(name);
  reg.counter(prefix + ".routes_attempted");
  reg.counter(prefix + ".routes_ok");
  reg.counter(prefix + ".routes_failed");
  reg.counter(prefix + ".maintenance_rounds");
}

}  // namespace sel::overlay
