// Self-registering overlay factory.
//
// Every overlay implementation registers a named factory at static-init
// time (SEL_REGISTER_OVERLAY); harnesses enumerate `names()` and construct
// through `create()` with an OverlayConfig options struct — no central
// if/else ladder, no positional argument list that grows with every knob.
// The bench matrix and the conformance suite iterate the registry, so a
// new overlay gets measured and invariant-checked by merely registering.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/social_graph.hpp"
#include "overlay/routing.hpp"

namespace sel::net {
class NetworkModel;
}

namespace sel::overlay {

/// Options every overlay constructor understands. Named-field initialization
/// replaces the old positional (name, g, seed, k_links, net) signature:
/// call sites say what they set, and adding a knob does not break them.
struct OverlayConfig {
  /// Master seed; every derived RNG stream forks from it deterministically.
  std::uint64_t seed = 1;
  /// Long-link / contact budget. 0 = the overlay's own default
  /// (typically log2 N).
  std::size_t k_links = 0;
  /// Shared network model (latency, availability). Overlays that need one
  /// own a private instance when null. Not owned.
  const net::NetworkModel* net = nullptr;
};

class OverlayRegistry {
 public:
  using FactoryFn = std::function<std::unique_ptr<Overlay>(
      const graph::SocialGraph&, const OverlayConfig&)>;

  static OverlayRegistry& instance();

  /// Registers `factory` under `name`. Last registration wins (tests may
  /// shadow an overlay with an instrumented variant).
  void register_overlay(std::string name, FactoryFn factory);

  /// All registered names, ascending — the deterministic iteration order
  /// for matrices and conformance suites.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Constructs the named overlay. SEL_EXPECTS-fails on unknown names (the
  /// caller-facing factory in baselines/factory.hpp gives the same
  /// contract). Pre-registers the overlay's `overlay.<name>.*` metric
  /// families so report schemas stay seed-independent.
  [[nodiscard]] std::unique_ptr<Overlay> create(
      std::string_view name, const graph::SocialGraph& g,
      const OverlayConfig& config) const;

 private:
  std::map<std::string, FactoryFn, std::less<>> factories_;
};

/// Touches the canonical `overlay.<name>.*` counter family (routes
/// attempted/ok/failed, maintenance rounds) so a report emitted before any
/// traffic still carries the full schema (PR 7/8 convention).
void preregister_overlay_metrics(std::string_view name);

/// Registers a factory at static-initialization time. `token` must be a
/// unique identifier per translation unit.
#define SEL_REGISTER_OVERLAY(token, overlay_name, ...)                       \
  namespace {                                                                \
  const bool sel_overlay_registrar_##token = [] {                            \
    ::sel::overlay::OverlayRegistry::instance().register_overlay(            \
        overlay_name, __VA_ARGS__);                                          \
    return true;                                                             \
  }();                                                                       \
  }

}  // namespace sel::overlay
