#include "overlay/routing.hpp"

namespace sel::overlay {

RingOverlay::RingOverlay(const graph::SocialGraph& g,
                         RouteOptions route_options)
    : graph_(&g), overlay_(g.num_nodes()), route_options_(route_options) {}

RouteResult RingOverlay::route(PeerId from, PeerId to) const {
  return overlay_.greedy_route(from, to, route_options_);
}

RouteResult RingOverlay::route_avoiding(PeerId from, PeerId to,
                                        const FlatSet<PeerId>& avoid) const {
  RouteOptions opts = route_options_;
  opts.avoid = &avoid;
  return overlay_.greedy_route(from, to, opts);
}

std::vector<PeerId> RingOverlay::neighbors(PeerId p) const {
  return overlay_.neighbor_list(p);
}

void RingOverlay::for_each_neighbor(
    PeerId p, const std::function<void(PeerId)>& fn) const {
  overlay_.for_each_neighbor(p, fn);
}

void RingOverlay::set_peer_online(PeerId p, bool online) {
  overlay_.set_online(p, online);
}

bool RingOverlay::peer_online(PeerId p) const { return overlay_.online(p); }

}  // namespace sel::overlay
