// The minimal routing concept every overlay under evaluation implements.
//
// `Overlay` is deliberately small: join/build, point-to-point lookup
// (`route`), one-hop neighbourhood enumeration, churn hooks, and a
// capability descriptor. Dissemination (subscriber sets, tree building,
// interest functions) lives in `overlay::PubSubSystem` (system.hpp), which
// *composes over* any Overlay instead of being inherited into each system —
// adding a new overlay means implementing this interface only.
//
// `RingOverlay` is the shared base for overlays that route greedily on the
// RingSubstrate id space (SELECT, Symphony, Vitis, OMen, the random mesh,
// the socially-aware DHT). Bayeux (prefix routing), Kelips (affinity
// groups) and Kademlia (XOR buckets) implement Overlay directly.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "common/flat_set.hpp"
#include "graph/social_graph.hpp"
#include "overlay/overlay.hpp"
#include "overlay/tree.hpp"

namespace sel::overlay {

/// What an overlay can honestly answer. Callers branch on these instead of
/// probing for failure: a query outside the capability set returns
/// RouteStatus::kUnsupported, never a silent empty result.
struct Capabilities {
  /// route_avoiding() yields avoidance-aware paths (vs kUnsupported).
  bool route_avoiding = false;
  /// neighbors() is symmetric: b ∈ neighbors(a) ⇔ a ∈ neighbors(b)
  /// (links model TCP connections usable in both directions).
  bool symmetric_neighbors = false;
  /// build() iterates to convergence; build_iterations() is meaningful
  /// (Fig. 5 only plots such systems).
  bool iterative_build = false;
  /// maintenance_round() actively repairs the topology under churn
  /// (vs only tracking liveness).
  bool churn_maintenance = false;
  /// Dissemination should prefer subscriber-first trees over this
  /// overlay's links (SELECT Sec. III-E, OMen topic-connected overlays);
  /// otherwise trees merge per-subscriber routes.
  bool subscriber_first_tree = false;
};

/// The routing concept. Implementations own their topology construction;
/// the dissemination layer and every harness talk to this interface only.
class Overlay {
 public:
  virtual ~Overlay() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const graph::SocialGraph& social() const = 0;
  [[nodiscard]] virtual Capabilities capabilities() const { return {}; }

  /// Constructs the overlay to convergence (join + topology iterations).
  virtual void build() = 0;

  /// Iterations the construction took; 0 for non-iterative systems.
  [[nodiscard]] virtual std::size_t build_iterations() const { return 0; }

  /// Social lookup: route a message from peer `from` to peer `to`
  /// (Fig. 2 measures the hop count of these).
  [[nodiscard]] virtual RouteResult route(PeerId from, PeerId to) const = 0;

  /// Route that must not traverse any peer in `avoid` (the reliability
  /// layer uses this to route around a relay its failure detector declared
  /// dead). Overlays without the capability answer kUnsupported — callers
  /// can then distinguish "no detour exists" from "cannot ask".
  [[nodiscard]] virtual RouteResult route_avoiding(
      PeerId /*from*/, PeerId /*to*/,
      const FlatSet<PeerId>& /*avoid*/) const {
    return RouteResult::unsupported();
  }

  /// One-hop neighbourhood of p, deduplicated, deterministic order.
  [[nodiscard]] virtual std::vector<PeerId> neighbors(PeerId p) const = 0;

  /// Visits every one-hop neighbour of p. Default materializes
  /// neighbors(p); ring overlays override with an allocation-free walk.
  virtual void for_each_neighbor(PeerId p,
                                 const std::function<void(PeerId)>& fn) const {
    for (const PeerId q : neighbors(p)) fn(q);
  }

  /// Churn hook: marks a peer online/offline. Systems with recovery react
  /// here (SELECT Sec. III-F, OMen shadow sets).
  virtual void set_peer_online(PeerId p, bool online) = 0;
  [[nodiscard]] virtual bool peer_online(PeerId p) const = 0;

  /// Runs one maintenance round under churn (recovery/mending). Default:
  /// nothing (capabilities().churn_maintenance is false then).
  virtual void maintenance_round() {}

  [[nodiscard]] virtual std::size_t num_peers() const {
    return social().num_nodes();
  }

  /// Overlays with a protocol-native dissemination scheme return the tree
  /// here (Bayeux builds rendezvous-root trees; there is no meaningful
  /// "generic" tree over its prefix links). nullopt → the dissemination
  /// layer composes a tree from route()/neighbors().
  [[nodiscard]] virtual std::optional<DisseminationTree> native_tree(
      PeerId /*publisher*/, const FlatSet<PeerId>& /*subscribers*/) const {
    return std::nullopt;
  }
};

/// Base for overlays whose routing runs on the shared RingSubstrate
/// (greedy id-space routing with optional lookahead).
class RingOverlay : public Overlay {
 public:
  RingOverlay(const graph::SocialGraph& g, RouteOptions route_options);

  [[nodiscard]] const graph::SocialGraph& social() const final {
    return *graph_;
  }
  [[nodiscard]] Capabilities capabilities() const override {
    Capabilities c;
    c.route_avoiding = true;
    c.symmetric_neighbors = true;
    return c;
  }
  [[nodiscard]] RouteResult route(PeerId from, PeerId to) const override;
  [[nodiscard]] RouteResult route_avoiding(
      PeerId from, PeerId to, const FlatSet<PeerId>& avoid) const override;
  [[nodiscard]] std::vector<PeerId> neighbors(PeerId p) const override;
  void for_each_neighbor(
      PeerId p, const std::function<void(PeerId)>& fn) const override;
  void set_peer_online(PeerId p, bool online) override;
  [[nodiscard]] bool peer_online(PeerId p) const override;
  [[nodiscard]] std::size_t num_peers() const override {
    return overlay_.num_peers();
  }

  /// The underlying id-space substrate (analysis, checks, serialization).
  [[nodiscard]] const RingSubstrate& overlay() const noexcept {
    return overlay_;
  }
  [[nodiscard]] RingSubstrate& overlay() noexcept { return overlay_; }

  [[nodiscard]] const RouteOptions& route_options() const noexcept {
    return route_options_;
  }

 protected:
  const graph::SocialGraph* graph_;
  RingSubstrate overlay_;
  RouteOptions route_options_;
};

}  // namespace sel::overlay
