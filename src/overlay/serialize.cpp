#include "overlay/serialize.hpp"

#include <fstream>
#include <sstream>

namespace sel::overlay {

bool save_overlay(const RingSubstrate& ov, std::ostream& out) {
  out << "selectov v1 " << ov.num_peers() << "\n";
  out.precision(17);
  for (PeerId p = 0; p < ov.num_peers(); ++p) {
    if (!ov.joined(p)) continue;
    out << "P " << p << ' ' << ov.id(p).value() << ' '
        << (ov.online(p) ? 1 : 0) << "\n";
  }
  for (PeerId p = 0; p < ov.num_peers(); ++p) {
    if (!ov.joined(p)) continue;
    for (const PeerId q : ov.out_links(p)) {
      out << "L " << p << ' ' << q << "\n";
    }
  }
  return static_cast<bool>(out);
}

bool save_overlay_file(const RingSubstrate& ov, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  return save_overlay(ov, out);
}

std::optional<RingSubstrate> load_overlay(std::istream& in) {
  std::string magic;
  std::string version;
  std::size_t n = 0;
  if (!(in >> magic >> version >> n)) return std::nullopt;
  if (magic != "selectov" || version != "v1") return std::nullopt;

  RingSubstrate ov(n);
  std::string tag;
  while (in >> tag) {
    if (tag == "P") {
      std::uint64_t p = 0;
      double id = 0.0;
      int online = 0;
      if (!(in >> p >> id >> online)) return std::nullopt;
      if (p >= n || id < 0.0 || id >= 1.0) return std::nullopt;
      ov.join(static_cast<PeerId>(p), net::OverlayId(id));
      ov.set_online(static_cast<PeerId>(p), online != 0);
    } else if (tag == "L") {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      if (!(in >> a >> b)) return std::nullopt;
      if (a >= n || b >= n) return std::nullopt;
      if (!ov.joined(static_cast<PeerId>(a)) ||
          !ov.joined(static_cast<PeerId>(b))) {
        return std::nullopt;  // links must follow their P lines
      }
      ov.add_long_link(static_cast<PeerId>(a), static_cast<PeerId>(b));
    } else {
      return std::nullopt;  // unknown record
    }
  }
  ov.rebuild_ring();
  return ov;
}

std::optional<RingSubstrate> load_overlay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  return load_overlay(in);
}

}  // namespace sel::overlay
