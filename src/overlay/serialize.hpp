// RingSubstrate snapshot serialization.
//
// A line-oriented text format ("selectov v1") capturing membership,
// identifiers, liveness and long links — enough to persist a built overlay
// and reload it later (analysis runs, warm restarts, cross-tool exchange).
// Short-range links are not stored: they are derived state
// (rebuild_ring()).
//
//   selectov v1 <num_peers>
//   P <peer> <id> <online 0|1>        one line per joined peer
//   L <from> <to>                     one line per long link
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "overlay/overlay.hpp"

namespace sel::overlay {

/// Writes the snapshot; returns false on stream failure.
bool save_overlay(const RingSubstrate& ov, std::ostream& out);

/// Convenience: save to a file path.
bool save_overlay_file(const RingSubstrate& ov, const std::string& path);

/// Parses a snapshot. Returns nullopt on malformed input (wrong magic,
/// out-of-range peers, truncated lines). The returned overlay has its ring
/// rebuilt.
[[nodiscard]] std::optional<RingSubstrate> load_overlay(std::istream& in);

[[nodiscard]] std::optional<RingSubstrate> load_overlay_file(
    const std::string& path);

}  // namespace sel::overlay
