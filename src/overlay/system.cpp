#include "overlay/system.hpp"

#include <unordered_set>
#include <vector>

namespace sel::overlay {

FlatSet<PeerId> PubSubSystem::subscribers_of(PeerId publisher) const {
  // neighbors() is CSR-ascending, so these inserts are appends.
  FlatSet<PeerId> subs;
  for (const graph::NodeId friend_id : social().neighbors(publisher)) {
    if (interest_ != nullptr && !interest_->interested(friend_id, publisher)) {
      continue;
    }
    subs.insert(friend_id);
  }
  return subs;
}

DisseminationTree PubSubSystem::build_tree(PeerId publisher) const {
  const FlatSet<PeerId> subs = subscribers_of(publisher);
  if (auto native = overlay_->native_tree(publisher, subs)) {
    return std::move(*native);
  }
  if (overlay_->capabilities().subscriber_first_tree) {
    return subscriber_first_tree(*overlay_, subs, publisher);
  }
  DisseminationTree tree(publisher);
  for (const PeerId s : subs) {
    const RouteResult r = overlay_->route(publisher, s);
    if (r.success) tree.add_path(r.path);
  }
  return tree;
}

DisseminationTree subscriber_first_tree(const Overlay& ov,
                                        const FlatSet<PeerId>& subscribers,
                                        PeerId publisher) {
  DisseminationTree tree(publisher);
  // Phase 1: flood over subscriber-to-subscriber links (plus the
  // publisher's own links). Every node on these branches is interested in
  // the message, so no relays are created.
  std::vector<PeerId> frontier{publisher};
  std::unordered_set<PeerId> reached{publisher};
  while (!frontier.empty()) {
    std::vector<PeerId> next;
    for (const PeerId u : frontier) {
      ov.for_each_neighbor(u, [&](PeerId v) {
        if (reached.contains(v)) return;
        if (!subscribers.contains(v)) return;
        if (!ov.peer_online(v)) return;
        reached.insert(v);
        tree.add_child(u, v);
        next.push_back(v);
      });
    }
    frontier = std::move(next);
  }
  // Phase 2: an unreached subscriber may hang one relay below the tree — a
  // non-subscriber connected to both a tree node and the subscriber (the
  // lookahead set L_p resolves exactly this pattern in 2 hops).
  for (const PeerId s : subscribers) {
    if (reached.contains(s)) continue;
    if (!ov.peer_online(s)) continue;
    PeerId via = kInvalidPeer;
    PeerId anchor = kInvalidPeer;
    ov.for_each_neighbor(s, [&](PeerId w) {
      if (via != kInvalidPeer) return;
      if (!ov.peer_online(w)) return;
      ov.for_each_neighbor(w, [&](PeerId t) {
        if (via != kInvalidPeer) return;
        if (tree.contains(t)) {
          via = w;
          anchor = t;
        }
      });
    });
    if (via != kInvalidPeer) {
      if (!tree.contains(via)) tree.add_child(anchor, via);
      tree.add_child(via, s);
      reached.insert(s);
    }
  }
  // Phase 3: anything still unreached gets a full overlay route from the
  // publisher; intermediate non-subscribers on those paths are the relays.
  for (const PeerId s : subscribers) {
    if (reached.contains(s)) continue;
    const RouteResult r = ov.route(publisher, s);
    if (r.success) tree.add_path(r.path);
  }
  return tree;
}

}  // namespace sel::overlay
