#include "overlay/system.hpp"

namespace sel::overlay {

FlatSet<PeerId> PubSubSystem::subscribers_of(PeerId publisher) const {
  // neighbors() is CSR-ascending, so these inserts are appends.
  FlatSet<PeerId> subs;
  for (const graph::NodeId friend_id : social().neighbors(publisher)) {
    if (interest_ != nullptr && !interest_->interested(friend_id, publisher)) {
      continue;
    }
    subs.insert(friend_id);
  }
  return subs;
}

DisseminationTree PubSubSystem::build_tree(PeerId publisher) const {
  DisseminationTree tree(publisher);
  for (const graph::NodeId s : social().neighbors(publisher)) {
    const RouteResult r = route(publisher, s);
    if (r.success) tree.add_path(r.path);
  }
  return tree;
}

DisseminationTree subscriber_first_tree(
    const Overlay& ov, const FlatSet<PeerId>& subscribers, PeerId publisher,
    const RouteOptions& route_options) {
  DisseminationTree tree(publisher);
  // Phase 1: flood over subscriber-to-subscriber links (plus the
  // publisher's own links). Every node on these branches is interested in
  // the message, so no relays are created.
  std::vector<PeerId> frontier{publisher};
  std::unordered_set<PeerId> reached{publisher};
  while (!frontier.empty()) {
    std::vector<PeerId> next;
    for (const PeerId u : frontier) {
      ov.for_each_neighbor(u, [&](PeerId v) {
        if (reached.contains(v)) return;
        if (!subscribers.contains(v)) return;
        if (route_options.require_online && !ov.online(v)) return;
        reached.insert(v);
        tree.add_child(u, v);
        next.push_back(v);
      });
    }
    frontier = std::move(next);
  }
  // Phase 2: an unreached subscriber may hang one relay below the tree — a
  // non-subscriber connected to both a tree node and the subscriber (the
  // lookahead set L_p resolves exactly this pattern in 2 hops).
  for (const PeerId s : subscribers) {
    if (reached.contains(s)) continue;
    if (route_options.require_online && !ov.online(s)) continue;
    PeerId via = kInvalidPeer;
    PeerId anchor = kInvalidPeer;
    ov.for_each_neighbor(s, [&](PeerId w) {
      if (via != kInvalidPeer) return;
      if (route_options.require_online && !ov.online(w)) return;
      ov.for_each_neighbor(w, [&](PeerId t) {
        if (via != kInvalidPeer) return;
        if (tree.contains(t)) {
          via = w;
          anchor = t;
        }
      });
    });
    if (via != kInvalidPeer) {
      if (!tree.contains(via)) tree.add_child(anchor, via);
      tree.add_child(via, s);
      reached.insert(s);
    }
  }
  // Phase 3: anything still unreached gets a full overlay route from the
  // publisher; intermediate non-subscribers on those paths are the relays.
  for (const PeerId s : subscribers) {
    if (reached.contains(s)) continue;
    const RouteResult r = ov.greedy_route(publisher, s, route_options);
    if (r.success) tree.add_path(r.path);
  }
  return tree;
}

RingBasedSystem::RingBasedSystem(const graph::SocialGraph& g,
                                 RouteOptions route_options)
    : graph_(&g), overlay_(g.num_nodes()), route_options_(route_options) {}

RouteResult RingBasedSystem::route(PeerId from, PeerId to) const {
  return overlay_.greedy_route(from, to, route_options_);
}

RouteResult RingBasedSystem::route_avoiding(
    PeerId from, PeerId to, const std::unordered_set<PeerId>& avoid) const {
  RouteOptions opts = route_options_;
  opts.avoid = &avoid;
  return overlay_.greedy_route(from, to, opts);
}

void RingBasedSystem::set_peer_online(PeerId p, bool online) {
  overlay_.set_online(p, online);
}

bool RingBasedSystem::peer_online(PeerId p) const {
  return overlay_.online(p);
}

}  // namespace sel::overlay
