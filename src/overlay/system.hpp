// The common interface every pub/sub system under evaluation implements
// (SELECT plus the Symphony, Bayeux, Vitis and OMen baselines).
//
// A system owns its overlay construction; the evaluation harnesses only use
// this interface, so every figure compares all five systems symmetrically.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_set>

#include "common/flat_set.hpp"
#include "graph/social_graph.hpp"
#include "overlay/overlay.hpp"
#include "overlay/tree.hpp"

namespace sel::overlay {

/// The interest function f : S x B -> {true,false} of the pub/sub model
/// (paper Sec. II-B). A friend that is not interested does not subscribe.
class InterestFunction {
 public:
  virtual ~InterestFunction() = default;
  [[nodiscard]] virtual bool interested(PeerId subscriber,
                                        PeerId publisher) const = 0;
};

class PubSubSystem {
 public:
  virtual ~PubSubSystem() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const graph::SocialGraph& social() const = 0;

  /// Constructs the overlay to convergence (join + topology iterations).
  virtual void build() = 0;

  /// Iterations the construction took; 0 for non-iterative systems
  /// (Symphony, Bayeux — excluded from Fig. 5 for that reason).
  [[nodiscard]] virtual std::size_t build_iterations() const = 0;

  /// Social lookup: route a message from peer `from` to peer `to`
  /// (Fig. 2 measures the hop count of these).
  [[nodiscard]] virtual RouteResult route(PeerId from, PeerId to) const = 0;

  /// Dissemination tree from `publisher` to all its subscribers (its social
  /// friends, paper Sec. II-B). Unreachable subscribers are simply absent.
  [[nodiscard]] virtual DisseminationTree build_tree(PeerId publisher) const;

  /// Route that must not traverse any peer in `avoid` (the reliability
  /// layer uses this to route around a relay its failure detector declared
  /// dead). Default: unsupported — returns a failed route; ring-based
  /// systems answer with an avoidance-aware greedy route.
  [[nodiscard]] virtual RouteResult route_avoiding(
      PeerId /*from*/, PeerId /*to*/,
      const std::unordered_set<PeerId>& /*avoid*/) const {
    return {};
  }

  /// Churn hook: marks a peer online/offline. Systems with recovery react
  /// here (SELECT Sec. III-F, OMen shadow sets); default adjusts liveness
  /// only.
  virtual void set_peer_online(PeerId p, bool online) = 0;
  [[nodiscard]] virtual bool peer_online(PeerId p) const = 0;

  /// Runs one maintenance round under churn (recovery/mending). Default:
  /// nothing.
  virtual void maintenance_round() {}

  /// The subscriber set S_b of a publisher: its social friends, filtered by
  /// the interest function when one is installed (f ≡ true otherwise,
  /// matching the paper's evaluation). Ascending-ordered so every loop over
  /// it (tree construction, delivery accounting, report metrics) is
  /// deterministic.
  [[nodiscard]] FlatSet<PeerId> subscribers_of(PeerId publisher) const;

  /// Installs an interest function (not owned; may be null to reset).
  void set_interest_function(const InterestFunction* f) { interest_ = f; }
  [[nodiscard]] const InterestFunction* interest_function() const noexcept {
    return interest_;
  }

 private:
  const InterestFunction* interest_ = nullptr;
};

/// Subscriber-first tree construction: BFS from the publisher over overlay
/// links *between subscribers* (a subscriber that received the message
/// forwards it to fellow subscribers it is directly connected to — zero
/// relay nodes on those branches), then route any unreached subscriber
/// through the overlay. SELECT (Sec. III-E, lookahead trees over friend
/// links) and OMen (topic-connected overlays) disseminate this way.
[[nodiscard]] DisseminationTree subscriber_first_tree(
    const Overlay& ov, const FlatSet<PeerId>& subscribers, PeerId publisher,
    const RouteOptions& route_options);

/// Base for systems whose routing runs on the shared Overlay substrate
/// (SELECT, Symphony, Vitis, OMen). Bayeux routes on digit prefixes and
/// implements PubSubSystem directly.
class RingBasedSystem : public PubSubSystem {
 public:
  RingBasedSystem(const graph::SocialGraph& g, RouteOptions route_options);

  [[nodiscard]] const graph::SocialGraph& social() const final {
    return *graph_;
  }
  [[nodiscard]] RouteResult route(PeerId from, PeerId to) const override;
  [[nodiscard]] RouteResult route_avoiding(
      PeerId from, PeerId to,
      const std::unordered_set<PeerId>& avoid) const override;
  void set_peer_online(PeerId p, bool online) override;
  [[nodiscard]] bool peer_online(PeerId p) const override;

  [[nodiscard]] const Overlay& overlay() const noexcept { return overlay_; }
  [[nodiscard]] Overlay& overlay() noexcept { return overlay_; }

 protected:
  const graph::SocialGraph* graph_;
  Overlay overlay_;
  RouteOptions route_options_;
};

}  // namespace sel::overlay
