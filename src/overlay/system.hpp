// The dissemination layer: subscriber sets, interest functions and
// dissemination-tree construction, composed over *any* Overlay
// (overlay/routing.hpp) rather than inherited into each system.
//
// A PubSubSystem wraps one Overlay (owning or borrowing) and derives the
// pub/sub behaviour from the overlay's capabilities: a native tree when
// the protocol defines one (Bayeux rendezvous roots), a subscriber-first
// tree when the overlay's links make that profitable (SELECT, OMen), and a
// per-subscriber route merge otherwise. The evaluation harnesses only use
// this class, so every figure compares all systems symmetrically.
#pragma once

#include <memory>
#include <string_view>

#include "common/flat_set.hpp"
#include "graph/social_graph.hpp"
#include "overlay/routing.hpp"
#include "overlay/tree.hpp"

namespace sel::overlay {

/// The interest function f : S x B -> {true,false} of the pub/sub model
/// (paper Sec. II-B). A friend that is not interested does not subscribe.
class InterestFunction {
 public:
  virtual ~InterestFunction() = default;
  [[nodiscard]] virtual bool interested(PeerId subscriber,
                                        PeerId publisher) const = 0;
};

class PubSubSystem {
 public:
  /// Borrows an overlay owned elsewhere (tests/benches that construct the
  /// concrete type directly). The overlay must outlive this object.
  explicit PubSubSystem(Overlay& ov) : overlay_(&ov) {}

  /// Takes ownership (factory-made systems).
  explicit PubSubSystem(std::unique_ptr<Overlay> ov)
      : owned_(std::move(ov)), overlay_(owned_.get()) {}

  // -- forwarded routing surface ---------------------------------------------
  [[nodiscard]] std::string_view name() const { return overlay_->name(); }
  [[nodiscard]] const graph::SocialGraph& social() const {
    return overlay_->social();
  }
  [[nodiscard]] Capabilities capabilities() const {
    return overlay_->capabilities();
  }
  void build() { overlay_->build(); }
  [[nodiscard]] std::size_t build_iterations() const {
    return overlay_->build_iterations();
  }
  [[nodiscard]] RouteResult route(PeerId from, PeerId to) const {
    return overlay_->route(from, to);
  }
  [[nodiscard]] RouteResult route_avoiding(
      PeerId from, PeerId to, const FlatSet<PeerId>& avoid) const {
    return overlay_->route_avoiding(from, to, avoid);
  }
  void set_peer_online(PeerId p, bool online) {
    overlay_->set_peer_online(p, online);
  }
  [[nodiscard]] bool peer_online(PeerId p) const {
    return overlay_->peer_online(p);
  }
  void maintenance_round() { overlay_->maintenance_round(); }
  [[nodiscard]] std::size_t num_peers() const {
    return overlay_->num_peers();
  }

  [[nodiscard]] const Overlay& overlay() const noexcept { return *overlay_; }
  [[nodiscard]] Overlay& overlay() noexcept { return *overlay_; }

  // -- dissemination ---------------------------------------------------------
  /// The subscriber set S_b of a publisher: its social friends, filtered by
  /// the interest function when one is installed (f ≡ true otherwise,
  /// matching the paper's evaluation). Ascending-ordered so every loop over
  /// it (tree construction, delivery accounting, report metrics) is
  /// deterministic.
  [[nodiscard]] FlatSet<PeerId> subscribers_of(PeerId publisher) const;

  /// Dissemination tree from `publisher` to all its subscribers.
  /// Unreachable subscribers are simply absent. Composition order:
  /// native_tree() hook → subscriber-first construction (capability) →
  /// per-subscriber route merge.
  [[nodiscard]] DisseminationTree build_tree(PeerId publisher) const;

  /// Installs an interest function (not owned; may be null to reset).
  void set_interest_function(const InterestFunction* f) { interest_ = f; }
  [[nodiscard]] const InterestFunction* interest_function() const noexcept {
    return interest_;
  }

 private:
  std::unique_ptr<Overlay> owned_;
  Overlay* overlay_;
  const InterestFunction* interest_ = nullptr;
};

/// Subscriber-first tree construction: BFS from the publisher over overlay
/// links *between subscribers* (a subscriber that received the message
/// forwards it to fellow subscribers it is directly connected to — zero
/// relay nodes on those branches), then one-relay lookahead patches, then a
/// full overlay route for anything still unreached. SELECT (Sec. III-E,
/// lookahead trees over friend links) and OMen (topic-connected overlays)
/// disseminate this way. Offline peers never enter the tree.
[[nodiscard]] DisseminationTree subscriber_first_tree(
    const Overlay& ov, const FlatSet<PeerId>& subscribers, PeerId publisher);

}  // namespace sel::overlay
