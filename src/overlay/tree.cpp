#include "overlay/tree.hpp"

#include "common/assert.hpp"

namespace sel::overlay {

const std::vector<PeerId> DisseminationTree::kNoChildren{};

DisseminationTree::DisseminationTree(PeerId root) : root_(root) {
  order_.push_back(root);
}

void DisseminationTree::add_path(std::span<const PeerId> path) {
  if (path.empty()) return;
  SEL_EXPECTS(path.front() == root_);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const PeerId node = path[i];
    const PeerId via = path[i - 1];
    if (node == root_ || parent_.contains(node)) continue;
    // `via` is guaranteed present: it is either the root or was inserted in
    // the previous iteration of this same walk.
    SEL_ASSERT(contains(via));
    parent_.emplace(node, via);
    children_[via].push_back(node);
    order_.push_back(node);
  }
}

void DisseminationTree::add_child(PeerId parent, PeerId child) {
  SEL_EXPECTS(contains(parent));
  if (child == root_ || parent_.contains(child)) return;
  parent_.emplace(child, parent);
  children_[parent].push_back(child);
  order_.push_back(child);
}

PeerId DisseminationTree::parent(PeerId p) const {
  const auto it = parent_.find(p);
  return it == parent_.end() ? kInvalidPeer : it->second;
}

std::span<const PeerId> DisseminationTree::children(PeerId p) const {
  const auto it = children_.find(p);
  if (it == children_.end()) return kNoChildren;
  return it->second;
}

std::size_t DisseminationTree::depth(PeerId p) const {
  if (!contains(p)) return static_cast<std::size_t>(-1);
  std::size_t d = 0;
  PeerId cur = p;
  while (cur != root_) {
    cur = parent_.at(cur);
    ++d;
  }
  return d;
}

std::vector<PeerId> DisseminationTree::relay_nodes(
    const FlatSet<PeerId>& subscribers) const {
  std::vector<PeerId> relays;
  for (const PeerId node : order_) {
    if (node == root_) continue;
    if (!subscribers.contains(node)) relays.push_back(node);
  }
  return relays;
}

}  // namespace sel::overlay
