// Dissemination (routing) tree RT_b for a publisher b (paper Sec. II-B).
//
// The tree is assembled by merging the overlay route from the publisher to
// each subscriber: a node's parent is fixed by the first route that reaches
// it, so every node has exactly one parent and the structure stays a tree.
// Relay accounting follows the paper: a relay node is a peer that forwards a
// message it is not itself subscribed to.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_set.hpp"
#include "obs/memory.hpp"
#include "overlay/overlay.hpp"

namespace sel::check::testing {
struct Corruptor;
}

namespace sel::overlay {

class DisseminationTree {
 public:
  explicit DisseminationTree(PeerId root);

  [[nodiscard]] PeerId root() const noexcept { return root_; }

  /// Merges a route path (path[0] must equal root()). Nodes already in the
  /// tree keep their existing parent.
  void add_path(std::span<const PeerId> path);

  /// Attaches `child` under `parent` (which must already be in the tree).
  /// No-op when child is already present.
  void add_child(PeerId parent, PeerId child);

  [[nodiscard]] bool contains(PeerId p) const {
    return p == root_ || parent_.contains(p);
  }
  /// kInvalidPeer for the root or for nodes outside the tree.
  [[nodiscard]] PeerId parent(PeerId p) const;
  [[nodiscard]] std::span<const PeerId> children(PeerId p) const;

  /// Number of nodes including the root.
  [[nodiscard]] std::size_t node_count() const noexcept {
    return parent_.size() + 1;
  }

  /// All nodes, root first, in insertion (delivery) order.
  [[nodiscard]] const std::vector<PeerId>& nodes() const noexcept {
    return order_;
  }

  /// Messages forwarded by p = number of children (each child is one send).
  [[nodiscard]] std::size_t forward_count(PeerId p) const {
    return children(p).size();
  }

  /// Depth of p (root = 0); SIZE_MAX when p is not in the tree.
  [[nodiscard]] std::size_t depth(PeerId p) const;

  /// Nodes that are neither the root nor in `subscribers` — pure relays.
  [[nodiscard]] std::vector<PeerId> relay_nodes(
      const FlatSet<PeerId>& subscribers) const;

 private:
  // Test backdoor for seeding invariant violations (check/corrupt.hpp).
  friend struct ::sel::check::testing::Corruptor;

  /// Node tables attributed to `mem.overlay` — trees are per-publisher
  /// state the dissemination layer caches, so their footprint matters at
  /// scale. Lookup-only access (never iterated; order_ carries ordering).
  template <typename V>
  using NodeMap = std::unordered_map<
      PeerId, V, std::hash<PeerId>, std::equal_to<PeerId>,
      obs::Tagged<std::pair<const PeerId, V>, obs::Subsystem::kOverlay>>;

  PeerId root_;
  NodeMap<PeerId> parent_;
  NodeMap<std::vector<PeerId>> children_;
  std::vector<PeerId> order_;
  static const std::vector<PeerId> kNoChildren;
};

}  // namespace sel::overlay
