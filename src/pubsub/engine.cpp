#include "pubsub/engine.hpp"

#include <algorithm>
#include <iterator>

#include "check/mailbox_checks.hpp"
#include "check/memory_checks.hpp"
#include "check/tree_checks.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "pubsub/mailbox.hpp"

namespace sel::pubsub {

using overlay::DisseminationTree;
using overlay::PeerId;

namespace {

// Message-plane telemetry (naming: `pubsub.*`). Aggregated across every
// engine instance in the process, unlike the per-engine EngineStats.
obs::Counter& publishes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.publishes");
  return c;
}

obs::Counter& deliveries_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.deliveries");
  return c;
}

obs::Counter& relay_forwards_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.relay_forwards");
  return c;
}

obs::Counter& tree_builds_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.tree_builds");
  return c;
}

// Sum of tree depths at which deliveries land; divided by
// `pubsub.deliveries` this yields the average route length per round in
// the sampler (obs/sampler.cpp).
obs::Counter& delivery_hops_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.delivery_hops");
  return c;
}

// Reliability-layer telemetry, live only when a fault plan or retry policy
// is attached.
obs::Counter& retries_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.retries");
  return c;
}

obs::Counter& retry_exhausted_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.retry_exhausted");
  return c;
}

obs::Counter& failovers_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.failovers");
  return c;
}

obs::Counter& replays_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.replays");
  return c;
}

obs::Counter& duplicates_suppressed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.duplicates_suppressed");
  return c;
}

obs::Counter& missed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.missed");
  return c;
}

obs::Counter& replay_evicted_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.replay_evicted");
  return c;
}

obs::Counter& replay_dropped_crash_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.replay_dropped_crash");
  return c;
}

obs::Counter& mailbox_replays_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.mailbox_replays");
  return c;
}

// Detour outcomes (fault.* family: reliability-plane telemetry). An
// unsupported answer means the overlay cannot route around peers at all
// (capability absent) — a different signal from a detour that was attempted
// and found no live path.
obs::Counter& route_avoid_failed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.route_avoid_failed");
  return c;
}

obs::Counter& route_avoid_unsupported_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.route_avoid_unsupported");
  return c;
}

// Messages whose dissemination still has events pending — the protocol-side
// in-flight picture next to the transport-side runtime.queue_depth.
obs::Gauge& in_flight_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("runtime.in_flight_messages");
  return g;
}

// Failover resends must not replay the fate sequence the primary route
// already consumed on a shared edge (a direct-link subscriber's backup IS
// its primary): offsetting the attempt index gives failover hops an
// independent fault stream. max_attempts is far below this.
constexpr std::uint32_t kFailoverAttemptBase = 1u << 16;

}  // namespace

RetryPolicy RetryPolicy::from_env() {
  warn_unknown_sel_env_once();
  RetryPolicy p;
  p.enabled = env::get_bool("SEL_RETRY", true);
  p.ack_timeout_s =
      env::get_double("SEL_RETRY_TIMEOUT_S", p.ack_timeout_s, 1e-6, 1e6);
  p.backoff = env::get_double("SEL_RETRY_BACKOFF", p.backoff, 1.0, 1e3);
  p.jitter = env::get_double("SEL_RETRY_JITTER", p.jitter, 0.0, 1.0);
  p.max_attempts = static_cast<std::size_t>(env::get_int(
      "SEL_RETRY_MAX", static_cast<std::int64_t>(p.max_attempts), 1, 1024));
  p.replay_cap = static_cast<std::size_t>(env::get_int(
      "SEL_REPLAY_CAP", static_cast<std::int64_t>(p.replay_cap), 0,
      std::int64_t{1} << 32));
  return p;
}

NotificationEngine::NotificationEngine(const overlay::PubSubSystem& sys,
                                       const net::NetworkModel& net,
                                       double payload_bytes)
    : sys_(&sys),
      net_(&net),
      payload_bytes_(payload_bytes),
      runtime_opts_(runtime::Options::from_env()),
      queue_(runtime_opts_.tie_seed),
      default_transport_(std::make_unique<runtime::InProcTransport>(
          queue_, net, runtime_opts_)) {
  SEL_EXPECTS(payload_bytes > 0.0);
  // Pre-register the replay-lifecycle counters the durability tier reports
  // on, so chaos report schemas don't depend on whether a given seed ever
  // evicted or dropped an entry.
  replay_evicted_counter();
  replay_dropped_crash_counter();
  mailbox_replays_counter();
  route_avoid_failed_counter();
  route_avoid_unsupported_counter();
}

void NotificationEngine::set_runtime_options(runtime::Options options) {
  // Mid-flight reconfiguration would change pending arrival times under the
  // protocol's feet; the engine must be quiescent and unused.
  SEL_EXPECTS(next_id_ == 1 && queue_.idle());
  runtime_opts_ = options;
  queue_ = runtime::EventEngine(options.tie_seed);
  default_transport_ = std::make_unique<runtime::InProcTransport>(
      queue_, *net_, options, fault_);
}

MessageId NotificationEngine::publish(PeerId publisher, double time_s) {
  SEL_EXPECTS(time_s >= queue_.now_s());
  const MessageId id = next_id_++;

  publishes_counter().add(1);
  // Tree: cached per publisher until invalidate_trees().
  auto cached = tree_cache_.find(publisher);
  if (cached == tree_cache_.end()) {
    SEL_TRACE_SCOPE("pubsub.build_tree");
    ++stats_.tree_cache_misses;
    tree_builds_counter().add(1);
    cached = tree_cache_.emplace(publisher, sys_->build_tree(publisher)).first;
    // Every freshly built dissemination tree must be acyclic with one
    // parent per node — the structure exactly-once delivery rides on.
    if (check::enabled(check::Level::kFull)) {
      check::enforce(check::validate_tree(cached->second));
    }
  } else {
    ++stats_.tree_cache_hits;
  }

  InFlight flight{cached->second, sys_->subscribers_of(publisher), 0, 0, {}};

  MessageRecord rec;
  rec.id = id;
  rec.publisher = publisher;
  rec.trace = obs::ProvenanceTracer::global().begin_publish(id, publisher,
                                                            time_s);
  rec.publish_time_s = time_s;
  // max_deliveries is maintained even with SEL_CHECK off (one increment in
  // a loop that runs anyway) so flipping the level mid-flight cannot seed a
  // stale bound.
  for (const PeerId s : flight.subscribers) {
    if (!flight.tree.contains(s)) continue;
    ++flight.max_deliveries;
    if (sys_->peer_online(s)) ++rec.wanted;
  }
  stats_.wanted += rec.wanted;
  ++stats_.messages_published;

  records_.emplace(id, rec);
  auto& stored = in_flight_.emplace(id, std::move(flight)).first->second;
  in_flight_gauge().set(static_cast<double>(in_flight_.size()));
  // SEL_MEM_BUDGET: publish grows the message plane's tracked state, so it
  // is the natural soft-fail point (two relaxed loads when the knob is off).
  check::check_memory_budget();
  // Store-and-forward: subscribers offline right now (in the tree or not)
  // get the message queued for replay on their return.
  if (retry_.enabled && retry_.replay) {
    for (const PeerId s : stored.subscribers) {
      if (!sys_->peer_online(s)) mark_missed(id, s, time_s);
    }
  }
  stored.pending_events = 1;  // the initial forward below
  queue_.schedule(time_s, [this, id, publisher](double now) {
    forward(id, publisher, now, 0);
    finish_event(id);
  });
  return id;
}

void NotificationEngine::finish_event(MessageId id) {
  const auto it = in_flight_.find(id);
  SEL_ASSERT(it != in_flight_.end());
  SEL_ASSERT(it->second.pending_events > 0);
  if (--it->second.pending_events == 0) {
    in_flight_.erase(it);
    in_flight_gauge().set(static_cast<double>(in_flight_.size()));
  }
}

void NotificationEngine::forward(MessageId id, PeerId node, double start_s,
                                 std::uint32_t depth) {
  const auto flight_it = in_flight_.find(id);
  SEL_ASSERT(flight_it != in_flight_.end());
  auto& flight = flight_it->second;
  auto& rec = records_.at(id);

  const auto kids = flight.tree.children(node);
  if (kids.empty()) return;
  // A forwarding non-subscriber is a relay (the publisher itself excluded).
  if (node != rec.publisher && !flight.subscribers.contains(node)) {
    ++rec.relay_forwards;
    ++stats_.relay_forwards;
    relay_forwards_counter().add(1);
  }
  if (reliable()) {
    for (const PeerId child : kids) {
      send_hop(id, node, child, depth + 1, /*attempt=*/0, start_s,
               kids.size());
    }
    return;
  }
  // Perfect transfer plane: every scheduled hop arrives, delivery is
  // exactly-once by tree structure. This branch is byte-identical to the
  // pre-reliability engine (on the default async runtime; superstep mode
  // quantizes arrivals to round boundaries inside the transport).
  // Simultaneous sends split the uplink across all children.
  for (const PeerId child : kids) {
    runtime::Message m;
    m.msg = id;
    m.from = node;
    m.to = child;
    m.payload_bytes = payload_bytes_;
    m.send_s = start_s;
    m.uplink_share = static_cast<std::uint32_t>(kids.size());
    const runtime::SendOutcome outcome = transport().send(
        m, [this, id, child, depth](const runtime::Arrival& a) {
          const double now = a.arrive_s;
          auto& r = records_.at(id);
          const auto f = in_flight_.find(id);
          SEL_ASSERT(f != in_flight_.end());
          if (f->second.subscribers.contains(child) &&
              sys_->peer_online(child)) {
            ++r.delivered;
            ++stats_.deliveries;
            deliveries_counter().add(1);
            delivery_hops_counter().add(static_cast<std::int64_t>(depth) + 1);
            static obs::Histogram& latency_hist =
                obs::MetricsRegistry::global().histogram(
                    "pubsub.delivery_latency_s");
            const double latency = now - r.publish_time_s;
            latency_hist.observe(latency);
            r.delivery_latency_s.add(latency);
            stats_.delivery_latency_s.add(latency);
            if (r.delivered >= r.wanted) r.completed_at_s = now;
            if (check::enabled()) {
              check::enforce(check::validate_delivery_count(
                  r.delivered, f->second.max_deliveries, r.wanted,
                  r.completed_at_s.has_value()));
            }
          }
          forward(id, child, now, depth + 1);
          finish_event(id);
        });
    // No fault plan reaches this branch (reliable() would be true), so the
    // hop always lands, exactly once.
    SEL_ASSERT(!outcome.dropped && outcome.copies == 1);
    flight.pending_events += outcome.copies;
    if (rec.trace != 0) {
      obs::HopRecord hop;
      hop.trace = rec.trace;
      hop.msg = id;
      hop.from = node;
      hop.to = child;
      hop.depth = depth + 1;
      // Relay status of the *receiver*: a non-subscriber that will forward
      // onward (non-subscriber leaves do not occur in subscriber-first
      // trees, so this matches tree.relay_nodes()).
      hop.relay = !flight.subscribers.contains(child) &&
                  !flight.tree.children(child).empty();
      hop.delivered =
          flight.subscribers.contains(child) && sys_->peer_online(child);
      hop.send_s = start_s;
      hop.arrive_s = outcome.arrive_s;
      obs::ProvenanceTracer::global().record_hop(hop);
    }
  }
}

// ---------------------------------------------------------------------------
// Reliable-mode hop pipeline.
//
// Ack/timeout model: attempt k of a hop is sent at t0 with deadline
// t0 + timeout_for(k). A dropped message is detected at the deadline; an
// unresponsive receiver (stalled, crashed, churned offline) is detected at
// max(arrival, deadline). Detection either resends (attempt k+1, backoff
// grows the deadline) or — budget exhausted — declares the subtree lost.
// The sender's timer is lazy: a slow-but-successful arrival never spuriously
// retries, so each attempt has exactly one outcome and no ack-state table
// is needed. Duplicate deliveries still occur via the fault plan's
// duplicate class and are suppressed at the receiver.
//
// The wire itself — transfer times, hop fates, receiver-state draws — lives
// behind runtime::Transport; the engine owns the protocol reaction to each
// SendOutcome/Arrival. In superstep mode protocol timers (ack deadlines,
// resends) are quantized to round boundaries via timer_time().
// ---------------------------------------------------------------------------

void NotificationEngine::record_hop(const MessageRecord& rec, PeerId from,
                                    PeerId to, std::uint32_t depth,
                                    std::uint32_t attempt, bool failover,
                                    bool relay, bool delivered, double send_s,
                                    double arrive_s) const {
  if (rec.trace == 0) return;
  obs::HopRecord hop;
  hop.trace = rec.trace;
  hop.msg = rec.id;
  hop.from = from;
  hop.to = to;
  hop.depth = depth;
  hop.attempt = attempt;
  hop.failover = failover;
  hop.relay = relay;
  hop.delivered = delivered;
  hop.send_s = send_s;
  hop.arrive_s = arrive_s;
  obs::ProvenanceTracer::global().record_hop(hop);
}

double NotificationEngine::timeout_for(MessageId id, PeerId to,
                                       std::uint32_t attempt) const {
  double t = retry_.ack_timeout_s;
  for (std::uint32_t i = 0; i < attempt; ++i) t *= retry_.backoff;
  // Deterministic jitter: a pure hash of (message, receiver, attempt), so
  // same-seed runs time out identically while concurrent retries to one
  // congested peer still spread out.
  std::uint64_t h = splitmix64(0x72657472794a6974ULL ^ id);
  h = splitmix64(h ^ to);
  h = splitmix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return t * (1.0 + retry_.jitter * u);
}

void NotificationEngine::send_hop(MessageId id, PeerId from, PeerId to,
                                  std::uint32_t depth, std::uint32_t attempt,
                                  double start_s, std::size_t share) {
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  runtime::Message m;
  m.msg = id;
  m.from = from;
  m.to = to;
  m.fault_attempt = attempt;
  m.payload_bytes = payload_bytes_;
  m.send_s = start_s;
  m.uplink_share = static_cast<std::uint32_t>(share);
  const runtime::SendOutcome outcome = transport().send(
      m, [this, id, from, to, depth, attempt,
          start_s](const runtime::Arrival& a) {
        deliver_hop(id, from, to, depth, attempt, start_s, a.arrive_s,
                    a.receiver);
        finish_event(id);
      });
  record_hop(rec, from, to, depth, attempt, /*failover=*/false,
             !flight.subscribers.contains(to) &&
                 !flight.tree.children(to).empty(),
             flight.subscribers.contains(to) && !outcome.dropped, start_s,
             outcome.arrive_s);
  if (outcome.dropped) {
    // No arrival event; the sender notices the missing ack at the deadline.
    ++flight.pending_events;
    queue_.schedule(timer_time(start_s + timeout_for(id, to, attempt)),
                    [this, id, from, to, depth, attempt,
                     start_s](double now) {
                      handle_hop_failure(id, from, to, depth, attempt,
                                         start_s, now);
                      finish_event(id);
                    });
    return;
  }
  flight.pending_events += outcome.copies;
}

void NotificationEngine::deliver_hop(MessageId id, PeerId from, PeerId to,
                                     std::uint32_t depth,
                                     std::uint32_t attempt, double send_s,
                                     double now_s,
                                     fault::ReceiveState receiver_state) {
  auto& flight = in_flight_.at(id);
  const bool responsive = receiver_state == fault::ReceiveState::kOk &&
                          sys_->peer_online(to);
  if (!responsive) {
    handle_hop_failure(id, from, to, depth, attempt, send_s, now_s);
    return;
  }
  if (observer_) observer_(to, true);
  // Only the first acked copy forwards onward — injected duplicates and
  // retransmission races must not multiply subtree traffic.
  const bool newly = flight.received.insert(to).second;
  if (flight.subscribers.contains(to)) {
    deliver_to_subscriber(id, to, depth, now_s);
  }
  if (newly) forward(id, to, now_s, depth);
}

void NotificationEngine::deliver_to_subscriber(MessageId id, PeerId to,
                                               std::uint32_t depth,
                                               double now_s) {
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  if (!rec.delivered_to.insert(to).second) {
    ++rec.duplicates_suppressed;
    ++stats_.duplicates_suppressed;
    duplicates_suppressed_counter().add(1);
    return;
  }
  rec.missed.erase(to);  // a late copy beat the replay queue — delivered
  if (mailbox_ != nullptr) mailbox_->on_delivered(id, to);
  ++rec.delivered;
  ++stats_.deliveries;
  deliveries_counter().add(1);
  delivery_hops_counter().add(static_cast<std::int64_t>(depth));
  static obs::Histogram& latency_hist =
      obs::MetricsRegistry::global().histogram("pubsub.delivery_latency_s");
  const double latency = now_s - rec.publish_time_s;
  latency_hist.observe(latency);
  rec.delivery_latency_s.add(latency);
  stats_.delivery_latency_s.add(latency);
  if (rec.delivered >= rec.wanted) rec.completed_at_s = now_s;
  if (check::enabled()) {
    check::enforce(check::validate_at_least_once(
        rec.delivered, rec.replays, rec.delivered_to.size(),
        flight.max_deliveries, rec.wanted, rec.completed_at_s.has_value()));
  }
}

void NotificationEngine::handle_hop_failure(MessageId id, PeerId from,
                                            PeerId to, std::uint32_t depth,
                                            std::uint32_t attempt,
                                            double send_s, double now_s) {
  // A timed-out transfer is availability evidence against the receiver —
  // the CMA input of the recovery layer (paper Sec. III-F).
  if (observer_) observer_(to, false);
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  if (retry_.enabled && attempt + 1 < retry_.max_attempts) {
    ++rec.retries;
    ++stats_.retries;
    retries_counter().add(1);
    // The resend fires when the sender's (lazy) timer expires; a failure
    // detected after the deadline resends immediately.
    const double resend_at = timer_time(
        std::max(now_s, send_s + timeout_for(id, to, attempt)));
    ++flight.pending_events;
    queue_.schedule(resend_at, [this, id, from, to, depth,
                                attempt](double now) {
      send_hop(id, from, to, depth, attempt + 1, now, /*share=*/1);
      finish_event(id);
    });
    return;
  }
  if (retry_.enabled) {
    ++stats_.retry_exhausted;
    retry_exhausted_counter().add(1);
  }
  lost_subtree(id, to, now_s);
}

void NotificationEngine::lost_subtree(MessageId id, PeerId dead,
                                      double now_s) {
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  // Every undelivered subscriber at or below the dead receiver loses its
  // tree route; reroute each via its disjoint backup path (paper Sec. V) or
  // queue it for store-and-forward replay.
  std::vector<PeerId> stack{dead};
  std::vector<PeerId> lost;
  while (!stack.empty()) {
    const PeerId n = stack.back();
    stack.pop_back();
    if (flight.subscribers.contains(n) && !rec.delivered_to.contains(n)) {
      lost.push_back(n);
    }
    for (const PeerId c : flight.tree.children(n)) stack.push_back(c);
  }
  const MultipathPlan* plan = retry_.enabled && retry_.failover
                                  ? multipath_for(rec.publisher)
                                  : nullptr;
  const FlatSet<PeerId> avoid{dead};
  for (const PeerId s : lost) {
    const std::vector<PeerId>* backup = nullptr;
    if (plan != nullptr) {
      for (const auto& entry : plan->paths) {
        if (entry.subscriber == s && entry.backup.size() >= 2) {
          backup = &entry.backup;
          break;
        }
      }
    }
    FailoverPath reroute;
    bool rerouted = false;
    if (backup != nullptr) {
      // Source-routed from the publisher. The backup avoids the primary
      // *plan* route's intermediates; when the engine tree routed
      // differently it may still cross the dead peer, in which case the
      // per-hop retries below fail and the subscriber falls back to replay.
      reroute = std::make_shared<const std::vector<PeerId>>(*backup);
    } else if (plan != nullptr) {
      // No precomputed disjoint backup: ask the overlay for a fresh route
      // that detours around the relay the failure detector declared dead.
      auto detour = sys_->route_avoiding(rec.publisher, s, avoid);
      if (detour.success && detour.path.size() >= 2) {
        reroute = std::make_shared<const std::vector<PeerId>>(
            std::move(detour.path));
        rerouted = true;
      } else if (detour.status == overlay::RouteStatus::kUnsupported) {
        route_avoid_unsupported_counter().add(1);
      } else {
        route_avoid_failed_counter().add(1);
      }
    }
    if (reroute != nullptr) {
      ++rec.failovers;
      ++stats_.failovers;
      failovers_counter().add(1);
      send_failover_hop(id, std::move(reroute), /*hop=*/0, /*attempt=*/0,
                        now_s, /*detour=*/rerouted);
    } else {
      mark_missed(id, s, now_s);
    }
  }
}

void NotificationEngine::send_failover_hop(MessageId id, FailoverPath path,
                                           std::size_t hop,
                                           std::uint32_t attempt,
                                           double start_s, bool detour) {
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  const PeerId from = (*path)[hop];
  const PeerId to = (*path)[hop + 1];
  // Detour paths draw from a third salt block so a detour edge shared with
  // the exhausted backup path cannot replay its consumed fates.
  const std::uint32_t salt_base = kFailoverAttemptBase * (detour ? 2u : 1u);
  runtime::Message m;
  m.msg = id;
  m.from = from;
  m.to = to;
  m.fault_attempt = attempt + salt_base;
  m.payload_bytes = payload_bytes_;
  m.send_s = start_s;
  m.uplink_share = 1;
  // Injected duplicates are not materialized on failover hops: the chain is
  // source-routed, so a second copy would double every remaining hop;
  // receiver dedup already covers the delivery semantics.
  m.collapse_duplicates = true;
  const runtime::SendOutcome outcome = transport().send(
      m, [this, id, path, hop, attempt, start_s,
          detour](const runtime::Arrival& a) {
        deliver_failover_hop(id, path, hop, attempt, start_s, a.arrive_s,
                             detour, a.receiver);
        finish_event(id);
      });
  const bool last = hop + 2 == path->size();
  record_hop(rec, from, to, static_cast<std::uint32_t>(hop + 1), attempt,
             /*failover=*/true, !last, last && !outcome.dropped, start_s,
             outcome.arrive_s);
  if (outcome.dropped) {
    ++flight.pending_events;
    queue_.schedule(
        timer_time(start_s + timeout_for(id, to, attempt)),
        [this, id, path = std::move(path), hop, attempt, start_s,
         detour](double now) {
          failover_hop_failure(id, path, hop, attempt, start_s, now, detour);
          finish_event(id);
        });
    return;
  }
  flight.pending_events += outcome.copies;
}

void NotificationEngine::deliver_failover_hop(
    MessageId id, const FailoverPath& path, std::size_t hop,
    std::uint32_t attempt, double send_s, double now_s, bool detour,
    fault::ReceiveState receiver_state) {
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  const PeerId to = (*path)[hop + 1];
  const bool responsive = receiver_state == fault::ReceiveState::kOk &&
                          sys_->peer_online(to);
  if (!responsive) {
    failover_hop_failure(id, path, hop, attempt, send_s, now_s, detour);
    return;
  }
  if (observer_) observer_(to, true);
  if (hop + 2 == path->size()) {
    deliver_to_subscriber(id, to, static_cast<std::uint32_t>(hop + 1),
                          now_s);
    return;
  }
  // Intermediates only relay; tree-based delivery to them (if they are
  // subscribers at all) happens on their own tree routes.
  if (!flight.subscribers.contains(to)) {
    ++rec.relay_forwards;
    ++stats_.relay_forwards;
    relay_forwards_counter().add(1);
  }
  send_failover_hop(id, path, hop + 1, /*attempt=*/0, now_s, detour);
}

void NotificationEngine::failover_hop_failure(MessageId id,
                                              const FailoverPath& path,
                                              std::size_t hop,
                                              std::uint32_t attempt,
                                              double send_s, double now_s,
                                              bool detour) {
  const PeerId to = (*path)[hop + 1];
  if (observer_) observer_(to, false);
  auto& flight = in_flight_.at(id);
  auto& rec = records_.at(id);
  if (retry_.enabled && attempt + 1 < retry_.max_attempts) {
    ++rec.retries;
    ++stats_.retries;
    retries_counter().add(1);
    const double resend_at = timer_time(
        std::max(now_s, send_s + timeout_for(id, to, attempt)));
    ++flight.pending_events;
    queue_.schedule(resend_at,
                    [this, id, path, hop, attempt, detour](double now) {
                      send_failover_hop(id, path, hop, attempt + 1, now,
                                        detour);
                      finish_event(id);
                    });
    return;
  }
  if (retry_.enabled) {
    ++stats_.retry_exhausted;
    retry_exhausted_counter().add(1);
  }
  // A backup route that died at an *intermediate* gets one fresh detour
  // around the casualty; failures of the detour itself (or of the final
  // hop, where the subscriber is the unresponsive party) terminate in
  // store-and-forward replay.
  const PeerId subscriber = path->back();
  if (!detour && to != subscriber && retry_.enabled && retry_.failover) {
    const FlatSet<PeerId> avoid{to};
    auto fresh = sys_->route_avoiding(rec.publisher, subscriber, avoid);
    if (fresh.success && fresh.path.size() >= 2) {
      ++rec.failovers;
      ++stats_.failovers;
      failovers_counter().add(1);
      send_failover_hop(id,
                        std::make_shared<const std::vector<PeerId>>(
                            std::move(fresh.path)),
                        /*hop=*/0, /*attempt=*/0, now_s, /*detour=*/true);
      return;
    }
    if (fresh.status == overlay::RouteStatus::kUnsupported) {
      route_avoid_unsupported_counter().add(1);
    } else {
      route_avoid_failed_counter().add(1);
    }
  }
  mark_missed(id, subscriber, now_s);
}

void NotificationEngine::mark_missed(MessageId id, PeerId subscriber,
                                     double t_s) {
  auto& rec = records_.at(id);
  if (rec.delivered_to.contains(subscriber)) return;
  if (!rec.missed.insert(subscriber).second) return;
  ++stats_.missed;
  missed_counter().add(1);
  if (!(retry_.enabled && retry_.replay)) return;
  missed_[subscriber].push_back(id);
  replay_fifo_.emplace_back(id, subscriber);
  ++replay_queued_;
  // Durability tier: replicate the queued copy to k mailbox peers so a
  // publisher crash (or a cap eviction below) cannot lose it.
  if (mailbox_ != nullptr) mailbox_->replicate(id, subscriber, rec.publisher, t_s);
  // SEL_REPLAY_CAP: oldest-first eviction keeps the publisher-local queue
  // bounded across long offline periods. FIFO entries already replayed are
  // stale — skipped without counting.
  while (retry_.replay_cap != 0 && replay_queued_ > retry_.replay_cap &&
         !replay_fifo_.empty()) {
    const auto [old_id, old_sub] = replay_fifo_.front();
    replay_fifo_.pop_front();
    const auto it = missed_.find(old_sub);
    if (it == missed_.end()) continue;
    const auto pos = std::find(it->second.begin(), it->second.end(), old_id);
    if (pos == it->second.end()) continue;
    it->second.erase(pos);
    if (it->second.empty()) missed_.erase(it);
    --replay_queued_;
    ++stats_.replay_evicted;
    replay_evicted_counter().add(1);
  }
}

std::size_t NotificationEngine::replay_missed(PeerId subscriber,
                                              double t_s) {
  std::size_t replayed = 0;
  const auto it = missed_.find(subscriber);
  if (it != missed_.end()) {
    std::unordered_set<MessageId> seen;
    for (const MessageId id : it->second) {
      const bool queued_twice = !seen.insert(id).second;
      auto& rec = records_.at(id);
      const bool already_delivered = rec.delivered_to.contains(subscriber);
      const bool delivering = !queued_twice && !already_delivered;
      if (check::enabled()) {
        check::enforce(check::validate_replay_dedup(
            id, subscriber, queued_twice, already_delivered, delivering));
      }
      if (!delivering) continue;
      rec.delivered_to.insert(subscriber);
      rec.missed.erase(subscriber);
      ++rec.replays;
      ++stats_.replays;
      replays_counter().add(1);
      ++replayed;
      // The mailbox copy is now redundant; resolving it keeps its pending
      // gauge tight and its replay stats honest.
      if (mailbox_ != nullptr) mailbox_->on_delivered(id, subscriber);
    }
    SEL_ASSERT(replay_queued_ >= it->second.size());
    replay_queued_ -= it->second.size();
    missed_.erase(it);
  }
  // Durability tier: messages whose local queued copy died with a crashed
  // publisher (or was cap-evicted) are still recoverable from the
  // subscriber's mailbox replicas. The `delivered` set stays the dedup
  // authority, so a message served by both tiers is delivered once.
  if (mailbox_ != nullptr) {
    for (const MessageId id : mailbox_->replay(subscriber, t_s)) {
      auto& rec = records_.at(id);
      const bool already_delivered = rec.delivered_to.contains(subscriber);
      const bool delivering = !already_delivered;
      if (check::enabled()) {
        check::enforce(check::validate_mailbox_replay(
            id, subscriber, /*entry_resolved=*/false, already_delivered,
            delivering));
      }
      if (!delivering) continue;
      rec.delivered_to.insert(subscriber);
      rec.missed.erase(subscriber);
      ++rec.replays;
      ++stats_.replays;
      replays_counter().add(1);
      ++stats_.mailbox_replays;
      mailbox_replays_counter().add(1);
      ++replayed;
    }
  }
  return replayed;
}

void NotificationEngine::on_peer_crashed(PeerId peer, double t_s) {
  // The crashed peer was the only local holder of its queued replays:
  // drop them. With a mailbox attached the replicas survive and
  // replay_missed() recovers them; without one the drop is the message
  // loss ROADMAP item 4 documents.
  // SEL_NONDET_OK(unordered-iteration): per-bucket erasure and counter
  // increments commute across iteration orders.
  for (auto it = missed_.begin(); it != missed_.end();) {
    auto& queued = it->second;
    const auto pred = [&](MessageId id) {
      return records_.at(id).publisher == peer;
    };
    const auto dropped =
        static_cast<std::size_t>(std::count_if(queued.begin(), queued.end(),
                                               pred));
    if (dropped != 0) {
      queued.erase(std::remove_if(queued.begin(), queued.end(), pred),
                   queued.end());
      SEL_ASSERT(replay_queued_ >= dropped);
      replay_queued_ -= dropped;
      stats_.replay_dropped_crash += dropped;
      replay_dropped_crash_counter().add(
          static_cast<std::int64_t>(dropped));
    }
    it = queued.empty() ? missed_.erase(it) : std::next(it);
  }
  if (mailbox_ != nullptr) mailbox_->on_peer_crashed(peer, t_s);
}

std::size_t NotificationEngine::pending_replays() const {
  std::size_t n = 0;
  // SEL_NONDET_OK(unordered-iteration): order-independent integer sum.
  for (const auto& [peer, msgs] : missed_) n += msgs.size();
  return n;
}

const MultipathPlan* NotificationEngine::multipath_for(PeerId publisher) {
  if (!planner_) return nullptr;
  auto it = multipath_cache_.find(publisher);
  if (it == multipath_cache_.end()) {
    it = multipath_cache_.emplace(publisher, planner_(publisher)).first;
  }
  return &it->second;
}

const MessageRecord& NotificationEngine::record(MessageId id) const {
  const auto it = records_.find(id);
  SEL_EXPECTS(it != records_.end());
  return it->second;
}

}  // namespace sel::pubsub
