#include "pubsub/engine.hpp"

#include "check/tree_checks.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace sel::pubsub {

using overlay::DisseminationTree;
using overlay::PeerId;

namespace {

// Message-plane telemetry (naming: `pubsub.*`). Aggregated across every
// engine instance in the process, unlike the per-engine EngineStats.
obs::Counter& publishes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.publishes");
  return c;
}

obs::Counter& deliveries_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.deliveries");
  return c;
}

obs::Counter& relay_forwards_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.relay_forwards");
  return c;
}

obs::Counter& tree_builds_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.tree_builds");
  return c;
}

// Sum of tree depths at which deliveries land; divided by
// `pubsub.deliveries` this yields the average route length per round in
// the sampler (obs/sampler.cpp).
obs::Counter& delivery_hops_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pubsub.delivery_hops");
  return c;
}

}  // namespace

NotificationEngine::NotificationEngine(const overlay::PubSubSystem& sys,
                                       const net::NetworkModel& net,
                                       double payload_bytes)
    : sys_(&sys), net_(&net), payload_bytes_(payload_bytes) {
  SEL_EXPECTS(payload_bytes > 0.0);
}

MessageId NotificationEngine::publish(PeerId publisher, double time_s) {
  SEL_EXPECTS(time_s >= queue_.now());
  const MessageId id = next_id_++;

  publishes_counter().add(1);
  // Tree: cached per publisher until invalidate_trees().
  auto cached = tree_cache_.find(publisher);
  if (cached == tree_cache_.end()) {
    SEL_TRACE_SCOPE("pubsub.build_tree");
    ++stats_.tree_cache_misses;
    tree_builds_counter().add(1);
    cached = tree_cache_.emplace(publisher, sys_->build_tree(publisher)).first;
    // Every freshly built dissemination tree must be acyclic with one
    // parent per node — the structure exactly-once delivery rides on.
    if (check::enabled(check::Level::kFull)) {
      check::enforce(check::validate_tree(cached->second));
    }
  } else {
    ++stats_.tree_cache_hits;
  }

  InFlight flight{cached->second, sys_->subscribers_of(publisher)};

  MessageRecord rec;
  rec.id = id;
  rec.publisher = publisher;
  rec.trace = obs::ProvenanceTracer::global().begin_publish(id, publisher,
                                                            time_s);
  rec.publish_time_s = time_s;
  // max_deliveries is maintained even with SEL_CHECK off (one increment in
  // a loop that runs anyway) so flipping the level mid-flight cannot seed a
  // stale bound.
  for (const PeerId s : flight.subscribers) {
    if (!flight.tree.contains(s)) continue;
    ++flight.max_deliveries;
    if (sys_->peer_online(s)) ++rec.wanted;
  }
  stats_.wanted += rec.wanted;
  ++stats_.messages_published;

  records_.emplace(id, rec);
  auto& stored = in_flight_.emplace(id, std::move(flight)).first->second;
  stored.pending_events = 1;  // the initial forward below
  queue_.schedule(time_s, [this, id, publisher](double now) {
    forward(id, publisher, now, 0);
    finish_event(id);
  });
  return id;
}

void NotificationEngine::finish_event(MessageId id) {
  const auto it = in_flight_.find(id);
  SEL_ASSERT(it != in_flight_.end());
  SEL_ASSERT(it->second.pending_events > 0);
  if (--it->second.pending_events == 0) {
    in_flight_.erase(it);
  }
}

void NotificationEngine::forward(MessageId id, PeerId node, double start_s,
                                 std::uint32_t depth) {
  const auto flight_it = in_flight_.find(id);
  SEL_ASSERT(flight_it != in_flight_.end());
  auto& flight = flight_it->second;
  auto& rec = records_.at(id);

  const auto kids = flight.tree.children(node);
  if (kids.empty()) return;
  // A forwarding non-subscriber is a relay (the publisher itself excluded).
  if (node != rec.publisher && !flight.subscribers.contains(node)) {
    ++rec.relay_forwards;
    ++stats_.relay_forwards;
    relay_forwards_counter().add(1);
  }
  // Simultaneous sends split the uplink across all children.
  flight.pending_events += kids.size();
  for (const PeerId child : kids) {
    const double arrival =
        start_s +
        net_->transfer_time_s(node, child, payload_bytes_, kids.size());
    if (rec.trace != 0) {
      obs::HopRecord hop;
      hop.trace = rec.trace;
      hop.msg = id;
      hop.from = node;
      hop.to = child;
      hop.depth = depth + 1;
      // Relay status of the *receiver*: a non-subscriber that will forward
      // onward (non-subscriber leaves do not occur in subscriber-first
      // trees, so this matches tree.relay_nodes()).
      hop.relay = !flight.subscribers.contains(child) &&
                  !flight.tree.children(child).empty();
      hop.delivered =
          flight.subscribers.contains(child) && sys_->peer_online(child);
      hop.send_s = start_s;
      hop.arrive_s = arrival;
      obs::ProvenanceTracer::global().record_hop(hop);
    }
    queue_.schedule(arrival, [this, id, child, depth](double now) {
      auto& r = records_.at(id);
      const auto f = in_flight_.find(id);
      SEL_ASSERT(f != in_flight_.end());
      if (f->second.subscribers.contains(child) && sys_->peer_online(child)) {
        ++r.delivered;
        ++stats_.deliveries;
        deliveries_counter().add(1);
        delivery_hops_counter().add(static_cast<std::int64_t>(depth) + 1);
        static obs::Histogram& latency_hist =
            obs::MetricsRegistry::global().histogram(
                "pubsub.delivery_latency_s");
        const double latency = now - r.publish_time_s;
        latency_hist.observe(latency);
        r.delivery_latency_s.add(latency);
        stats_.delivery_latency_s.add(latency);
        if (r.delivered >= r.wanted) r.completed_at_s = now;
        if (check::enabled()) {
          check::enforce(check::validate_delivery_count(
              r.delivered, f->second.max_deliveries, r.wanted,
              r.completed_at_s.has_value()));
        }
      }
      forward(id, child, now, depth + 1);
      finish_event(id);
    });
  }
}

const MessageRecord& NotificationEngine::record(MessageId id) const {
  const auto it = records_.find(id);
  SEL_EXPECTS(it != records_.end());
  return it->second;
}

}  // namespace sel::pubsub
