// NotificationEngine — the message plane of the system.
//
// The metrics in metrics.hpp evaluate one dissemination at a time; this
// engine runs the *service*: posts arrive on a timeline (from the Jiang et
// al. workload or an application), each becomes a message disseminated down
// the system's routing tree with real transfer durations (latency +
// payload/bandwidth, uplink shared across a node's simultaneous child
// sends), overlapping freely with other messages. Per-message and aggregate
// delivery statistics come out the other end.
//
// Trees are cached per publisher and invalidated on churn — rebuilding the
// tree for every post would hide the cost structure a real deployment has.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "net/network_model.hpp"
#include "obs/provenance.hpp"
#include "overlay/system.hpp"
#include "sim/event_queue.hpp"

namespace sel::pubsub {

using MessageId = std::uint64_t;

struct MessageRecord {
  MessageId id = 0;
  overlay::PeerId publisher = overlay::kInvalidPeer;
  /// Non-zero when this publish was sampled by the provenance tracer
  /// (obs/provenance.hpp); every hop of its dissemination is recorded.
  obs::TraceId trace = 0;
  double publish_time_s = 0.0;
  std::size_t wanted = 0;     ///< online subscribers at publish time
  std::size_t delivered = 0;  ///< subscribers reached so far
  std::size_t relay_forwards = 0;  ///< forwards by non-subscribers
  RunningStats delivery_latency_s;
  /// Completion time (max subscriber arrival, Eq. 1); set when all wanted
  /// subscribers were reached.
  std::optional<double> completed_at_s;
};

struct EngineStats {
  std::size_t messages_published = 0;
  std::size_t deliveries = 0;
  std::size_t wanted = 0;
  std::size_t relay_forwards = 0;
  std::size_t tree_cache_hits = 0;
  std::size_t tree_cache_misses = 0;
  RunningStats delivery_latency_s;

  [[nodiscard]] double delivery_rate() const noexcept {
    return wanted == 0 ? 1.0
                       : static_cast<double>(deliveries) /
                             static_cast<double>(wanted);
  }
};

class NotificationEngine {
 public:
  /// The engine reads (never mutates) the system and network model; both
  /// must outlive it.
  NotificationEngine(const overlay::PubSubSystem& sys,
                     const net::NetworkModel& net,
                     double payload_bytes = net::kDefaultPayloadBytes);

  /// Publishes a message at `time_s` (>= the engine clock). Transfers are
  /// scheduled on the internal event queue; call run_until()/run_all() to
  /// make progress. Returns the message id.
  MessageId publish(overlay::PeerId publisher, double time_s);

  /// Advances simulated time, delivering everything due by then.
  void run_until(double t_s) { queue_.run_until(t_s); }
  /// Drains all in-flight transfers.
  void run_all() { queue_.run_all(); }

  [[nodiscard]] double now_s() const noexcept { return queue_.now(); }

  /// Drops cached trees; call after churn or topology maintenance.
  void invalidate_trees() { tree_cache_.clear(); }

  [[nodiscard]] const MessageRecord& record(MessageId id) const;
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return queue_.size();
  }

 private:
  /// Schedules the sends from `node` (at tree depth `depth`) for message
  /// `id` down its cached tree.
  void forward(MessageId id, overlay::PeerId node, double start_s,
               std::uint32_t depth);

  const overlay::PubSubSystem* sys_;
  const net::NetworkModel* net_;
  double payload_bytes_;
  sim::EventQueue queue_;
  MessageId next_id_ = 1;
  std::unordered_map<MessageId, MessageRecord> records_;
  /// Per-message subscriber set + tree (kept while events are pending).
  struct InFlight {
    overlay::DisseminationTree tree;
    std::unordered_set<overlay::PeerId> subscribers;
    std::size_t pending_events = 0;
    /// Subscribers present in the tree — the exactly-once delivery bound
    /// (always maintained so SEL_CHECK can be enabled mid-flight; see
    /// check/tree_checks.hpp).
    std::size_t max_deliveries = 0;
  };

  /// Decrements the pending-event count; frees the in-flight state when the
  /// last event of the message fired.
  void finish_event(MessageId id);
  std::unordered_map<MessageId, InFlight> in_flight_;
  std::unordered_map<overlay::PeerId, overlay::DisseminationTree> tree_cache_;
  EngineStats stats_;
};

}  // namespace sel::pubsub
