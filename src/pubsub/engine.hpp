// NotificationEngine — the message plane of the system.
//
// The metrics in metrics.hpp evaluate one dissemination at a time; this
// engine runs the *service*: posts arrive on a timeline (from the Jiang et
// al. workload or an application), each becomes a message disseminated down
// the system's routing tree with real transfer durations (latency +
// payload/bandwidth, uplink shared across a node's simultaneous child
// sends), overlapping freely with other messages. Per-message and aggregate
// delivery statistics come out the other end.
//
// Trees are cached per publisher and invalidated on churn — rebuilding the
// tree for every post would hide the cost structure a real deployment has.
//
// Execution runtime (src/runtime/): hops travel through a pluggable
// runtime::Transport — InProcTransport by default (single process,
// scheduled on the engine's EventEngine), or an external backend such as
// SocketTransport (peer shards in separate OS processes) via
// set_transport(). The runtime::Mode seam (set_runtime_options) switches
// the same protocol code between event-driven continuous time (kAsync,
// default) and the paper's barrier-quantized semantics (kSuperstep) —
// arrivals and protocol timers are then rounded up to round boundaries.
// When an external transport is used, attach the fault plan to both the
// engine (set_fault_plan arms the ack/retry ladder) and the transport
// (which draws the hop fates).
//
// Reliability layer (fault injection + recovery): attaching a
// fault::FaultPlan (set_fault_plan) subjects every hop to drops, duplicate
// deliveries, latency spikes and receiver stalls/crashes; enabling a
// RetryPolicy (set_retry_policy) makes the engine survive them with a
// per-hop ack/timeout protocol:
//
//   * a hop whose message was dropped, or whose receiver did not ack
//     (stalled, crashed, offline), is resent after an exponential-backoff
//     timeout with deterministic jitter, up to max_attempts;
//   * when the retry budget for a relay is exhausted the subtree under it
//     is declared lost and each not-yet-delivered subscriber in it fails
//     over to its disjoint backup route from the publisher's MultipathPlan
//     (set_multipath_planner);
//   * subscribers unreachable even by failover are queued store-and-forward
//     and replayed when they return from a churn offline period
//     (replay_missed);
//   * every ack/timeout outcome is reported to the availability observer so
//     the SELECT recovery layer's per-peer CMA (paper Sec. III-F) learns
//     from the message plane, not just from polling.
//
// With neither a fault plan nor a retry policy the engine behaves exactly
// as the perfect-transfer-plane implementation it grew out of (exactly-once
// delivery down the tree); reliable mode switches the delivery invariant to
// at-least-once with receiver-side dedup (check/tree_checks.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "net/network_model.hpp"
#include "obs/memory.hpp"
#include "obs/provenance.hpp"
#include "overlay/system.hpp"
#include "pubsub/multipath.hpp"
#include "runtime/event_engine.hpp"
#include "runtime/inproc_transport.hpp"
#include "runtime/runtime.hpp"
#include "runtime/transport.hpp"

namespace sel::fault {
class FaultPlan;
}

namespace sel::pubsub {

class MailboxManager;

using MessageId = std::uint64_t;

/// Message-plane hash containers are attributed to `mem.pubsub`
/// (obs/memory.hpp): per-message dedup/replay state plus the per-publisher
/// tree and multipath caches are the engine's dominant long-lived footprint.
template <typename K>
using PubsubSet =
    std::unordered_set<K, std::hash<K>, std::equal_to<K>,
                       obs::Tagged<K, obs::Subsystem::kPubsub>>;
template <typename K, typename V>
using PubsubMap = std::unordered_map<
    K, V, std::hash<K>, std::equal_to<K>,
    obs::Tagged<std::pair<const K, V>, obs::Subsystem::kPubsub>>;

/// Ack/timeout recovery parameters. Default-constructed (enabled = false)
/// the engine performs no retries — the control configuration for chaos
/// experiments. from_env() is the experiment entry point.
struct RetryPolicy {
  bool enabled = false;
  /// Base ack timeout before the first resend. The default comfortably
  /// exceeds a typical 1.2 MB transfer (~0.2-5 s in the bandwidth model).
  double ack_timeout_s = 5.0;
  double backoff = 2.0;  ///< timeout multiplier per failed attempt
  /// Deterministic jitter: each timeout is stretched by up to this fraction,
  /// keyed on (message, receiver, attempt) so same-seed runs are identical.
  double jitter = 0.2;
  std::size_t max_attempts = 4;  ///< total sends per hop, first included
  bool failover = true;          ///< reroute lost subscribers via multipath
  bool replay = true;            ///< store-and-forward for missed subscribers
  /// Bound on queued (message, subscriber) replay entries across all
  /// subscribers; 0 = unbounded. When full, the oldest queued entry is
  /// evicted (counted as `pubsub.replay_evicted`) — the mailbox tier, when
  /// armed, still holds replicas of evicted messages.
  std::size_t replay_cap = 0;

  /// Enabled policy with SEL_RETRY_TIMEOUT_S / SEL_RETRY_BACKOFF /
  /// SEL_RETRY_JITTER / SEL_RETRY_MAX / SEL_REPLAY_CAP applied over the
  /// defaults.
  [[nodiscard]] static RetryPolicy from_env();
};

struct MessageRecord {
  MessageId id = 0;
  overlay::PeerId publisher = overlay::kInvalidPeer;
  /// Non-zero when this publish was sampled by the provenance tracer
  /// (obs/provenance.hpp); every hop of its dissemination is recorded.
  obs::TraceId trace = 0;
  double publish_time_s = 0.0;
  std::size_t wanted = 0;     ///< online subscribers at publish time
  std::size_t delivered = 0;  ///< subscribers reached so far
  std::size_t relay_forwards = 0;  ///< forwards by non-subscribers
  // -- reliable mode only -----------------------------------------------
  std::size_t retries = 0;    ///< resends after a hop timed out
  std::size_t failovers = 0;  ///< subscribers rerouted via backup paths
  std::size_t replays = 0;    ///< store-and-forward deliveries on return
  std::size_t duplicates_suppressed = 0;  ///< receiver-side dedup hits
  /// Subscribers that received the message (in-flight or replayed) — the
  /// receiver dedup set behind the at-least-once invariant. Outlives the
  /// in-flight state so late replays stay deduplicated.
  PubsubSet<overlay::PeerId> delivered_to;
  /// Subscribers given up on in-flight, awaiting store-and-forward replay.
  PubsubSet<overlay::PeerId> missed;
  RunningStats delivery_latency_s;
  /// Completion time (max subscriber arrival, Eq. 1); set when all wanted
  /// subscribers were reached.
  std::optional<double> completed_at_s;
};

struct EngineStats {
  std::size_t messages_published = 0;
  std::size_t deliveries = 0;
  std::size_t wanted = 0;
  std::size_t relay_forwards = 0;
  std::size_t tree_cache_hits = 0;
  std::size_t tree_cache_misses = 0;
  // -- reliable mode only -----------------------------------------------
  std::size_t retries = 0;
  std::size_t retry_exhausted = 0;  ///< hops abandoned after max_attempts
  std::size_t failovers = 0;
  std::size_t replays = 0;
  std::size_t duplicates_suppressed = 0;
  std::size_t missed = 0;  ///< subscriber misses queued (or counted) so far
  std::size_t replay_evicted = 0;  ///< queue entries dropped by SEL_REPLAY_CAP
  /// Queued replays dropped because their publisher (the only local copy
  /// holder) crashed; the mailbox tier covers these when armed.
  std::size_t replay_dropped_crash = 0;
  std::size_t mailbox_replays = 0;  ///< deliveries served from mailbox replicas
  RunningStats delivery_latency_s;

  [[nodiscard]] double delivery_rate() const noexcept {
    return wanted == 0 ? 1.0
                       : static_cast<double>(deliveries) /
                             static_cast<double>(wanted);
  }
};

class NotificationEngine {
 public:
  /// The engine reads (never mutates) the system and network model; both
  /// must outlive it. Runtime mode and transport kind default to
  /// runtime::Options::from_env() (SEL_RUNTIME / SEL_TRANSPORT).
  NotificationEngine(const overlay::PubSubSystem& sys,
                     const net::NetworkModel& net,
                     double payload_bytes = net::kDefaultPayloadBytes);

  /// Publishes a message at `time_s` (>= the engine clock). Transfers are
  /// scheduled on the internal event engine; call run_until()/run_all() to
  /// make progress. Returns the message id.
  MessageId publish(overlay::PeerId publisher, double time_s);

  /// Advances simulated time, delivering everything due by then.
  void run_until(double t_s) { queue_.run_until(t_s); }
  /// Drains all in-flight transfers.
  void run_all() { queue_.run(); }

  [[nodiscard]] double now_s() const noexcept { return queue_.now_s(); }

  /// Drops cached trees (and multipath plans); call after churn or topology
  /// maintenance.
  void invalidate_trees() {
    tree_cache_.clear();
    multipath_cache_.clear();
  }

  // -- execution runtime ------------------------------------------------
  /// Reconfigures execution semantics (mode, barrier length, tie seed).
  /// Must be called before the first publish. Note TransportKind is not
  /// acted on here — socket backends need a process harness, so callers
  /// construct the SocketTransport themselves and pass it to
  /// set_transport().
  void set_runtime_options(runtime::Options options);
  [[nodiscard]] const runtime::Options& runtime_options() const noexcept {
    return runtime_opts_;
  }
  /// Replaces the built-in InProcTransport (not owned; null resets to the
  /// built-in). The external transport must schedule on this engine's
  /// event_engine().
  void set_transport(runtime::Transport* transport) noexcept {
    external_transport_ = transport;
  }
  /// The virtual-time executor external transports must schedule on.
  [[nodiscard]] runtime::EventEngine& event_engine() noexcept {
    return queue_;
  }

  // -- reliability ------------------------------------------------------
  /// Attaches a fault plan (not owned; may be null to detach). Hop fates
  /// and receiver states are drawn from it for every transfer. The plan is
  /// forwarded to the built-in transport; an external transport (socket)
  /// receives its plan at construction.
  void set_fault_plan(fault::FaultPlan* plan) {
    fault_ = plan;
    default_transport_->set_fault_plan(plan);
  }
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  /// Ack/timeout outcomes per receiving peer (true = acked). Feed this to
  /// core::SelectSystem::observe_availability for CMA-guided recovery.
  void set_availability_observer(
      std::function<void(overlay::PeerId, bool)> observer) {
    observer_ = std::move(observer);
  }
  /// Supplies backup routes for failover (typically wraps plan_multipath).
  /// Plans are cached per publisher until invalidate_trees().
  void set_multipath_planner(
      std::function<MultipathPlan(overlay::PeerId)> planner) {
    planner_ = std::move(planner);
  }
  /// Attaches the replicated-mailbox durability tier (not owned; null
  /// detaches). Every store-and-forward miss is then also replicated to k
  /// mailbox peers, and replay_missed() serves from surviving replicas
  /// after the local queue — so a publisher crash no longer loses queued
  /// notifications. The manager must schedule on this engine's
  /// event_engine().
  void set_mailbox(MailboxManager* mailbox) noexcept { mailbox_ = mailbox; }
  [[nodiscard]] MailboxManager* mailbox() const noexcept { return mailbox_; }

  /// True when hops go through the ack/retry/dedup path (a fault plan is
  /// attached or retries are enabled) rather than the perfect-transfer one.
  [[nodiscard]] bool reliable() const noexcept {
    return fault_ != nullptr || retry_.enabled;
  }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  /// Replays every message queued for `subscriber` (store-and-forward);
  /// call when churn brings the peer back online. Messages the subscriber
  /// already received in-flight are skipped, not re-delivered. Returns the
  /// number of messages replayed.
  std::size_t replay_missed(overlay::PeerId subscriber, double t_s);
  /// Queued (message, subscriber) replay entries not yet replayed.
  [[nodiscard]] std::size_t pending_replays() const;

  /// Crash notification from the driver (burst schedules, forced publisher
  /// crashes): drops queued replays whose only local copy lived on the
  /// crashed publisher (counted as `pubsub.replay_dropped_crash`) and runs
  /// the mailbox's anti-entropy handoff. Without a mailbox those messages
  /// are simply gone — the durability gap the mailbox tier closes.
  void on_peer_crashed(overlay::PeerId peer, double t_s);

  [[nodiscard]] const MessageRecord& record(MessageId id) const;
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return queue_.queue_depth();
  }

 private:
  /// Per-message subscriber set + tree (kept while events are pending).
  struct InFlight {
    overlay::DisseminationTree tree;
    /// Ascending-ordered (FlatSet) so loops over it — delivery accounting,
    /// store-and-forward marking — visit subscribers deterministically.
    FlatSet<overlay::PeerId> subscribers;
    std::size_t pending_events = 0;
    /// Subscribers present in the tree — the exactly-once delivery bound
    /// (always maintained so SEL_CHECK can be enabled mid-flight; see
    /// check/tree_checks.hpp).
    std::size_t max_deliveries = 0;
    /// Reliable mode: peers that acked a copy already — only the first
    /// receipt forwards down the tree, so injected duplicates and
    /// retransmission races cannot multiply traffic.
    PubsubSet<overlay::PeerId> received;
  };

  /// Shared source-routed path for failover resends (immutable once built).
  using FailoverPath = std::shared_ptr<const std::vector<overlay::PeerId>>;

  /// The active transport: the external one when installed, else the
  /// built-in InProcTransport.
  [[nodiscard]] runtime::Transport& transport() noexcept {
    return external_transport_ != nullptr ? *external_transport_
                                          : *default_transport_;
  }

  /// Protocol-timer deadline in the active mode: identity in kAsync,
  /// rounded up to the barrier in kSuperstep.
  [[nodiscard]] double timer_time(double t_s) const noexcept {
    return runtime_opts_.quantize(t_s);
  }

  /// Schedules the sends from `node` (at tree depth `depth`) for message
  /// `id` down its cached tree.
  void forward(MessageId id, overlay::PeerId node, double start_s,
               std::uint32_t depth);

  // Reliable-mode hop pipeline. Every scheduled event increments
  // InFlight::pending_events at its schedule site and calls finish_event()
  // when it fires, so the in-flight state lives exactly as long as any
  // event (arrival, retry timer, failover hop) references it.
  void send_hop(MessageId id, overlay::PeerId from, overlay::PeerId to,
                std::uint32_t depth, std::uint32_t attempt, double start_s,
                std::size_t share);
  void deliver_hop(MessageId id, overlay::PeerId from, overlay::PeerId to,
                   std::uint32_t depth, std::uint32_t attempt, double send_s,
                   double now_s, fault::ReceiveState receiver_state);
  /// Timeout handling for attempt `attempt` of the hop to `to`: feeds the
  /// availability observer, schedules the resend at the backoff deadline or
  /// — budget exhausted — declares the subtree under `to` lost.
  void handle_hop_failure(MessageId id, overlay::PeerId from,
                          overlay::PeerId to, std::uint32_t depth,
                          std::uint32_t attempt, double send_s, double now_s);
  /// Reroutes every undelivered subscriber in the tree subtree under `dead`
  /// via its backup path, or queues it for replay when no backup exists.
  void lost_subtree(MessageId id, overlay::PeerId dead, double now_s);
  /// `detour` marks a route_avoiding() path (already a second-chance
  /// route): its failures terminate in replay instead of rerouting again,
  /// which bounds the recovery chain at two route computations.
  void send_failover_hop(MessageId id, FailoverPath path, std::size_t hop,
                         std::uint32_t attempt, double start_s, bool detour);
  void deliver_failover_hop(MessageId id, const FailoverPath& path,
                            std::size_t hop, std::uint32_t attempt,
                            double send_s, double now_s, bool detour,
                            fault::ReceiveState receiver_state);
  void failover_hop_failure(MessageId id, const FailoverPath& path,
                            std::size_t hop, std::uint32_t attempt,
                            double send_s, double now_s, bool detour);
  /// Counts a subscriber delivery with receiver-side dedup.
  void deliver_to_subscriber(MessageId id, overlay::PeerId to,
                             std::uint32_t depth, double now_s);
  /// Queues `subscriber` for store-and-forward replay (deduplicated) at
  /// `t_s`, replicating to the mailbox tier when one is attached and
  /// evicting the oldest queued entry beyond RetryPolicy::replay_cap.
  void mark_missed(MessageId id, overlay::PeerId subscriber, double t_s);
  /// Backoff deadline (seconds after the send) for resending attempt
  /// `attempt + 1`; exponential in `attempt` with deterministic jitter.
  [[nodiscard]] double timeout_for(MessageId id, overlay::PeerId to,
                                   std::uint32_t attempt) const;
  /// Cached multipath plan for `publisher`; null without a planner.
  [[nodiscard]] const MultipathPlan* multipath_for(overlay::PeerId publisher);
  void record_hop(const MessageRecord& rec, overlay::PeerId from,
                  overlay::PeerId to, std::uint32_t depth,
                  std::uint32_t attempt, bool failover, bool relay,
                  bool delivered, double send_s, double arrive_s) const;

  /// Decrements the pending-event count; frees the in-flight state when the
  /// last event of the message fired.
  void finish_event(MessageId id);

  const overlay::PubSubSystem* sys_;
  const net::NetworkModel* net_;
  double payload_bytes_;
  runtime::Options runtime_opts_;
  runtime::EventEngine queue_;
  /// Built-in single-process transport; always constructed so the engine
  /// works with zero configuration.
  std::unique_ptr<runtime::InProcTransport> default_transport_;
  runtime::Transport* external_transport_ = nullptr;  ///< not owned
  MessageId next_id_ = 1;
  PubsubMap<MessageId, MessageRecord> records_;
  PubsubMap<MessageId, InFlight> in_flight_;
  PubsubMap<overlay::PeerId, overlay::DisseminationTree> tree_cache_;
  EngineStats stats_;

  fault::FaultPlan* fault_ = nullptr;  ///< not owned
  RetryPolicy retry_;
  std::function<void(overlay::PeerId, bool)> observer_;
  std::function<MultipathPlan(overlay::PeerId)> planner_;
  PubsubMap<overlay::PeerId, MultipathPlan> multipath_cache_;
  /// Store-and-forward queue: per subscriber, messages awaiting replay.
  PubsubMap<overlay::PeerId, std::vector<MessageId>> missed_;
  /// Oldest-first eviction order for SEL_REPLAY_CAP: (message, subscriber)
  /// in queueing order. Entries already replayed are skipped lazily;
  /// replay_queued_ tracks the live count the cap compares against.
  std::deque<std::pair<MessageId, overlay::PeerId>,
             obs::Tagged<std::pair<MessageId, overlay::PeerId>,
                         obs::Subsystem::kPubsub>>
      replay_fifo_;
  std::size_t replay_queued_ = 0;
  MailboxManager* mailbox_ = nullptr;  ///< not owned
};

}  // namespace sel::pubsub
