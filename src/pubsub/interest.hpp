// The interest function f : S x B -> {true,false} (paper Sec. II-B).
//
// A subscriber receives a publisher's messages only when it is a social
// friend AND interested: S_b = { s | f(s,b) = true ∧ (b,s) ∈ E }. The
// evaluation treats f ≡ true (every friend subscribes, the notification
// use case); this model generalizes it: each (subscriber, publisher) pair
// is interested with probability `interest_probability`, deterministically
// derived from the pair and a seed — think muted friends / unfollowed pages.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/social_graph.hpp"
#include "overlay/system.hpp"

namespace sel::pubsub {

class InterestModel final : public overlay::InterestFunction {
 public:
  /// probability = 1 reproduces the paper's evaluation (all friends).
  InterestModel(double interest_probability, std::uint64_t seed)
      : probability_(interest_probability), seed_(seed) {
    SEL_EXPECTS(interest_probability >= 0.0 && interest_probability <= 1.0);
  }

  /// f(subscriber, publisher): deterministic per pair. Note the asymmetry —
  /// s being interested in b says nothing about b's interest in s.
  [[nodiscard]] bool interested(graph::NodeId subscriber,
                                graph::NodeId publisher) const override {
    if (probability_ >= 1.0) return true;
    if (probability_ <= 0.0) return false;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(subscriber) << 32) | publisher;
    // Map the pair hash to [0,1) and threshold.
    const double u =
        static_cast<double>(splitmix64(derive_seed(seed_, key)) >> 11) *
        0x1.0p-53;
    return u < probability_;
  }

  [[nodiscard]] double probability() const noexcept { return probability_; }

 private:
  double probability_;
  std::uint64_t seed_;
};

}  // namespace sel::pubsub
