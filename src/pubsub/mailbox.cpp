#include "pubsub/mailbox.hpp"

#include <algorithm>
#include <unordered_set>

#include "check/mailbox_checks.hpp"
#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "select/cma.hpp"

namespace sel::pubsub {

using overlay::PeerId;

namespace {

// Mailbox telemetry (naming: `mailbox.*`), pre-registered at construction
// so chaos reports carry a seed-independent schema (a counter that never
// fires reports 0 instead of omitting the key — CI exact-match gates rely
// on it, the same pattern the fault.* family follows).
obs::Counter& replicated_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.replicated");
  return c;
}
obs::Counter& store_attempts_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.store_attempts");
  return c;
}
obs::Counter& acks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.acks");
  return c;
}
obs::Counter& duplicate_acks_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "mailbox.duplicate_acks_suppressed");
  return c;
}
obs::Counter& retries_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.retries");
  return c;
}
obs::Counter& replacements_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.replacements");
  return c;
}
obs::Counter& quorum_writes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.quorum_writes");
  return c;
}
obs::Counter& quorum_degraded_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.quorum_degraded");
  return c;
}
obs::Counter& handoffs_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.handoffs");
  return c;
}
obs::Counter& replays_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.replays");
  return c;
}
obs::Counter& replay_lost_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.replay_lost");
  return c;
}
obs::Counter& superseded_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.superseded");
  return c;
}
obs::Counter& evicted_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("mailbox.evicted");
  return c;
}
obs::Gauge& pending_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("mailbox.pending_entries");
  return g;
}

// Placement and jitter draw salts (the fault plane owns 0x5e1d00xx).
constexpr std::uint64_t kPlacementSalt = 0x3a11b0c501;
constexpr std::uint64_t kJitterSalt = 0x3a11b0c502;

}  // namespace

MailboxPolicy MailboxPolicy::from_env() {
  warn_unknown_sel_env_once();
  MailboxPolicy p;
  p.replicas = static_cast<std::size_t>(env::get_int(
      "SEL_MAILBOX_K", static_cast<std::int64_t>(p.replicas), 1, 15));
  return p;
}

MailboxManager::MailboxManager(runtime::EventEngine& queue,
                               const overlay::Overlay& overlay,
                               const net::NetworkModel& net,
                               MailboxPolicy policy, std::uint64_t seed)
    : queue_(&queue),
      overlay_(&overlay),
      net_(&net),
      policy_(policy),
      seed_(seed) {
  SEL_EXPECTS(policy.replicas >= 1);
  SEL_EXPECTS(policy.max_attempts >= 1);
  replicated_counter();
  store_attempts_counter();
  acks_counter();
  duplicate_acks_counter();
  retries_counter();
  replacements_counter();
  quorum_writes_counter();
  quorum_degraded_counter();
  handoffs_counter();
  replays_counter();
  replay_lost_counter();
  superseded_counter();
  evicted_counter();
  pending_gauge();
}

double MailboxManager::placement_u01(PeerId subscriber,
                                     PeerId candidate) const {
  std::uint64_t h = splitmix64(seed_ ^ splitmix64(kPlacementSalt));
  h = splitmix64(h ^ splitmix64(subscriber));
  h = splitmix64(h ^ splitmix64(candidate));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double MailboxManager::availability_of(PeerId p) const {
  return availability_ ? availability_(p) : 1.0;
}

bool MailboxManager::peer_dead(PeerId p) const {
  return fault_ != nullptr && fault_->crashed(p);
}

std::vector<PeerId> MailboxManager::placement_ranking(
    PeerId subscriber) const {
  // Two ranked sections: the subscriber's overlay neighborhood (replicas a
  // returning peer reaches cheaply), then a bounded rendezvous fallback
  // pool over everyone else. Within each section the CMA-weighted
  // rendezvous score orders candidates; ties break on peer id so the sort
  // is total.
  struct Scored {
    double score;
    PeerId peer;
  };
  const auto by_score = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.peer < b.peer;
  };
  const auto score_of = [&](PeerId p) {
    return core::placement_score(availability_of(p),
                                 placement_u01(subscriber, p), policy_.bias);
  };

  std::vector<Scored> neighborhood;
  std::unordered_set<PeerId> in_neighborhood;
  for (const PeerId p : overlay_->neighbors(subscriber)) {
    if (p == subscriber || peer_dead(p)) continue;
    if (!in_neighborhood.insert(p).second) continue;
    neighborhood.push_back({score_of(p), p});
  }
  std::sort(neighborhood.begin(), neighborhood.end(), by_score);

  std::vector<Scored> fallback;
  for (PeerId p = 0; p < overlay_->num_peers(); ++p) {
    if (p == subscriber || peer_dead(p) || in_neighborhood.count(p) != 0) {
      continue;
    }
    fallback.push_back({score_of(p), p});
  }
  if (fallback.size() > policy_.fallback_pool) {
    std::partial_sort(fallback.begin(),
                      fallback.begin() +
                          static_cast<std::ptrdiff_t>(policy_.fallback_pool),
                      fallback.end(), by_score);
    fallback.resize(policy_.fallback_pool);
  } else {
    std::sort(fallback.begin(), fallback.end(), by_score);
  }

  std::vector<PeerId> out;
  out.reserve(neighborhood.size() + fallback.size());
  for (const auto& s : neighborhood) out.push_back(s.peer);
  for (const auto& s : fallback) out.push_back(s.peer);
  return out;
}

PeerId MailboxManager::next_replica(Entry& entry) const {
  const auto used = [&](PeerId p) {
    if (p == entry.source) return true;
    for (const auto& r : entry.replicas) {
      if (r.peer == p) return true;
    }
    return false;
  };
  // Correlated-failure diversity: while alternatives exist, refuse
  // candidates sharing a failure domain with the subscriber, the source, or
  // an already-assigned replica — one crash burst must not erase the whole
  // replica set. The second pass relaxes only the domain constraint.
  const bool domains =
      fault_ != nullptr && fault_->num_domains() > 1;
  const auto domain_conflict = [&](PeerId p) {
    if (!domains) return false;
    const std::uint32_t d = fault_->failure_domain(p);
    if (d == fault_->failure_domain(entry.subscriber)) return true;
    if (d == fault_->failure_domain(entry.source)) return true;
    for (const auto& r : entry.replicas) {
      if (r.state != SlotState::kFailed &&
          d == fault_->failure_domain(r.peer)) {
        return true;
      }
    }
    return false;
  };
  for (const bool diverse : {true, false}) {
    for (const PeerId p : entry.ranking) {
      if (used(p) || peer_dead(p) || !overlay_->peer_online(p)) continue;
      if (diverse && domain_conflict(p)) continue;
      return p;
    }
    if (!domains) break;  // second pass would be identical
  }
  return overlay::kInvalidPeer;
}

void MailboxManager::replicate(MessageId msg, PeerId subscriber,
                               PeerId source, double t_s) {
  if (const auto it = by_subscriber_.find(subscriber);
      it != by_subscriber_.end()) {
    for (const std::size_t idx : it->second) {
      if (!entries_[idx].resolved && entries_[idx].msg == msg) return;
    }
  }
  const std::size_t idx = entries_.size();
  entries_.emplace_back();
  Entry& entry = entries_.back();
  entry.msg = msg;
  entry.subscriber = subscriber;
  entry.source = source;
  entry.ranking = placement_ranking(subscriber);
  by_subscriber_[subscriber].push_back(idx);
  ++pending_;
  ++stats_.replicated;
  replicated_counter().add(1);
  pending_gauge().set(static_cast<double>(pending_));

  for (std::size_t slot = 0; slot < policy_.replicas; ++slot) {
    const PeerId p = next_replica(entry);
    if (p == overlay::kInvalidPeer) break;
    entry.replicas.push_back(Replica{p, SlotState::kPending, false, 0});
  }
  if (entry.replicas.empty()) {
    entry.degraded = true;
    ++stats_.quorum_degraded;
    quorum_degraded_counter().add(1);
    settle(entry);
    return;
  }
  for (std::size_t slot = 0; slot < entry.replicas.size(); ++slot) {
    send_store(idx, slot, t_s);
  }
}

double MailboxManager::timeout_for(const Entry& entry, std::size_t slot,
                                   std::uint32_t attempt) const {
  double timeout = policy_.ack_timeout_s;
  for (std::uint32_t i = 0; i < attempt; ++i) timeout *= policy_.backoff;
  std::uint64_t h = splitmix64(seed_ ^ splitmix64(kJitterSalt));
  h = splitmix64(h ^ splitmix64(entry.msg));
  h = splitmix64(h ^ splitmix64((static_cast<std::uint64_t>(entry.subscriber)
                                 << 16) ^ slot));
  h = splitmix64(h ^ splitmix64(attempt));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return timeout * (1.0 + policy_.jitter * u);
}

void MailboxManager::send_store(std::size_t entry_idx, std::size_t slot,
                                double t_s) {
  Entry& entry = entries_[entry_idx];
  Replica& rep = entry.replicas[slot];
  SEL_ASSERT(rep.state == SlotState::kPending);
  const std::uint32_t attempt = rep.attempts++;
  ++stats_.store_attempts;
  store_attempts_counter().add(1);
  // The store request is a real transfer (latency + payload/bandwidth);
  // the outcome is decided when it arrives at the acceptor.
  const double arrive_s =
      t_s + net_->transfer_time_s(entry.source, rep.peer,
                                  policy_.payload_bytes, /*concurrent=*/1);
  queue_->schedule(arrive_s, [this, entry_idx, slot, attempt,
                              t_s](double now) {
    store_arrived(entry_idx, slot, attempt, t_s, now);
  });
}

void MailboxManager::store_arrived(std::size_t entry_idx, std::size_t slot,
                                   std::uint32_t attempt, double send_s,
                                   double now_s) {
  Entry& entry = entries_[entry_idx];
  if (entry.resolved) return;
  Replica& rep = entry.replicas[slot];
  if (rep.state != SlotState::kPending || rep.attempts != attempt + 1) {
    return;  // stale event from a superseded attempt
  }
  // A dead or offline acceptor never acks: the sender's (lazy) timeout
  // detects it and re-runs the ladder.
  if (peer_dead(rep.peer) || !overlay_->peer_online(rep.peer)) {
    const double fail_at = std::max(now_s, send_s + timeout_for(entry, slot,
                                                                attempt));
    queue_->schedule(fail_at, [this, entry_idx, slot, attempt,
                               send_s](double now) {
      store_failed(entry_idx, slot, attempt, send_s, now);
    });
    return;
  }
  const fault::AckFate fate =
      fault_ != nullptr
          ? fault_->mailbox_ack(rep.peer, entry.msg, entry.subscriber,
                                attempt)
          : fault::AckFate{true, true, false};
  SEL_ASSERT(fate.acked);
  const PeerId acceptor = rep.peer;
  const double ack_latency = net_->latency_s(acceptor, entry.source);
  queue_->schedule(now_s + ack_latency,
                   [this, entry_idx, slot, acceptor,
                    stored = fate.stored](double now) {
                     ack_arrived(entry_idx, slot, acceptor, stored,
                                 /*duplicate=*/false, now);
                   });
  if (fate.duplicated) {
    queue_->schedule(now_s + 2.0 * ack_latency,
                     [this, entry_idx, slot, acceptor,
                      stored = fate.stored](double now) {
                       ack_arrived(entry_idx, slot, acceptor, stored,
                                   /*duplicate=*/true, now);
                     });
  }
}

void MailboxManager::ack_arrived(std::size_t entry_idx, std::size_t slot,
                                 PeerId acceptor, bool stored, bool duplicate,
                                 double now_s) {
  (void)now_s;
  (void)duplicate;
  Entry& entry = entries_[entry_idx];
  if (entry.resolved) return;
  Replica& rep = entry.replicas[slot];
  if (rep.peer != acceptor) return;  // slot was replaced; late ack
  if (rep.state == SlotState::kStored) {
    // Second ack for an already-acked slot — the byzantine duplicate-ack
    // channel. Distinct-acceptor counting makes it harmless.
    ++stats_.duplicate_acks;
    duplicate_acks_counter().add(1);
    return;
  }
  if (rep.state != SlotState::kPending) return;
  rep.state = SlotState::kStored;
  rep.stored_real = stored;
  ++entry.acks;
  ++stats_.acks;
  acks_counter().add(1);
  if (!entry.quorum_reached && entry.acks >= policy_.quorum()) {
    entry.quorum_reached = true;
    ++stats_.quorum_writes;
    quorum_writes_counter().add(1);
    settle(entry);
  }
}

void MailboxManager::store_failed(std::size_t entry_idx, std::size_t slot,
                                  std::uint32_t attempt, double send_s,
                                  double now_s) {
  (void)send_s;
  Entry& entry = entries_[entry_idx];
  if (entry.resolved) return;
  Replica& rep = entry.replicas[slot];
  if (rep.state != SlotState::kPending || rep.attempts != attempt + 1) {
    return;
  }
  if (rep.attempts < policy_.max_attempts) {
    ++stats_.retries;
    retries_counter().add(1);
    send_store(entry_idx, slot, now_s);
    return;
  }
  rep.state = SlotState::kFailed;
  replace_or_settle(entry_idx, slot, now_s);
}

void MailboxManager::replace_or_settle(std::size_t entry_idx,
                                       std::size_t slot, double t_s) {
  (void)slot;
  Entry& entry = entries_[entry_idx];
  const PeerId fresh = next_replica(entry);
  if (fresh != overlay::kInvalidPeer) {
    ++stats_.replacements;
    replacements_counter().add(1);
    entry.replicas.push_back(Replica{fresh, SlotState::kPending, false, 0});
    send_store(entry_idx, entry.replicas.size() - 1, t_s);
    return;
  }
  if (entry.quorum_reached) return;  // already settled at quorum
  for (const auto& r : entry.replicas) {
    if (r.state == SlotState::kPending) return;  // outcomes still in flight
  }
  if (!entry.degraded) {
    entry.degraded = true;
    ++stats_.quorum_degraded;
    quorum_degraded_counter().add(1);
    settle(entry);
  }
}

void MailboxManager::settle(Entry& entry) {
  if (check::enabled()) {
    check::enforce(check::validate_mailbox_quorum(
        entry.msg, entry.subscriber, entry.acks, policy_.quorum(),
        entry.replicas.size(), entry.quorum_reached, entry.degraded));
  }
}

void MailboxManager::resolve(Entry& entry) {
  SEL_ASSERT(!entry.resolved);
  entry.resolved = true;
  SEL_ASSERT(pending_ > 0);
  --pending_;
  pending_gauge().set(static_cast<double>(pending_));
}

std::vector<MessageId> MailboxManager::replay(PeerId subscriber,
                                              double t_s) {
  (void)t_s;
  std::vector<MessageId> out;
  const auto it = by_subscriber_.find(subscriber);
  if (it == by_subscriber_.end()) return out;
  for (const std::size_t idx : it->second) {
    Entry& entry = entries_[idx];
    if (entry.resolved) continue;
    // Serve from any live, genuinely stored replica, in slot order.
    // Byzantine holders withhold their copy; false-acked slots never
    // stored one — both are skipped, which is exactly why the quorum is
    // sized so that at least one ack is honest.
    bool served = false;
    for (const auto& rep : entry.replicas) {
      if (rep.state != SlotState::kStored || !rep.stored_real) continue;
      if (peer_dead(rep.peer)) continue;
      if (fault_ != nullptr && fault_->withholds_replay(rep.peer, entry.msg)) {
        continue;
      }
      served = true;
      break;
    }
    if (served) {
      out.push_back(entry.msg);
      ++stats_.replays;
      replays_counter().add(1);
    } else {
      ++stats_.replay_lost;
      replay_lost_counter().add(1);
    }
    resolve(entry);
  }
  by_subscriber_.erase(it);
  return out;
}

void MailboxManager::on_delivered(MessageId msg, PeerId subscriber) {
  const auto it = by_subscriber_.find(subscriber);
  if (it == by_subscriber_.end()) return;
  for (const std::size_t idx : it->second) {
    Entry& entry = entries_[idx];
    if (entry.resolved || entry.msg != msg) continue;
    ++stats_.superseded;
    superseded_counter().add(1);
    resolve(entry);
    return;
  }
}

void MailboxManager::forget(MessageId msg, PeerId subscriber) {
  const auto it = by_subscriber_.find(subscriber);
  if (it == by_subscriber_.end()) return;
  for (const std::size_t idx : it->second) {
    Entry& entry = entries_[idx];
    if (entry.resolved || entry.msg != msg) continue;
    ++stats_.evicted;
    evicted_counter().add(1);
    resolve(entry);
    return;
  }
}

void MailboxManager::on_peer_crashed(PeerId peer, double t_s) {
  // Insertion-order walk: deterministic, and cheap at the pending scales
  // the replay queue reaches (entries resolve on replay/delivery).
  for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
    Entry& entry = entries_[idx];
    if (entry.resolved) continue;
    bool lost_slot = false;
    for (auto& rep : entry.replicas) {
      if (rep.peer == peer && rep.state != SlotState::kFailed) {
        rep.state = SlotState::kFailed;
        lost_slot = true;
      }
    }
    if (!lost_slot && entry.source != peer) continue;
    // Anti-entropy: hand the copy off from a surviving stored replica (or
    // the still-alive source) to a fresh candidate.
    PeerId handoff_source = overlay::kInvalidPeer;
    for (const auto& rep : entry.replicas) {
      if (rep.state == SlotState::kStored && rep.stored_real &&
          !peer_dead(rep.peer)) {
        handoff_source = rep.peer;
        break;
      }
    }
    if (handoff_source == overlay::kInvalidPeer && !peer_dead(entry.source)) {
      handoff_source = entry.source;
    }
    if (lost_slot && handoff_source != overlay::kInvalidPeer) {
      entry.source = handoff_source;
      const PeerId fresh = next_replica(entry);
      if (fresh != overlay::kInvalidPeer) {
        ++stats_.handoffs;
        handoffs_counter().add(1);
        entry.replicas.push_back(
            Replica{fresh, SlotState::kPending, false, 0});
        send_store(idx, entry.replicas.size() - 1, t_s);
      }
    }
    std::size_t live_stored = 0;
    bool any_pending = false;
    for (const auto& rep : entry.replicas) {
      if (rep.state == SlotState::kStored && rep.stored_real &&
          !peer_dead(rep.peer)) {
        ++live_stored;
      }
      if (rep.state == SlotState::kPending) any_pending = true;
    }
    if (live_stored == 0 && !any_pending &&
        handoff_source == overlay::kInvalidPeer && !entry.degraded) {
      // No surviving copy anywhere and nothing in flight: durability is
      // gone; record it instead of pretending.
      entry.degraded = true;
      ++stats_.quorum_degraded;
      quorum_degraded_counter().add(1);
    }
    if (check::enabled(check::Level::kFull)) {
      check::enforce(check::validate_mailbox_durability(
          entry.msg, entry.subscriber, live_stored + (any_pending ? 1 : 0),
          entry.quorum_reached, entry.degraded));
    }
  }
}

std::vector<PeerId> MailboxManager::replicas_of(MessageId msg,
                                                PeerId subscriber) const {
  std::vector<PeerId> out;
  const auto it = by_subscriber_.find(subscriber);
  if (it == by_subscriber_.end()) return out;
  for (const std::size_t idx : it->second) {
    const Entry& entry = entries_[idx];
    if (entry.resolved || entry.msg != msg) continue;
    for (const auto& rep : entry.replicas) {
      if (rep.state != SlotState::kFailed) out.push_back(rep.peer);
    }
    return out;
  }
  return out;
}

}  // namespace sel::pubsub
