// Replicated mailboxes — the durability tier of the message plane.
//
// Store-and-forward replay (engine.hpp) keeps exactly one copy of every
// undelivered message: on the publisher. A publisher crash mid-dissemination
// therefore silently loses notifications — the durability gap ROADMAP item 4
// calls out. This manager closes it: every message queued for an offline or
// unreachable subscriber is *replicated* to k mailbox peers, and replayed
// from whichever replica survives when the subscriber returns.
//
// Placement (DESIGN.md §17). Replica holders are chosen by CMA-weighted
// rendezvous hashing (core::placement_score): each candidate draws a pure
// hash u01(seed, subscriber, candidate) and ranks by u^(1/cma^bias), so
// long-term-available peers (paper Sec. III-F; "Towards Social Profile
// Based Overlays") win deterministically and the top-k set is stable under
// churn. Candidates come from the subscriber's overlay neighborhood first
// (ring + long links — replicas the returning subscriber can reach
// cheaply), then a bounded rendezvous fallback pool over the rest of the
// network. Peers sharing a correlated-failure domain with the subscriber,
// the source, or an already-chosen replica are skipped while alternatives
// exist ("Socially-Aware DHTs for Decentralized OSNs": placement must be
// availability- *and* locality-diverse), so one crash burst cannot take out
// a whole replica set.
//
// Write protocol. Each replica slot runs a store→ack exchange on the
// engine's virtual clock: the store request takes a real transfer time,
// the ack a network latency, and a missing ack retries on the PR 5
// exponential-backoff ladder up to max_attempts before the slot is
// replaced from the placement ranking. The write settles when ⌈(k+1)/2⌉
// *distinct* acceptors acked (quorum — duplicate acks from byzantine
// acceptors are suppressed, false acks are tolerated up to ⌊(k−1)/2⌋
// byzantine members because quorum − ⌊(k−1)/2⌋ ≥ 1 ack is then honest), or
// degrades explicitly when the candidate pool is exhausted below quorum.
//
// Anti-entropy. When a mailbox peer crashes, every entry holding a replica
// on it re-replicates from a surviving stored copy to a fresh candidate
// (handoff); an entry with no surviving copy degrades. Replay serves from
// any live, genuinely stored, non-withholding replica, in entry insertion
// order; the engine's `delivered` set stays the dedup authority, so a
// message both replayed locally and recovered from a mailbox is delivered
// once.
//
// Determinism: placement draws, byzantine fates and burst schedules are
// pure hashes of (seed, keys); all cross-entry iteration follows insertion
// order — same-seed runs are bit-identical. Every transition is counted
// under `mailbox.*`, pre-registered at construction so chaos reports carry
// a seed-independent schema.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network_model.hpp"
#include "obs/memory.hpp"
#include "overlay/routing.hpp"
#include "runtime/event_engine.hpp"

namespace sel::fault {
class FaultPlan;
}

namespace sel::pubsub {

using MessageId = std::uint64_t;

/// Replication parameters. Defaults give k=3 / quorum 2 — tolerating one
/// byzantine or crashed acceptor per entry at triple storage cost.
struct MailboxPolicy {
  std::size_t replicas = 3;  ///< k: target replica count per entry
  double bias = 2.0;         ///< CMA exponent in the placement score
  /// Rendezvous fallback pool: at most this many non-neighborhood
  /// candidates are rank-eligible (bounds the per-entry candidate list).
  std::size_t fallback_pool = 24;
  /// Store/ack retry ladder (the PR 5 shape: exponential backoff with
  /// deterministic jitter, then slot replacement).
  double ack_timeout_s = 2.0;
  double backoff = 2.0;
  double jitter = 0.2;
  std::size_t max_attempts = 3;  ///< store sends per replica slot
  double payload_bytes = net::kDefaultPayloadBytes;

  /// Quorum: ⌈(k+1)/2⌉ distinct acks.
  [[nodiscard]] std::size_t quorum() const noexcept {
    return replicas / 2 + 1;
  }

  /// Defaults with SEL_MAILBOX_K applied (replica count; quorum follows).
  [[nodiscard]] static MailboxPolicy from_env();
};

/// Per-manager aggregate counters (global `mailbox.*` metrics mirror them
/// process-wide).
struct MailboxStats {
  std::size_t replicated = 0;      ///< entries accepted for replication
  std::size_t store_attempts = 0;  ///< store requests sent (retries incl.)
  std::size_t acks = 0;            ///< distinct acks received
  std::size_t duplicate_acks = 0;  ///< suppressed duplicate acks
  std::size_t retries = 0;         ///< store resends after timeout
  std::size_t replacements = 0;    ///< replica slots refilled from ranking
  std::size_t quorum_writes = 0;   ///< entries settled at quorum
  std::size_t quorum_degraded = 0; ///< entries settled below quorum
  std::size_t handoffs = 0;        ///< anti-entropy re-replications
  std::size_t replays = 0;         ///< messages served back at replay
  std::size_t replay_lost = 0;     ///< entries with no live replica at replay
  std::size_t superseded = 0;      ///< entries resolved by primary delivery
  std::size_t evicted = 0;         ///< entries dropped via forget()
};

/// Replicates undelivered messages across mailbox peers and serves them
/// back on subscriber return. Owned by the driver, shared with the engine
/// via NotificationEngine::set_mailbox(); schedules on the engine's
/// EventEngine so stores, acks and retries interleave with dissemination
/// in virtual time.
class MailboxManager {
 public:
  /// `overlay` supplies the candidate pool and liveness; `availability`
  /// maps a peer to its CMA in [0,1] (e.g. SelectSystem::cma_of) — null
  /// means every peer scores 1.0 (pure rendezvous hashing).
  MailboxManager(runtime::EventEngine& queue, const overlay::Overlay& overlay,
                 const net::NetworkModel& net, MailboxPolicy policy,
                 std::uint64_t seed);

  /// Attaches the fault plan (not owned; null = fault-free acceptors).
  /// Byzantine ack fates, failure domains and crash state come from it.
  void set_fault_plan(fault::FaultPlan* plan) noexcept { fault_ = plan; }
  void set_availability_fn(
      std::function<double(overlay::PeerId)> availability) {
    availability_ = std::move(availability);
  }

  /// Replicates message `msg` (queued for `subscriber`, currently held by
  /// `source`) to k mailbox peers starting at `t_s`. Idempotent per
  /// (msg, subscriber): a second call is a no-op.
  void replicate(MessageId msg, overlay::PeerId subscriber,
                 overlay::PeerId source, double t_s);

  /// Serves every unresolved entry for `subscriber` from a live stored
  /// replica, resolving the entries. Returns the recovered message ids in
  /// entry insertion order; the caller (engine) owns delivery dedup.
  [[nodiscard]] std::vector<MessageId> replay(overlay::PeerId subscriber,
                                              double t_s);

  /// Anti-entropy: `peer` crashed. Every entry with a replica slot on it
  /// re-replicates from a surviving stored copy (handoff) or degrades.
  void on_peer_crashed(overlay::PeerId peer, double t_s);

  /// The subscriber received `msg` through the primary/local path after
  /// all — resolves the entry so replay() never re-serves it and the
  /// pending gauge stays tight. Counted as `mailbox.superseded`.
  void on_delivered(MessageId msg, overlay::PeerId subscriber);

  /// Drops the entry for (msg, subscriber) without replaying it (the
  /// engine's SEL_REPLAY_CAP eviction path). Counted as `mailbox.evicted`.
  void forget(MessageId msg, overlay::PeerId subscriber);

  /// Unresolved entries currently held.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] const MailboxStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MailboxPolicy& policy() const noexcept {
    return policy_;
  }

  /// The placement ranking for `subscriber` (best first, subscriber and
  /// crashed peers excluded) — exposed for tests and the placement bench.
  [[nodiscard]] std::vector<overlay::PeerId> placement_ranking(
      overlay::PeerId subscriber) const;

  /// Current replica holders of (msg, subscriber), slot order; empty when
  /// no unresolved entry exists. Test/diagnostic surface.
  [[nodiscard]] std::vector<overlay::PeerId> replicas_of(
      MessageId msg, overlay::PeerId subscriber) const;

 private:
  enum class SlotState : std::uint8_t { kPending, kStored, kFailed };
  struct Replica {
    overlay::PeerId peer = overlay::kInvalidPeer;
    SlotState state = SlotState::kPending;
    /// Ground truth: the acceptor genuinely persisted the copy (false for
    /// byzantine false-acks). Replay serves only from stored_real slots.
    bool stored_real = false;
    std::uint32_t attempts = 0;
  };
  struct Entry {
    MessageId msg = 0;
    overlay::PeerId subscriber = overlay::kInvalidPeer;
    overlay::PeerId source = overlay::kInvalidPeer;
    std::vector<Replica> replicas;  ///< slot order = assignment order
    /// Placement ranking captured at creation; replacement scans it again,
    /// skipping peers already holding (or having failed) a slot.
    std::vector<overlay::PeerId> ranking;
    std::size_t acks = 0;  ///< distinct acceptors acked
    bool quorum_reached = false;
    bool degraded = false;
    bool resolved = false;  ///< replayed, forgotten, or abandoned
  };

  /// Pure rendezvous draw for (subscriber, candidate).
  [[nodiscard]] double placement_u01(overlay::PeerId subscriber,
                                     overlay::PeerId candidate) const;
  [[nodiscard]] double availability_of(overlay::PeerId p) const;
  [[nodiscard]] bool peer_dead(overlay::PeerId p) const;
  /// Domain-diverse slot assignment: next usable candidate from the
  /// entry's ranking, or kInvalidPeer when exhausted.
  [[nodiscard]] overlay::PeerId next_replica(Entry& entry) const;
  /// Starts (or restarts) the store→ack exchange for slot `slot`.
  void send_store(std::size_t entry_idx, std::size_t slot, double t_s);
  void store_arrived(std::size_t entry_idx, std::size_t slot,
                     std::uint32_t attempt, double send_s, double now_s);
  void ack_arrived(std::size_t entry_idx, std::size_t slot,
                   overlay::PeerId acceptor, bool stored, bool duplicate,
                   double now_s);
  void store_failed(std::size_t entry_idx, std::size_t slot,
                    std::uint32_t attempt, double send_s, double now_s);
  /// Replaces a failed slot from the ranking or settles the entry.
  void replace_or_settle(std::size_t entry_idx, std::size_t slot,
                         double t_s);
  void settle(Entry& entry);
  [[nodiscard]] double timeout_for(const Entry& entry, std::size_t slot,
                                   std::uint32_t attempt) const;
  void resolve(Entry& entry);

  runtime::EventEngine* queue_;
  const overlay::Overlay* overlay_;
  const net::NetworkModel* net_;
  MailboxPolicy policy_;
  std::uint64_t seed_;
  fault::FaultPlan* fault_ = nullptr;  ///< not owned
  std::function<double(overlay::PeerId)> availability_;

  /// Entries in creation order — the deterministic iteration spine for
  /// replay and anti-entropy. Resolved entries are tombstoned in place.
  std::vector<Entry, obs::Tagged<Entry, obs::Subsystem::kPubsub>> entries_;
  /// subscriber -> indices into entries_ (insertion order).
  std::unordered_map<
      overlay::PeerId, std::vector<std::size_t>, std::hash<overlay::PeerId>,
      std::equal_to<overlay::PeerId>,
      obs::Tagged<std::pair<const overlay::PeerId, std::vector<std::size_t>>,
                  obs::Subsystem::kPubsub>>
      by_subscriber_;
  std::size_t pending_ = 0;
  MailboxStats stats_;
};

}  // namespace sel::pubsub
