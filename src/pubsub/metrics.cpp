#include "pubsub/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/rng.hpp"

namespace sel::pubsub {

using overlay::PeerId;

HopMetrics measure_hops(const overlay::PubSubSystem& sys, std::size_t lookups,
                        std::uint64_t seed) {
  HopMetrics metrics;
  const auto& g = sys.social();
  const std::size_t n = g.num_nodes();
  if (n == 0) return metrics;
  Rng rng(seed);
  for (std::size_t i = 0; i < lookups; ++i) {
    // Sample a user with at least one friend, then a random friend: a
    // "social lookup" is always between socially connected peers.
    PeerId from = overlay::kInvalidPeer;
    for (int attempts = 0; attempts < 256; ++attempts) {
      const auto candidate = static_cast<PeerId>(rng.below(n));
      if (g.degree(candidate) > 0) {
        from = candidate;
        break;
      }
    }
    if (from == overlay::kInvalidPeer) break;  // graph has (almost) no edges
    const auto nbrs = g.neighbors(from);
    const PeerId to = nbrs[rng.below(nbrs.size())];
    ++metrics.attempted;
    const overlay::RouteResult r = sys.route(from, to);
    if (r.success) {
      ++metrics.delivered;
      metrics.hops.add(static_cast<double>(r.hops()));
    }
  }
  return metrics;
}

RelayMetrics measure_relays(const overlay::PubSubSystem& sys,
                            const std::vector<PeerId>& publishers) {
  RelayMetrics metrics;
  for (const PeerId b : publishers) {
    const auto subscribers = sys.subscribers_of(b);
    if (subscribers.empty()) continue;
    const overlay::DisseminationTree tree = sys.build_tree(b);

    // Per-path relays: walk from each delivered subscriber to the root,
    // counting intermediate nodes that are not subscribers themselves.
    std::size_t delivered = 0;
    for (const PeerId s : subscribers) {
      if (!tree.contains(s)) continue;
      ++delivered;
      std::size_t relays = 0;
      PeerId cur = tree.parent(s);
      while (cur != overlay::kInvalidPeer && cur != b) {
        if (!subscribers.contains(cur)) ++relays;
        cur = tree.parent(cur);
      }
      metrics.relays_per_path.add(static_cast<double>(relays));
    }
    metrics.relays_per_tree.add(
        static_cast<double>(tree.relay_nodes(subscribers).size()));
    metrics.coverage.add(static_cast<double>(delivered) /
                         static_cast<double>(subscribers.size()));
  }
  return metrics;
}

LoadMetrics measure_load(const overlay::PubSubSystem& sys,
                         const std::vector<PeerId>& publishers) {
  LoadMetrics metrics;
  const auto& g = sys.social();
  const std::size_t n = g.num_nodes();
  if (n == 0) return metrics;

  std::vector<double> forwards(n, 0.0);
  double relay_forwards = 0.0;
  double deliveries = 0.0;
  for (const PeerId b : publishers) {
    const auto subscribers = sys.subscribers_of(b);
    const overlay::DisseminationTree tree = sys.build_tree(b);
    for (const PeerId node : tree.nodes()) {
      const auto fwd = static_cast<double>(tree.forward_count(node));
      forwards[node] += fwd;
      if (node != b && !subscribers.contains(node)) relay_forwards += fwd;
      if (node != b && subscribers.contains(node)) deliveries += 1.0;
    }
  }
  const double total =
      std::accumulate(forwards.begin(), forwards.end(), 0.0);
  metrics.relay_forward_share = total > 0.0 ? relay_forwards / total : 0.0;
  metrics.forwards_per_delivery = deliveries > 0.0 ? total / deliveries : 0.0;

  // Rank peers by social degree (ascending) and split into deciles.
  std::vector<PeerId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), PeerId{0});
  std::sort(by_degree.begin(), by_degree.end(), [&g](PeerId a, PeerId b2) {
    if (g.degree(a) != g.degree(b2)) return g.degree(a) < g.degree(b2);
    return a < b2;
  });
  metrics.share_by_degree_decile.assign(10, 0.0);
  if (total > 0.0) {
    for (std::size_t rank = 0; rank < n; ++rank) {
      const std::size_t decile = std::min<std::size_t>(rank * 10 / n, 9);
      metrics.share_by_degree_decile[decile] +=
          forwards[by_degree[rank]] / total * 100.0;
    }
    metrics.top_decile_share = metrics.share_by_degree_decile[9];
  }

  // Gini over per-peer forward counts.
  if (total > 0.0 && n > 1) {
    std::vector<double> sorted(forwards);
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
    }
    const double nd = static_cast<double>(n);
    metrics.gini = (2.0 * weighted) / (nd * total) - (nd + 1.0) / nd;
  }
  return metrics;
}

LatencyMetrics measure_latency(const overlay::PubSubSystem& sys,
                               const net::NetworkModel& net,
                               const std::vector<PeerId>& publishers,
                               double payload_bytes) {
  LatencyMetrics metrics;
  for (const PeerId b : publishers) {
    const auto subscribers = sys.subscribers_of(b);
    if (subscribers.empty()) continue;
    const overlay::DisseminationTree tree = sys.build_tree(b);

    // Nodes are in delivery order (parents precede children), so a single
    // pass computes arrival times. Each node pushes to all children
    // simultaneously, splitting its uplink across them.
    std::unordered_map<PeerId, double> arrival;
    arrival.reserve(tree.node_count());
    arrival[tree.root()] = 0.0;
    double tree_latency = 0.0;
    for (const PeerId node : tree.nodes()) {
      const auto kids = tree.children(node);
      if (kids.empty()) continue;
      const double start = arrival.at(node);
      for (const PeerId child : kids) {
        const double t =
            start + net.transfer_time_s(node, child, payload_bytes,
                                        kids.size());
        arrival[child] = t;
        if (subscribers.contains(child)) {
          metrics.per_subscriber_s.add(t);
          tree_latency = std::max(tree_latency, t);
        }
      }
    }
    metrics.per_tree_s.add(tree_latency);
  }
  return metrics;
}

AvailabilityMetrics measure_availability(
    const overlay::PubSubSystem& sys, const std::vector<PeerId>& publishers) {
  AvailabilityMetrics metrics;
  for (const PeerId b : publishers) {
    if (!sys.peer_online(b)) continue;
    const auto subscribers = sys.subscribers_of(b);
    const overlay::DisseminationTree tree = sys.build_tree(b);
    for (const PeerId s : subscribers) {
      if (!sys.peer_online(s)) continue;  // offline users don't expect delivery
      ++metrics.wanted;
      if (tree.contains(s)) ++metrics.delivered;
    }
  }
  return metrics;
}

}  // namespace sel::pubsub
