// Pub/sub evaluation metrics (paper Sec. IV-B), computed uniformly over any
// PubSubSystem:
//   - number of hops per social lookup            (Fig. 2)
//   - number of relay nodes per routing path/tree (Fig. 3)
//   - percentage of messages forwarded per degree (Fig. 4, load balance)
//   - dissemination latency                       (Fig. 7, Eq. 1)
//   - communication availability under churn      (Fig. 6)
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "net/network_model.hpp"
#include "overlay/system.hpp"

namespace sel::pubsub {

// ---------------------------------------------------------------------------
// Hops per social lookup (Fig. 2)
// ---------------------------------------------------------------------------
struct HopMetrics {
  RunningStats hops;        ///< over successful lookups
  std::size_t attempted = 0;
  std::size_t delivered = 0;

  [[nodiscard]] double success_rate() const noexcept {
    return attempted == 0
               ? 0.0
               : static_cast<double>(delivered) / static_cast<double>(attempted);
  }
};

/// Routes `lookups` randomly sampled (user, friend) pairs through the system.
[[nodiscard]] HopMetrics measure_hops(const overlay::PubSubSystem& sys,
                                      std::size_t lookups, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Relay nodes (Fig. 3)
// ---------------------------------------------------------------------------
struct RelayMetrics {
  /// Relay nodes per publisher->subscriber routing path (intermediate peers
  /// that are not subscribers of the topic).
  RunningStats relays_per_path;
  /// Distinct relay nodes per routing tree.
  RunningStats relays_per_tree;
  /// Subscribers actually covered by the tree, as a fraction.
  RunningStats coverage;
};

/// Builds routing trees for the given publishers and counts relays.
[[nodiscard]] RelayMetrics measure_relays(
    const overlay::PubSubSystem& sys,
    const std::vector<overlay::PeerId>& publishers);

// ---------------------------------------------------------------------------
// Forwarding load vs social degree (Fig. 4)
// ---------------------------------------------------------------------------
struct LoadMetrics {
  /// Forwarded-message share per degree decile: bucket 0 holds the
  /// lowest-degree tenth of peers, bucket 9 the highest-degree tenth. Values
  /// sum to ~100 (percent).
  std::vector<double> share_by_degree_decile;
  /// Share of all forwards handled by the top-10% social-degree peers
  /// (the hotspot measure the paper's text discusses).
  double top_decile_share = 0.0;
  /// Gini coefficient of per-peer forward counts (0 = perfectly balanced).
  double gini = 0.0;
  /// Fraction of all forwards performed by peers that are NOT subscribed to
  /// the message they forward — pure relay traffic. Near zero for SELECT
  /// (friends forward to friends), large for DHT-based systems.
  double relay_forward_share = 0.0;
  /// Average forwards per delivered subscriber (message overhead).
  double forwards_per_delivery = 0.0;
};

[[nodiscard]] LoadMetrics measure_load(
    const overlay::PubSubSystem& sys,
    const std::vector<overlay::PeerId>& publishers);

// ---------------------------------------------------------------------------
// Dissemination latency (Fig. 7)
// ---------------------------------------------------------------------------
struct LatencyMetrics {
  /// Arrival latency per delivered subscriber, seconds.
  RunningStats per_subscriber_s;
  /// Tree completion latency per publisher: max over subscribers (Eq. 1).
  RunningStats per_tree_s;
};

/// Simulates payload dissemination down each tree. A node forwards to all
/// its tree children simultaneously, splitting its uplink (the simultaneous-
/// transfer effect of Sec. IV-D).
[[nodiscard]] LatencyMetrics measure_latency(
    const overlay::PubSubSystem& sys, const net::NetworkModel& net,
    const std::vector<overlay::PeerId>& publishers,
    double payload_bytes = net::kDefaultPayloadBytes);

// ---------------------------------------------------------------------------
// Availability under churn (Fig. 6)
// ---------------------------------------------------------------------------
struct AvailabilityMetrics {
  std::size_t wanted = 0;     ///< online subscribers of online publishers
  std::size_t delivered = 0;  ///< of those, how many the tree reached

  [[nodiscard]] double availability() const noexcept {
    return wanted == 0 ? 1.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(wanted);
  }
};

/// Publishes from each (online) publisher and checks which online
/// subscribers the dissemination tree reaches.
[[nodiscard]] AvailabilityMetrics measure_availability(
    const overlay::PubSubSystem& sys,
    const std::vector<overlay::PeerId>& publishers);

}  // namespace sel::pubsub
