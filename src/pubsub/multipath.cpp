#include "pubsub/multipath.hpp"

#include <atomic>
#include <cmath>

#include "common/rng.hpp"
#include "obs/provenance.hpp"

namespace sel::pubsub {

using overlay::PeerId;

double MultipathPlan::backup_coverage() const {
  if (paths.empty()) return 0.0;
  std::size_t with_backup = 0;
  for (const auto& p : paths) {
    if (!p.backup.empty()) ++with_backup;
  }
  return static_cast<double>(with_backup) / static_cast<double>(paths.size());
}

double MultipathPlan::backup_stretch() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& p : paths) {
    if (p.backup.empty()) continue;
    total += static_cast<double>(p.backup.size()) -
             static_cast<double>(p.primary.size());
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

namespace {

/// Records one routed path as a hop chain under `trace`. Planning has no
/// simulated timeline, so hops get logical one-µs ticks; depth is the hop
/// index along the path.
void trace_path(obs::TraceId trace, std::uint64_t plan_id,
                const std::vector<PeerId>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    obs::HopRecord hop;
    hop.trace = trace;
    hop.msg = plan_id;
    hop.from = path[i];
    hop.to = path[i + 1];
    hop.depth = static_cast<std::uint32_t>(i + 1);
    hop.relay = i + 2 < path.size();  // intermediates relay, endpoint delivers
    hop.delivered = i + 2 >= path.size();
    hop.send_s = static_cast<double>(i) * 1e-6;
    hop.arrive_s = static_cast<double>(i + 1) * 1e-6;
    obs::ProvenanceTracer::global().record_hop(hop);
  }
}

}  // namespace

MultipathPlan plan_multipath(const overlay::Overlay& ov,
                             const graph::SocialGraph& g, PeerId publisher) {
  MultipathPlan plan;
  plan.publisher = publisher;
  // Plans have no MessageId of their own; a process-wide counter keeps
  // their provenance records distinguishable in a merged trace.
  static std::atomic<std::uint64_t> next_plan_id{1};
  const std::uint64_t plan_id =
      next_plan_id.fetch_add(1, std::memory_order_relaxed);
  const obs::TraceId trace = obs::ProvenanceTracer::global().begin_publish(
      plan_id, publisher, 0.0, obs::TraceKind::kPlan);
  for (const graph::NodeId s : g.neighbors(publisher)) {
    const overlay::RouteResult primary = ov.route(publisher, s);
    if (!primary.success) continue;
    SubscriberPaths entry;
    entry.subscriber = s;
    entry.primary = primary.path;
    // Backup avoids every intermediate of the primary (endpoints allowed).
    // Overlays without route_avoiding report kUnsupported and the entry
    // stays primary-only — visible in backup_coverage rather than silent.
    if (primary.path.size() > 2) {
      const FlatSet<PeerId> avoid(primary.path.begin() + 1,
                                  primary.path.end() - 1);
      const overlay::RouteResult backup = ov.route_avoiding(publisher, s, avoid);
      if (backup.success) entry.backup = backup.path;
    } else {
      // Direct link: the primary has no intermediates to lose; a backup is
      // any two-hop alternative, cheap to look up via lookahead routing
      // avoiding nothing. Mark the direct path as its own backup.
      entry.backup = entry.primary;
    }
    if (trace != 0) trace_path(trace, plan_id, entry.primary);
    plan.paths.push_back(std::move(entry));
  }
  return plan;
}

namespace {

/// True when every intermediate of `path` survives the failure draw.
bool path_alive(const std::vector<PeerId>& path,
                const std::vector<bool>& failed) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (failed[path[i]]) return false;
  }
  return true;
}

}  // namespace

FaultToleranceResult measure_fault_tolerance(
    const overlay::Overlay& ov, const graph::SocialGraph& g,
    const std::vector<PeerId>& publishers, double fail_probability,
    std::size_t rounds, std::uint64_t seed) {
  FaultToleranceResult result;
  std::vector<MultipathPlan> plans;
  plans.reserve(publishers.size());
  RunningStats coverage;
  RunningStats stretch;
  for (const PeerId b : publishers) {
    plans.push_back(plan_multipath(ov, g, b));
    coverage.add(plans.back().backup_coverage());
    stretch.add(plans.back().backup_stretch());
  }
  result.backup_coverage = coverage.mean();
  result.backup_stretch = stretch.mean();

  Rng rng(seed);
  std::size_t single_ok = 0;
  std::size_t multi_ok = 0;
  std::size_t total = 0;
  std::vector<bool> failed(ov.num_peers(), false);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t p = 0; p < failed.size(); ++p) {
      failed[p] = rng.chance(fail_probability);
    }
    for (const auto& plan : plans) {
      for (const auto& entry : plan.paths) {
        // The subscriber itself must be alive to care about delivery.
        if (failed[entry.subscriber]) continue;
        ++total;
        const bool primary_ok = path_alive(entry.primary, failed);
        if (primary_ok) ++single_ok;
        if (primary_ok ||
            (!entry.backup.empty() && path_alive(entry.backup, failed))) {
          ++multi_ok;
        }
      }
    }
  }
  result.trials = total;
  if (total > 0) {
    result.single_path_delivery =
        static_cast<double>(single_ok) / static_cast<double>(total);
    result.multi_path_delivery =
        static_cast<double>(multi_ok) / static_cast<double>(total);
    const auto half_width = [total](double p) {
      return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(total));
    };
    result.single_path_half_width = half_width(result.single_path_delivery);
    result.multi_path_half_width = half_width(result.multi_path_delivery);
  }
  return result;
}

}  // namespace sel::pubsub
