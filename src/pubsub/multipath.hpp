// Multipath dissemination — the extension sketched in the paper's
// Discussion (Sec. V): "This issue can be optimized by having more than one
// paths to the subscribers in order to guarantee the transmission."
//
// For each subscriber we compute a primary route and a backup route whose
// intermediate peers are disjoint from the primary's, so any single relay
// failure leaves at least one path intact. measure_fault_tolerance()
// quantifies the gain: Monte-Carlo peer failures, delivery probability with
// one vs two paths — and the cost: extra path length (the paper notes it is
// "unlikely to find paths of the same length").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/flat_set.hpp"
#include "common/stats.hpp"
#include "overlay/routing.hpp"

namespace sel::pubsub {

struct SubscriberPaths {
  overlay::PeerId subscriber;
  /// Primary route publisher -> subscriber (publisher first).
  std::vector<overlay::PeerId> primary;
  /// Backup route with intermediates disjoint from primary's; empty when no
  /// disjoint route exists.
  std::vector<overlay::PeerId> backup;
};

struct MultipathPlan {
  overlay::PeerId publisher;
  std::vector<SubscriberPaths> paths;

  /// Fraction of subscribers holding a disjoint backup path.
  [[nodiscard]] double backup_coverage() const;
  /// Mean extra hops of backup vs primary (over subscribers with both).
  [[nodiscard]] double backup_stretch() const;
};

/// Computes primary + disjoint backup routes from a publisher to every
/// subscriber, using the overlay's routing with exclusion sets. Backup
/// paths require `route_avoiding`; overlays without that capability get a
/// primary-only plan (backup_coverage reflects the direct-link cases only).
[[nodiscard]] MultipathPlan plan_multipath(const overlay::Overlay& ov,
                                           const graph::SocialGraph& g,
                                           overlay::PeerId publisher);

struct FaultToleranceResult {
  double single_path_delivery = 0.0;  ///< P(delivered) with primary only
  double multi_path_delivery = 0.0;   ///< P(delivered) with backup too
  double backup_coverage = 0.0;
  double backup_stretch = 0.0;
  /// Monte-Carlo sample size behind the delivery estimates: one trial per
  /// (round, plan, alive subscriber).
  std::size_t trials = 0;
  /// 95% normal-approximation confidence half-widths of the two delivery
  /// estimates (1.96 * sqrt(p(1-p)/trials); 0 when trials == 0).
  double single_path_half_width = 0.0;
  double multi_path_half_width = 0.0;
};

/// Monte-Carlo failure injection: every non-endpoint peer fails
/// independently with probability `fail_probability` in each of `rounds`
/// draws; a subscriber is delivered if any of its paths has all
/// intermediates alive. Deterministic in `seed`: the same
/// (overlay, publishers, fail_probability, rounds, seed) inputs reproduce
/// the estimates bit for bit.
[[nodiscard]] FaultToleranceResult measure_fault_tolerance(
    const overlay::Overlay& ov, const graph::SocialGraph& g,
    const std::vector<overlay::PeerId>& publishers, double fail_probability,
    std::size_t rounds, std::uint64_t seed);

}  // namespace sel::pubsub
