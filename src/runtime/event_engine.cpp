#include "runtime/event_engine.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sel::runtime {

namespace {

obs::Counter& events_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("runtime.events_fired");
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("runtime.queue_depth");
  return g;
}

}  // namespace

void EventEngine::note_drained(std::size_t fired) {
  if (fired != 0) events_counter().add(static_cast<std::int64_t>(fired));
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
}

bool EventEngine::step() {
  const bool fired = queue_.run_next();
  note_drained(fired ? 1 : 0);
  return fired;
}

std::size_t EventEngine::run_until(double t_s) {
  SEL_TRACE_SCOPE("runtime.drain");
  const std::size_t fired = queue_.run_until(t_s);
  note_drained(fired);
  return fired;
}

std::size_t EventEngine::run(std::size_t max_events) {
  SEL_TRACE_SCOPE("runtime.drain");
  const std::size_t fired = queue_.run_all(max_events);
  note_drained(fired);
  return fired;
}

}  // namespace sel::runtime
