// Deterministic event-driven executor — sim::EventQueue promoted to a
// first-class execution mode of the stack.
//
// The EventEngine owns the virtual clock every transport and protocol timer
// schedules against. It adds, over the raw queue:
//   - a bounded run/step/until API (`step`, `run_until`, `run`) with a
//     runaway backstop, so drivers can interleave virtual time with churn
//     epochs and external control;
//   - runtime.* observability: events-fired counter, a queue-depth gauge
//     refreshed as the queue drains, and a Perfetto-visible span around
//     every drain (SEL_TRACE_SCOPE "runtime.drain");
//   - seeded tie-breaking (Options::tie_seed → EventQueue tie permutation),
//     the determinism-stress knob: two different tie seeds must produce the
//     same delivered message multiset or the protocol depends on accidental
//     scheduling order.
//
// Single-threaded by design: determinism comes from the queue's total event
// order, and callbacks are free to schedule/cancel without synchronization.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace sel::runtime {

class EventEngine {
 public:
  using Callback = sim::EventQueue::Callback;
  using Handle = sim::EventQueue::Handle;

  explicit EventEngine(std::uint64_t tie_seed = 0) noexcept
      : queue_(tie_seed) {}

  /// Schedules `cb` at absolute virtual time `time_s` (>= now).
  Handle schedule(double time_s, Callback cb) {
    return queue_.schedule(time_s, std::move(cb));
  }
  Handle schedule_in(double delay_s, Callback cb) {
    return queue_.schedule_in(delay_s, std::move(cb));
  }
  /// Cancels a pending event; false when already fired/cancelled.
  bool cancel(Handle h) { return queue_.cancel(h); }

  [[nodiscard]] double now_s() const noexcept { return queue_.now(); }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  /// Scheduled-but-unfired events (the queue-depth gauge's source).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  /// Time of the next pending event; infinity when idle.
  [[nodiscard]] double next_event_s() const { return queue_.next_time(); }

  /// Fires the single earliest event. Returns false when idle.
  bool step();

  /// Fires everything due by `t_s`, then advances the clock to `t_s`.
  /// Returns events fired.
  std::size_t run_until(double t_s);

  /// Drains the queue, bounded by `max_events` as a runaway backstop.
  /// Returns events fired.
  std::size_t run(std::size_t max_events = 100'000'000);

 private:
  /// Counts fired events and refreshes the runtime.queue_depth gauge.
  void note_drained(std::size_t fired);

  sim::EventQueue queue_;
};

}  // namespace sel::runtime
