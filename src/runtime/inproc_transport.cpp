#include "runtime/inproc_transport.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace sel::runtime {

namespace {

// Per-hop one-way latency (send → arrival, spikes included). The async
// path's network-side picture, complementing the protocol-side
// pubsub.delivery_latency_s histogram.
obs::Histogram& hop_latency_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("runtime.hop_latency_s");
  return h;
}

obs::Counter& hops_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("runtime.hops_sent");
  return c;
}

}  // namespace

SendOutcome InProcTransport::send(const Message& m, ArrivalFn on_arrival) {
  const double base =
      net_->transfer_time_s(m.from, m.to, m.payload_bytes, m.uplink_share);
  fault::HopFate fate;
  if (fault_ != nullptr) {
    fate = fault_->hop_fate(m.msg, m.from, m.to, m.fault_attempt);
  }
  const double arrival =
      options_.quantize(m.send_s + base * fate.latency_factor);

  hops_counter().add(1);
  SendOutcome outcome;
  outcome.arrive_s = arrival;
  if (fate.dropped) {
    outcome.dropped = true;
    return outcome;
  }
  hop_latency_hist().observe(arrival - m.send_s);
  outcome.copies = fate.duplicated && !m.collapse_duplicates ? 2 : 1;
  for (std::uint32_t c = 0; c < outcome.copies; ++c) {
    // Last copy moves the completion; earlier copies share it by value.
    ArrivalFn done =
        c + 1 == outcome.copies ? std::move(on_arrival) : on_arrival;
    engine_->schedule(arrival, [this, to = m.to, msg = m.msg,
                                done = std::move(done)](double now) {
      Arrival a;
      a.arrive_s = now;
      // Receiver-side draw at the arrival event — stall windows and
      // crash state advance in deterministic event order.
      a.receiver = fault_ != nullptr ? fault_->on_receive(to, msg, now)
                                     : fault::ReceiveState::kOk;
      done(a);
    });
  }
  return outcome;
}

}  // namespace sel::runtime
