// In-process transport backend: the single-process message plane the
// engine always had, factored behind the Transport seam.
//
// Arrival time = send + NetworkModel transfer time (latency +
// payload/bandwidth with uplink sharing), stretched by the fault plan's
// latency spikes; drops and duplicates come from send-side hop fates;
// receiver stall/crash states are drawn at the arrival event. Scheduling
// goes through the shared EventEngine, so runs are bit-identical per seed —
// including under a seeded tie-break permutation.
//
// In Mode::kSuperstep the arrival is quantized up to the next round
// barrier (Options::quantize), turning the same protocol run into the
// paper's barrier-synchronous semantics.
#pragma once

#include "net/network_model.hpp"
#include "runtime/event_engine.hpp"
#include "runtime/runtime.hpp"
#include "runtime/transport.hpp"

namespace sel::runtime {

class InProcTransport : public Transport {
 public:
  /// `engine` and `net` must outlive the transport; `plan` may be null
  /// (perfect wire) and may be swapped at any quiescent point.
  InProcTransport(EventEngine& engine, const net::NetworkModel& net,
                  Options options = {}, fault::FaultPlan* plan = nullptr)
      : engine_(&engine), net_(&net), options_(options), fault_(plan) {}

  void set_fault_plan(fault::FaultPlan* plan) noexcept { fault_ = plan; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "inproc";
  }

  SendOutcome send(const Message& m, ArrivalFn on_arrival) override;

 private:
  EventEngine* engine_;
  const net::NetworkModel* net_;
  Options options_;
  fault::FaultPlan* fault_;  ///< not owned
};

}  // namespace sel::runtime
