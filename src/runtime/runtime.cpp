#include "runtime/runtime.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/env.hpp"

namespace sel::runtime {

std::string_view to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kAsync:
      return "async";
    case Mode::kSuperstep:
      return "superstep";
  }
  return "async";
}

std::string_view to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kSocket:
      return "socket";
  }
  return "inproc";
}

Mode parse_mode(std::string_view s, Mode fallback) noexcept {
  std::string lowered(s);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "async" || lowered == "event") return Mode::kAsync;
  if (lowered == "superstep" || lowered == "rounds") return Mode::kSuperstep;
  return fallback;
}

Options Options::from_env() {
  warn_unknown_sel_env_once();
  Options opts;
  opts.mode = static_cast<Mode>(
      env::get_enum("SEL_RUNTIME", {"async|event", "superstep|rounds"}, 0));
  opts.transport = static_cast<TransportKind>(
      env::get_enum("SEL_TRANSPORT", {"inproc", "socket"}, 0));
  opts.superstep_round_s = env::get_double(
      "SEL_RUNTIME_ROUND_S", opts.superstep_round_s, 1e-6, 1e6);
  return opts;
}

}  // namespace sel::runtime
