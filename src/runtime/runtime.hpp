// Execution-mode seam for the message plane.
//
// The paper evaluates SELECT on a barrier-synchronous Flink simulation;
// production notification delivery is event-driven. Rather than two
// engines, the protocol code (dissemination, ack/retry/failover,
// store-and-forward replay in pubsub/engine.cpp) runs unchanged on either
// semantics; the runtime layer decides *when* scheduled work happens:
//
//   kAsync      continuous virtual time — every hop arrives exactly when
//               the network model says (latency + payload/bandwidth),
//               disseminations overlap freely;
//   kSuperstep  barrier-quantized time — arrivals and protocol timers are
//               rounded up to the next multiple of `superstep_round_s`,
//               reproducing the paper's round-synchronous evaluation.
//
// Both modes are deterministic per seed; with time-independent fault
// classes (drop/duplicate/spike) they deliver the identical message
// multiset (tests/runtime_mode_equivalence_test.cpp). Stall and crash fates
// are drawn at arrival *times*, so those may diverge across modes by
// design.
//
// Knobs: SEL_RUNTIME selects the mode, SEL_TRANSPORT the transport backend
// (transport.hpp), SEL_RUNTIME_ROUND_S the barrier length.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace sel::runtime {

/// Execution semantics of the message plane.
enum class Mode : std::uint8_t {
  kAsync,      ///< event-driven continuous virtual time (default)
  kSuperstep,  ///< arrivals/timers quantized to round barriers
};

/// Transport backend hosting the hop deliveries (transport.hpp).
enum class TransportKind : std::uint8_t {
  kInProc,  ///< single process, event-queue scheduled (default)
  kSocket,  ///< peer shards in separate OS processes behind a wire codec
};

[[nodiscard]] std::string_view to_string(Mode mode) noexcept;
[[nodiscard]] std::string_view to_string(TransportKind kind) noexcept;

/// Parses "async"/"event" or "superstep"/"rounds" (case-insensitive);
/// returns `fallback` for anything else.
[[nodiscard]] Mode parse_mode(std::string_view s, Mode fallback) noexcept;

/// Resolved runtime configuration for one engine instance.
struct Options {
  Mode mode = Mode::kAsync;
  TransportKind transport = TransportKind::kInProc;
  /// Barrier length for kSuperstep, virtual seconds.
  double superstep_round_s = 1.0;
  /// Non-zero permutes equal-time event firing (EventQueue tie seed) — the
  /// determinism-stress mode; 0 keeps FIFO order.
  std::uint64_t tie_seed = 0;

  /// SEL_RUNTIME / SEL_TRANSPORT / SEL_RUNTIME_ROUND_S applied over the
  /// defaults (typed env::get_enum; unknown values keep the default).
  [[nodiscard]] static Options from_env();

  /// Rounds `t_s` up to the next barrier in kSuperstep mode; identity in
  /// kAsync. Times already on a barrier stay put.
  [[nodiscard]] double quantize(double t_s) const noexcept {
    if (mode != Mode::kSuperstep) return t_s;
    return std::ceil(t_s / superstep_round_s) * superstep_round_s;
  }
};

}  // namespace sel::runtime
