#include "runtime/socket_transport.hpp"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "runtime/wire.hpp"

namespace sel::runtime {

namespace {

obs::Counter& remote_deliveries_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("runtime.remote_deliveries");
  return c;
}

obs::Counter& hops_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("runtime.hops_sent");
  return c;
}

obs::Histogram& hop_latency_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("runtime.hop_latency_s");
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardServer (child-process side)
// ---------------------------------------------------------------------------

ShardServer::ShardServer(int fd, std::uint32_t shard,
                         const fault::FaultSpec& spec, std::uint64_t seed,
                         std::size_t num_peers)
    : fd_(fd), shard_(shard), plan_(spec, seed, num_peers) {}

int ShardServer::serve() {
  std::vector<std::uint8_t> frame;
  for (;;) {
    const wire::IoStatus st = wire::read_frame(fd_, frame);
    if (st == wire::IoStatus::kClosed) return 0;  // driver went away cleanly
    if (st != wire::IoStatus::kOk) return 1;
    wire::FrameType type{};
    if (!wire::frame_type(frame, type)) return 1;
    switch (type) {
      case wire::FrameType::kHello: {
        // Echo the hello back — the driver's liveness handshake.
        if (wire::write_frame(fd_, frame) != wire::IoStatus::kOk) return 1;
        break;
      }
      case wire::FrameType::kDeliver: {
        wire::Deliver d;
        if (!wire::decode(frame, d)) return 1;
        wire::DeliverAck ack;
        ack.msg = d.msg;
        ack.to = d.to;
        ack.receiver_state = static_cast<std::uint8_t>(
            plan_.spec().any() ? plan_.on_receive(d.to, d.msg, d.arrive_s)
                               : fault::ReceiveState::kOk);
        if (wire::write_frame(fd_, wire::encode(ack)) != wire::IoStatus::kOk) {
          return 1;
        }
        break;
      }
      case wire::FrameType::kSnapshotRequest: {
        // Ship this process's full registry state to the driver, memory
        // gauges freshly polled so the merged report carries a per-shard
        // mem.* breakdown.
        obs::poll_memory_gauges();
        wire::MetricsSnapshot snap;
        snap.shard = shard_;
        snap.json = obs::snapshot_to_json(
                        obs::MetricsRegistry::global().snapshot())
                        .dump();
        if (wire::write_frame(fd_, wire::encode(snap)) !=
            wire::IoStatus::kOk) {
          return 1;
        }
        break;
      }
      case wire::FrameType::kPlanReset: {
        // Fire-and-forget: the socket is an ordered stream, so the reset is
        // applied before any kDeliver the driver sends afterwards. No reply
        // keeps the frame usable between engine runs without a sync point.
        plan_.reset();
        break;
      }
      case wire::FrameType::kShutdown:
        return 0;
      case wire::FrameType::kDeliverAck:
      case wire::FrameType::kSnapshot:
        return 1;  // these only ever flow server -> driver
    }
  }
}

// ---------------------------------------------------------------------------
// SpawnedShards (process harness)
// ---------------------------------------------------------------------------

SpawnedShards SpawnedShards::spawn_loopback(std::uint32_t num_shards,
                                            const fault::FaultSpec& spec,
                                            std::uint64_t seed,
                                            std::size_t num_peers) {
  SEL_EXPECTS(num_shards >= 1);
  SpawnedShards shards;
  shards.map_.num_shards = num_shards;
  shards.fds_.assign(num_shards, -1);
  shards.pids_.assign(num_shards, -1);
  for (std::uint32_t s = 1; s < num_shards; ++s) {
    int pair[2];
    SEL_ASSERT(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0);
    const pid_t pid = ::fork();
    SEL_ASSERT(pid >= 0);
    if (pid == 0) {
      // Child: serve the shard on its end of the pair, then exit without
      // running parent atexit handlers (gtest, coverage flushes excepted —
      // _exit keeps the child strictly a frame server).
      ::close(pair[0]);
      // Close driver ends of previously spawned shards inherited by fork.
      for (std::uint32_t prev = 1; prev < s; ++prev) {
        if (shards.fds_[prev] >= 0) ::close(shards.fds_[prev]);
      }
      // The child inherits the parent's metric/byte totals at fork; zero
      // them so its end-of-run snapshot holds only shard-local activity —
      // otherwise the driver-side merge would double-count everything the
      // parent did before spawning.
      obs::MetricsRegistry::global().reset();
      obs::RoundSampler::global().reset();
      obs::MemTracker::global().reset();
      ShardServer server(pair[1], s, spec, seed, num_peers);
      const int rc = server.serve();
      ::close(pair[1]);
      ::_exit(rc);
    }
    ::close(pair[1]);
    shards.fds_[s] = pair[0];
    shards.pids_[s] = pid;
  }
  // Handshake: every server must answer a hello before the driver builds
  // anything on top.
  for (std::uint32_t s = 1; s < num_shards; ++s) {
    wire::Hello hello{s, num_shards, static_cast<std::uint32_t>(num_peers)};
    SEL_ASSERT(wire::write_frame(shards.fds_[s], wire::encode(hello)) ==
               wire::IoStatus::kOk);
    std::vector<std::uint8_t> reply;
    SEL_ASSERT(wire::read_frame(shards.fds_[s], reply) == wire::IoStatus::kOk);
    wire::Hello echoed;
    SEL_ASSERT(wire::decode(reply, echoed) && echoed.shard == s);
  }
  return shards;
}

SpawnedShards::SpawnedShards(SpawnedShards&& other) noexcept
    : map_(other.map_),
      fds_(std::move(other.fds_)),
      pids_(std::move(other.pids_)) {
  other.fds_.clear();
  other.pids_.clear();
}

std::vector<std::pair<std::uint32_t, obs::Snapshot>>
SpawnedShards::fetch_snapshots() const {
  std::vector<std::pair<std::uint32_t, obs::Snapshot>> out;
  for (std::size_t s = 0; s < fds_.size(); ++s) {
    if (fds_[s] < 0) continue;  // driver shard (or already shut down)
    SEL_ASSERT(wire::write_frame(fds_[s], wire::encode_snapshot_request()) ==
               wire::IoStatus::kOk);
    std::vector<std::uint8_t> reply;
    SEL_ASSERT(wire::read_frame(fds_[s], reply) == wire::IoStatus::kOk);
    wire::MetricsSnapshot frame;
    SEL_ASSERT(wire::decode(reply, frame) &&
               frame.shard == static_cast<std::uint32_t>(s));
    out.emplace_back(frame.shard,
                     obs::snapshot_from_json(obs::json::Value::parse(
                         frame.json)));
  }
  return out;
}

void SpawnedShards::reset_plans() const {
  for (std::size_t s = 0; s < fds_.size(); ++s) {
    if (fds_[s] < 0) continue;
    SEL_ASSERT(wire::write_frame(fds_[s], wire::encode_plan_reset()) ==
               wire::IoStatus::kOk);
  }
}

std::size_t SpawnedShards::collect_snapshots(obs::MetricsRegistry& reg) {
  // fds_ is indexed by shard id, so iteration order IS ascending shard
  // order — the merge is deterministic by construction.
  const auto snapshots = fetch_snapshots();
  for (const auto& [shard, snap] : snapshots) {
    reg.merge_snapshot(snap, shard);
  }
  reg.gauge("runtime.shard.count")
      .set(static_cast<double>(map_.num_shards));
  return snapshots.size();
}

bool SpawnedShards::shutdown() {
  bool clean = true;
  for (std::size_t s = 0; s < fds_.size(); ++s) {
    if (fds_[s] < 0) continue;
    if (wire::write_frame(fds_[s], wire::encode_shutdown()) !=
        wire::IoStatus::kOk) {
      clean = false;
    }
    ::close(fds_[s]);
    fds_[s] = -1;
  }
  for (std::size_t s = 0; s < pids_.size(); ++s) {
    if (pids_[s] < 0) continue;
    int status = 0;
    if (::waitpid(pids_[s], &status, 0) != pids_[s] ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      log_warn("shard server " + std::to_string(s) + " exited uncleanly");
      clean = false;
    }
    pids_[s] = -1;
  }
  return clean;
}

SpawnedShards::~SpawnedShards() { shutdown(); }

// ---------------------------------------------------------------------------
// SocketTransport (driver side)
// ---------------------------------------------------------------------------

fault::ReceiveState SocketTransport::receive_state(std::uint64_t msg,
                                                   std::uint32_t from,
                                                   std::uint32_t to,
                                                   double arrive_s) {
  const std::uint32_t shard = shards_->shard_map().shard_of(to);
  if (shard == 0) {
    // Locally hosted peer: same draw InProcTransport performs.
    return fault_ != nullptr ? fault_->on_receive(to, msg, arrive_s)
                             : fault::ReceiveState::kOk;
  }
  const int fd = shards_->fds()[shard];
  SEL_ASSERT(fd >= 0);
  ++remote_deliveries_;
  remote_deliveries_counter().add(1);
  wire::Deliver d{msg, from, to, arrive_s};
  SEL_ASSERT(wire::write_frame(fd, wire::encode(d)) == wire::IoStatus::kOk);
  std::vector<std::uint8_t> reply;
  SEL_ASSERT(wire::read_frame(fd, reply) == wire::IoStatus::kOk);
  wire::DeliverAck ack;
  SEL_ASSERT(wire::decode(reply, ack) && ack.msg == msg && ack.to == to);
  SEL_ASSERT(ack.receiver_state <=
             static_cast<std::uint8_t>(fault::ReceiveState::kCrashed));
  return static_cast<fault::ReceiveState>(ack.receiver_state);
}

SendOutcome SocketTransport::send(const Message& m, ArrivalFn on_arrival) {
  const double base =
      net_->transfer_time_s(m.from, m.to, m.payload_bytes, m.uplink_share);
  fault::HopFate fate;
  if (fault_ != nullptr) {
    fate = fault_->hop_fate(m.msg, m.from, m.to, m.fault_attempt);
  }
  const double arrival =
      options_.quantize(m.send_s + base * fate.latency_factor);

  hops_counter().add(1);
  SendOutcome outcome;
  outcome.arrive_s = arrival;
  if (fate.dropped) {
    outcome.dropped = true;
    return outcome;
  }
  hop_latency_hist().observe(arrival - m.send_s);
  outcome.copies = fate.duplicated && !m.collapse_duplicates ? 2 : 1;
  for (std::uint32_t c = 0; c < outcome.copies; ++c) {
    ArrivalFn done =
        c + 1 == outcome.copies ? std::move(on_arrival) : on_arrival;
    engine_->schedule(arrival, [this, msg = m.msg, from = m.from, to = m.to,
                                done = std::move(done)](double now) {
      Arrival a;
      a.arrive_s = now;
      a.receiver = receive_state(msg, from, to, now);
      done(a);
    });
  }
  return outcome;
}

}  // namespace sel::runtime
