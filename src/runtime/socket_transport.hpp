// Socket transport backend: peer shards hosted by separate OS processes.
//
// Topology: the driver process (shard 0) runs the protocol engine and the
// virtual clock; every other shard is a ShardServer in its own process,
// connected to the driver by one loopback stream socket (an AF_UNIX
// socketpair) speaking the length-prefixed codec in wire.hpp.
//
// Division of labour per hop from u to v:
//   - the driver draws the send-side fate (drop/duplicate/spike — a pure
//     hash, host-independent) and computes the virtual arrival time from
//     the NetworkModel, exactly like InProcTransport;
//   - at the arrival event, the process hosting v draws the receiver-side
//     state (stall window, crash): locally when v is in shard 0, otherwise
//     via a kDeliver/kDeliverAck round-trip to v's shard server. The
//     socket round-trip is real-world blocking I/O inside the virtual-time
//     event, so wall clocks never leak into simulated time and same-seed
//     runs stay deterministic.
//
// SpawnedShards is the process harness: it forks the shard servers over
// socketpairs (fork BEFORE creating any threads — see spawn_loopback) and
// tears them down with a kShutdown frame + waitpid on destruction.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "net/network_model.hpp"
#include "runtime/event_engine.hpp"
#include "runtime/runtime.hpp"
#include "runtime/transport.hpp"

namespace sel::runtime {

/// Static peer partition: peer p lives in shard p % num_shards. Shard 0 is
/// the driver process.
struct ShardMap {
  std::uint32_t num_shards = 1;

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t peer) const noexcept {
    return num_shards == 0 ? 0 : peer % num_shards;
  }
};

/// Serves one peer shard: answers kDeliver frames with the receiver state
/// its fault plan draws, until kShutdown or EOF. Runs in the child process.
class ShardServer {
 public:
  /// `spec`/`seed`/`num_peers` must match the driver's fault plan so the
  /// shard's receiver-side draws line up with an equivalent in-process run.
  ShardServer(int fd, std::uint32_t shard, const fault::FaultSpec& spec,
              std::uint64_t seed, std::size_t num_peers);

  /// Frame loop; returns 0 on orderly shutdown, 1 on a protocol/socket
  /// error. Call from the forked child, then _exit() with the result.
  int serve();

 private:
  int fd_;
  std::uint32_t shard_;
  fault::FaultPlan plan_;
};

/// Forked shard-server processes plus their driver-side sockets.
/// Non-copyable RAII: the destructor sends kShutdown on every socket and
/// reaps the children.
class SpawnedShards {
 public:
  /// Forks `num_shards - 1` ShardServer children (shards 1..n-1), each on
  /// its own socketpair. MUST be called before the process creates threads
  /// (the children only ever run the serve loop). Aborts on fork/socket
  /// failure.
  static SpawnedShards spawn_loopback(std::uint32_t num_shards,
                                      const fault::FaultSpec& spec,
                                      std::uint64_t seed,
                                      std::size_t num_peers);

  SpawnedShards(const SpawnedShards&) = delete;
  SpawnedShards& operator=(const SpawnedShards&) = delete;
  SpawnedShards(SpawnedShards&& other) noexcept;
  SpawnedShards& operator=(SpawnedShards&& other) = delete;
  ~SpawnedShards();

  [[nodiscard]] const ShardMap& shard_map() const noexcept { return map_; }
  /// Driver-side socket per shard; fd -1 for shard 0 (local, no socket).
  [[nodiscard]] const std::vector<int>& fds() const noexcept { return fds_; }

  /// Asks every live shard server for its registry snapshot (ascending
  /// shard id, one blocking round-trip each). Returns (shard, snapshot)
  /// pairs; the children keep serving afterwards, so this composes with a
  /// later shutdown(). Empty once the sockets are closed.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, obs::Snapshot>>
  fetch_snapshots() const;

  /// Clears every shard server's fault-plan receiver state (stall windows,
  /// crash set, draw sequence) with a kPlanReset frame. Call at the start
  /// of each engine run when one fleet serves several runs back to back —
  /// a driver that constructs a fresh FaultPlan per run needs the shards'
  /// plans equally fresh, or receiver draws diverge from an in-process run.
  void reset_plans() const;

  /// fetch_snapshots() + deterministic merge into `reg` (ascending shard
  /// id; see MetricsRegistry::merge_snapshot). Publishes the shard count as
  /// `runtime.shard.count` and returns the number of snapshots merged.
  /// Call once, after the run drains and before shutdown().
  std::size_t collect_snapshots(obs::MetricsRegistry& reg);

  /// Shuts the servers down and reaps them; returns true when every child
  /// exited cleanly (status 0). Idempotent; the destructor calls it too.
  bool shutdown();

 private:
  SpawnedShards() = default;

  ShardMap map_;
  std::vector<int> fds_;      ///< per shard; -1 for the driver shard
  std::vector<pid_t> pids_;   ///< per shard; -1 for the driver shard
};

class SocketTransport : public Transport {
 public:
  /// `engine`/`net` must outlive the transport. `shards` holds the live
  /// server connections; `plan` is the driver-side plan for send fates and
  /// shard-0 receiver draws (may be null for a perfect wire).
  SocketTransport(EventEngine& engine, const net::NetworkModel& net,
                  const SpawnedShards& shards, Options options = {},
                  fault::FaultPlan* plan = nullptr)
      : engine_(&engine),
        net_(&net),
        shards_(&shards),
        options_(options),
        fault_(plan) {}

  void set_fault_plan(fault::FaultPlan* plan) noexcept { fault_ = plan; }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "socket";
  }

  SendOutcome send(const Message& m, ArrivalFn on_arrival) override;

  /// kDeliver round-trips performed (remote-shard arrivals).
  [[nodiscard]] std::size_t remote_deliveries() const noexcept {
    return remote_deliveries_;
  }

 private:
  /// Receiver-state draw for an arrival: local plan, or the wire.
  [[nodiscard]] fault::ReceiveState receive_state(std::uint64_t msg,
                                                  std::uint32_t from,
                                                  std::uint32_t to,
                                                  double arrive_s);

  EventEngine* engine_;
  const net::NetworkModel* net_;
  const SpawnedShards* shards_;
  Options options_;
  fault::FaultPlan* fault_;  ///< not owned
  std::size_t remote_deliveries_ = 0;
};

}  // namespace sel::runtime
