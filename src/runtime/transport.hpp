// Pluggable transport plane: who carries a hop, and when it lands.
//
// The notification engine (pubsub/engine.cpp) speaks one narrow contract —
// send(message, on_arrival) — and stays ignorant of *how* the hop travels:
//
//   InProcTransport    single process; arrivals are events on the shared
//                      EventEngine at NetworkModel transfer times, with
//                      FaultPlan fates applied per hop (inproc_transport.hpp);
//   SocketTransport    peer shards hosted by separate OS processes behind a
//                      length-prefixed wire codec; virtual time still rules
//                      *when* a hop lands, the socket round-trip decides
//                      what the remote receiver answered
//                      (socket_transport.hpp).
//
// Contract: every send() produces exactly one synchronous SendOutcome and
// then `copies` arrival completions, each delivered through the EventEngine
// at its virtual arrival time (never synchronously from inside send()).
// A dropped hop produces no arrivals at all — the sender arms its own loss
// detection (ack timeout), exactly as a real sender would.
//
// Receiver-side fates (stall windows, crashes) are drawn by whichever
// process hosts the receiving peer, at the arrival event; send-side fates
// (drop, duplicate, latency spike) are drawn by the sender. Both draws are
// pure in (seed, message, peers, attempt), which is what keeps socket and
// in-process runs comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "fault/fault.hpp"

namespace sel::runtime {

/// One hop of a dissemination, as the transport sees it. The protocol
/// meaning of the hop (tree edge, failover leg, retry) stays in the engine;
/// the transport only needs addressing, sizing and the fault key.
struct Message {
  std::uint64_t msg = 0;       ///< pubsub message id (fault/provenance key)
  std::uint32_t from = 0;      ///< sending peer
  std::uint32_t to = 0;        ///< receiving peer
  /// Attempt index *as the fault plan should key it* — the engine salts
  /// failover/detour resends so shared edges never replay consumed fates.
  std::uint32_t fault_attempt = 0;
  double payload_bytes = 0.0;
  double send_s = 0.0;  ///< virtual send time
  /// Simultaneous transfers sharing the sender's uplink (tree fan-out).
  std::uint32_t uplink_share = 1;
  /// Never materialize a second copy even when the fault plan duplicates
  /// the hop (the fate is still drawn, so the fault stream stays aligned).
  /// The engine sets this on source-routed failover legs, where a duplicate
  /// would double every remaining hop of the chain.
  bool collapse_duplicates = false;
};

/// Synchronous result of a send: what the wire did with the hop.
struct SendOutcome {
  bool dropped = false;  ///< lost in transit; no arrival will ever fire
  /// Arrival completions scheduled (0 when dropped; 2 when the fault plan
  /// duplicated the hop).
  std::uint32_t copies = 0;
  /// Virtual arrival time of the (first) copy — also filled for dropped
  /// hops (when the copy *would* have landed), for provenance records.
  double arrive_s = 0.0;
};

/// One arriving copy, reported at its virtual arrival time.
struct Arrival {
  double arrive_s = 0.0;
  /// Receiver condition drawn by the hosting process (kOk without faults).
  fault::ReceiveState receiver = fault::ReceiveState::kOk;
};

class Transport {
 public:
  using ArrivalFn = std::function<void(const Arrival&)>;

  virtual ~Transport() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Ships one hop. `on_arrival` runs once per arriving copy (see
  /// SendOutcome::copies), at that copy's virtual arrival time, via the
  /// EventEngine — never synchronously from inside this call.
  virtual SendOutcome send(const Message& m, ArrivalFn on_arrival) = 0;
};

}  // namespace sel::runtime
