#include "runtime/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sel::runtime::wire {

namespace {

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& b, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(b, bits);
}

/// Bounds-checked little-endian reader over one decoded payload.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(&buf) {}

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > buf_->size()) return false;
    out = (*buf_)[pos_++];
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (pos_ + 4 > buf_->size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>((*buf_)[pos_++]) << (8 * i);
    }
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (pos_ + 8 > buf_->size()) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>((*buf_)[pos_++]) << (8 * i);
    }
    return true;
  }

  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == buf_->size(); }

 private:
  const std::vector<std::uint8_t>* buf_;
  std::size_t pos_ = 0;
};

bool expect_type(Reader& r, FrameType want) {
  std::uint8_t t = 0;
  return r.u8(t) && t == static_cast<std::uint8_t>(want);
}

/// Full-buffer write, retrying on EINTR and partial writes.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Full-buffer read. Returns kClosed only on EOF before the first byte.
IoStatus read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (n == 0) return off == 0 ? IoStatus::kClosed : IoStatus::kError;
    off += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

}  // namespace

std::vector<std::uint8_t> encode(const Hello& h) {
  std::vector<std::uint8_t> b;
  put_u8(b, static_cast<std::uint8_t>(FrameType::kHello));
  put_u32(b, h.shard);
  put_u32(b, h.num_shards);
  put_u32(b, h.num_peers);
  return b;
}

std::vector<std::uint8_t> encode(const Deliver& d) {
  std::vector<std::uint8_t> b;
  put_u8(b, static_cast<std::uint8_t>(FrameType::kDeliver));
  put_u64(b, d.msg);
  put_u32(b, d.from);
  put_u32(b, d.to);
  put_f64(b, d.arrive_s);
  return b;
}

std::vector<std::uint8_t> encode(const DeliverAck& a) {
  std::vector<std::uint8_t> b;
  put_u8(b, static_cast<std::uint8_t>(FrameType::kDeliverAck));
  put_u64(b, a.msg);
  put_u32(b, a.to);
  put_u8(b, a.receiver_state);
  return b;
}

std::vector<std::uint8_t> encode(const MetricsSnapshot& s) {
  std::vector<std::uint8_t> b;
  b.reserve(1 + 4 + s.json.size());
  put_u8(b, static_cast<std::uint8_t>(FrameType::kSnapshot));
  put_u32(b, s.shard);
  b.insert(b.end(), s.json.begin(), s.json.end());
  return b;
}

std::vector<std::uint8_t> encode_shutdown() {
  std::vector<std::uint8_t> b;
  put_u8(b, static_cast<std::uint8_t>(FrameType::kShutdown));
  return b;
}

std::vector<std::uint8_t> encode_snapshot_request() {
  std::vector<std::uint8_t> b;
  put_u8(b, static_cast<std::uint8_t>(FrameType::kSnapshotRequest));
  return b;
}

std::vector<std::uint8_t> encode_plan_reset() {
  std::vector<std::uint8_t> b;
  put_u8(b, static_cast<std::uint8_t>(FrameType::kPlanReset));
  return b;
}

bool frame_type(const std::vector<std::uint8_t>& payload, FrameType& out) {
  if (payload.empty()) return false;
  const std::uint8_t t = payload.front();
  if (t < static_cast<std::uint8_t>(FrameType::kHello) ||
      t > static_cast<std::uint8_t>(FrameType::kPlanReset)) {
    return false;
  }
  out = static_cast<FrameType>(t);
  return true;
}

bool decode(const std::vector<std::uint8_t>& payload, Hello& out) {
  Reader r(payload);
  return expect_type(r, FrameType::kHello) && r.u32(out.shard) &&
         r.u32(out.num_shards) && r.u32(out.num_peers) && r.done();
}

bool decode(const std::vector<std::uint8_t>& payload, Deliver& out) {
  Reader r(payload);
  return expect_type(r, FrameType::kDeliver) && r.u64(out.msg) &&
         r.u32(out.from) && r.u32(out.to) && r.f64(out.arrive_s) && r.done();
}

bool decode(const std::vector<std::uint8_t>& payload, DeliverAck& out) {
  Reader r(payload);
  return expect_type(r, FrameType::kDeliverAck) && r.u64(out.msg) &&
         r.u32(out.to) && r.u8(out.receiver_state) && r.done();
}

bool decode(const std::vector<std::uint8_t>& payload, MetricsSnapshot& out) {
  Reader r(payload);
  if (!expect_type(r, FrameType::kSnapshot) || !r.u32(out.shard)) {
    return false;
  }
  // Everything after the fixed header is the JSON text.
  constexpr std::size_t kHeader = 1 + 4;
  out.json.assign(payload.begin() + kHeader, payload.end());
  return true;
}

IoStatus write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) return IoStatus::kError;
  std::uint8_t prefix[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  if (!write_all(fd, prefix, sizeof(prefix))) return IoStatus::kError;
  if (!write_all(fd, payload.data(), payload.size())) return IoStatus::kError;
  return IoStatus::kOk;
}

IoStatus read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  const IoStatus st = read_all(fd, prefix, sizeof(prefix));
  if (st != IoStatus::kOk) return st;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) return IoStatus::kError;
  payload.resize(len);
  if (len == 0) return IoStatus::kOk;
  const IoStatus body = read_all(fd, payload.data(), len);
  // EOF mid-frame is corruption, not a clean close.
  return body == IoStatus::kOk ? IoStatus::kOk : IoStatus::kError;
}

}  // namespace sel::runtime::wire
