// Length-prefixed wire codec for the socket transport plane.
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32 length      payload bytes that follow (type byte included)
//   u8  type        FrameType
//   ...             type-specific fields, in declaration order
//
// Frames are small (< 100 bytes) and fixed-shape per type; the codec is a
// hand-rolled byte writer/reader rather than a serialization framework so
// the socket backend adds no dependencies. encode_* never fails; decode_*
// returns false on truncated or mistyped payloads (the caller treats that
// as a protocol error and tears the connection down).
//
// I/O helpers read/write whole frames over a connected stream socket with
// EINTR-safe full-buffer loops; a clean EOF while reading a length prefix
// returns kClosed so servers can distinguish shutdown from corruption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sel::runtime::wire {

enum class FrameType : std::uint8_t {
  kHello = 1,       ///< handshake: shard id + shard count + peer count
  kDeliver = 2,     ///< one hop copy arriving at a peer the remote hosts
  kDeliverAck = 3,  ///< receiver state the remote drew for that arrival
  kShutdown = 4,    ///< orderly teardown; the server exits its loop
};

struct Hello {
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 0;
  std::uint32_t num_peers = 0;
};

/// One arriving hop copy, shipped to the shard hosting `to`.
struct Deliver {
  std::uint64_t msg = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double arrive_s = 0.0;  ///< virtual arrival time at the receiver
};

struct DeliverAck {
  std::uint64_t msg = 0;
  std::uint32_t to = 0;
  std::uint8_t receiver_state = 0;  ///< fault::ReceiveState
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Hello& h);
[[nodiscard]] std::vector<std::uint8_t> encode(const Deliver& d);
[[nodiscard]] std::vector<std::uint8_t> encode(const DeliverAck& a);
[[nodiscard]] std::vector<std::uint8_t> encode_shutdown();

/// Type of an encoded payload; returns false on an empty/unknown payload.
[[nodiscard]] bool frame_type(const std::vector<std::uint8_t>& payload,
                              FrameType& out);

[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, Hello& out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload,
                          Deliver& out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload,
                          DeliverAck& out);

enum class IoStatus : std::uint8_t {
  kOk,
  kClosed,  ///< clean EOF at a frame boundary
  kError,   ///< short read/write, oversized frame, or socket error
};

/// Writes `payload` as one length-prefixed frame (full-buffer, EINTR-safe).
[[nodiscard]] IoStatus write_frame(int fd,
                                   const std::vector<std::uint8_t>& payload);

/// Reads one length-prefixed frame into `payload`.
[[nodiscard]] IoStatus read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Frames above this are protocol errors (nothing legitimate comes close).
inline constexpr std::uint32_t kMaxFrameBytes = 4096;

}  // namespace sel::runtime::wire
