// Length-prefixed wire codec for the socket transport plane.
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32 length      payload bytes that follow (type byte included)
//   u8  type        FrameType
//   ...             type-specific fields, in declaration order
//
// Frames are small (< 100 bytes) and fixed-shape per type; the codec is a
// hand-rolled byte writer/reader rather than a serialization framework so
// the socket backend adds no dependencies. encode_* never fails; decode_*
// returns false on truncated or mistyped payloads (the caller treats that
// as a protocol error and tears the connection down).
//
// I/O helpers read/write whole frames over a connected stream socket with
// EINTR-safe full-buffer loops; a clean EOF while reading a length prefix
// returns kClosed so servers can distinguish shutdown from corruption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sel::runtime::wire {

enum class FrameType : std::uint8_t {
  kHello = 1,            ///< handshake: shard id + shard count + peer count
  kDeliver = 2,          ///< one hop copy arriving at a peer the remote hosts
  kDeliverAck = 3,       ///< receiver state the remote drew for that arrival
  kShutdown = 4,         ///< orderly teardown; the server exits its loop
  kSnapshotRequest = 5,  ///< driver asks the shard for its metrics state
  kSnapshot = 6,         ///< shard id + JSON-serialized registry snapshot
  kPlanReset = 7,        ///< clear the shard's fault-plan receiver state
};

struct Hello {
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 0;
  std::uint32_t num_peers = 0;
};

/// One arriving hop copy, shipped to the shard hosting `to`.
struct Deliver {
  std::uint64_t msg = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double arrive_s = 0.0;  ///< virtual arrival time at the receiver
};

struct DeliverAck {
  std::uint64_t msg = 0;
  std::uint32_t to = 0;
  std::uint8_t receiver_state = 0;  ///< fault::ReceiveState
};

/// End-of-run metrics hand-off: a shard child's full registry state
/// (counters/gauges/histograms/spans) serialized with obs snapshot JSON.
/// The driver merges these into its own registry (sorted by shard id) so
/// multi-process reports cover every process, not just the parent.
struct MetricsSnapshot {
  std::uint32_t shard = 0;
  std::string json;  ///< obs::snapshot_to_json(...).dump()
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Hello& h);
[[nodiscard]] std::vector<std::uint8_t> encode(const Deliver& d);
[[nodiscard]] std::vector<std::uint8_t> encode(const DeliverAck& a);
[[nodiscard]] std::vector<std::uint8_t> encode(const MetricsSnapshot& s);
[[nodiscard]] std::vector<std::uint8_t> encode_shutdown();
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_request();
[[nodiscard]] std::vector<std::uint8_t> encode_plan_reset();

/// Type of an encoded payload; returns false on an empty/unknown payload.
[[nodiscard]] bool frame_type(const std::vector<std::uint8_t>& payload,
                              FrameType& out);

[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, Hello& out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload,
                          Deliver& out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload,
                          DeliverAck& out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload,
                          MetricsSnapshot& out);

enum class IoStatus : std::uint8_t {
  kOk,
  kClosed,  ///< clean EOF at a frame boundary
  kError,   ///< short read/write, oversized frame, or socket error
};

/// Writes `payload` as one length-prefixed frame (full-buffer, EINTR-safe).
[[nodiscard]] IoStatus write_frame(int fd,
                                   const std::vector<std::uint8_t>& payload);

/// Reads one length-prefixed frame into `payload`.
[[nodiscard]] IoStatus read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Frames above this are protocol errors. Hop frames stay < 100 bytes; the
/// cap exists for kSnapshot, whose JSON payload grows with the number of
/// registered instruments (a full registry serializes to tens of KiB —
/// 4 MiB is far beyond any legitimate snapshot).
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

}  // namespace sel::runtime::wire
