#include "select/analysis.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "net/id_space.hpp"

namespace sel::core {

using overlay::PeerId;

CoverageReport friend_coverage(const overlay::RingSubstrate& ov,
                               const graph::SocialGraph& g,
                               std::size_t sample_pairs, std::uint64_t seed,
                               const overlay::RouteOptions& opts) {
  CoverageReport report;
  const std::size_t n = g.num_nodes();
  if (n == 0) return report;
  Rng rng(seed);
  std::size_t one = 0;
  std::size_t two = 0;
  std::size_t beyond = 0;
  double hop_total = 0.0;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < sample_pairs; ++i) {
    PeerId from = overlay::kInvalidPeer;
    for (int attempts = 0; attempts < 64; ++attempts) {
      const auto candidate = static_cast<PeerId>(rng.below(n));
      if (g.degree(candidate) > 0 && ov.joined(candidate)) {
        from = candidate;
        break;
      }
    }
    if (from == overlay::kInvalidPeer) break;
    const auto nbrs = g.neighbors(from);
    const PeerId to = nbrs[rng.below(nbrs.size())];
    const auto r = ov.greedy_route(from, to, opts);
    if (!r.success) {
      ++beyond;
      continue;
    }
    ++delivered;
    hop_total += static_cast<double>(r.hops());
    if (r.hops() <= 1) {
      ++one;
    } else if (r.hops() == 2) {
      ++two;
    } else {
      ++beyond;
    }
  }
  const double total = static_cast<double>(one + two + beyond);
  if (total > 0.0) {
    report.one_hop_fraction = static_cast<double>(one) / total;
    report.two_hop_fraction = static_cast<double>(two) / total;
    report.beyond_fraction = static_cast<double>(beyond) / total;
  }
  if (delivered > 0) {
    report.avg_hops = hop_total / static_cast<double>(delivered);
  }
  return report;
}

std::vector<IdCluster> id_clusters(const overlay::RingSubstrate& ov,
                                   double gap_threshold) {
  std::vector<double> ids;
  ids.reserve(ov.joined_count());
  for (PeerId p = 0; p < ov.num_peers(); ++p) {
    if (ov.joined(p)) ids.push_back(ov.id(p).value());
  }
  std::vector<IdCluster> clusters;
  if (ids.empty()) return clusters;
  std::sort(ids.begin(), ids.end());

  // Find the largest gap to anchor the segmentation (the ring has no
  // natural start).
  const std::size_t n = ids.size();
  std::size_t anchor = 0;
  double max_gap = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double next = ids[(i + 1) % n] + (i + 1 == n ? 1.0 : 0.0);
    const double gap = next - ids[i];
    if (gap > max_gap) {
      max_gap = gap;
      anchor = (i + 1) % n;
    }
  }
  IdCluster current{ids[anchor], ids[anchor], 1};
  double prev = ids[anchor];
  for (std::size_t step = 1; step < n; ++step) {
    double value = ids[(anchor + step) % n];
    if (value < prev) value += 1.0;  // unwrap
    if (value - prev > gap_threshold) {
      current.hi = prev;
      clusters.push_back(current);
      current = IdCluster{value, value, 1};
    } else {
      ++current.size;
    }
    prev = value;
  }
  current.hi = prev;
  clusters.push_back(current);
  return clusters;
}

double ring_social_coherence(const overlay::RingSubstrate& ov,
                             graph::TieStrengthIndex& tie,
                             std::size_t min_common) {
  const graph::SocialGraph& g = tie.graph();
  std::size_t coherent = 0;
  std::size_t total = 0;
  for (PeerId p = 0; p < ov.num_peers(); ++p) {
    if (!ov.joined(p)) continue;
    const PeerId succ = ov.successor(p);
    if (succ == overlay::kInvalidPeer) continue;
    ++total;
    if (g.has_edge(p, succ) || tie.common_neighbors(p, succ) >= min_common) {
      ++coherent;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(coherent) /
                          static_cast<double>(total);
}

double ring_social_coherence(const overlay::RingSubstrate& ov,
                             const graph::SocialGraph& g,
                             std::size_t min_common) {
  graph::TieStrengthIndex tie(g);
  return ring_social_coherence(ov, tie, min_common);
}

double link_strength_lift(const overlay::RingSubstrate& ov,
                          graph::TieStrengthIndex& tie, std::uint64_t seed) {
  const graph::SocialGraph& g = tie.graph();
  double linked_strength = 0.0;
  std::size_t linked_count = 0;
  for (PeerId p = 0; p < ov.num_peers(); ++p) {
    for (const PeerId q : ov.out_links(p)) {
      linked_strength += tie.social_strength(p, q);
      ++linked_count;
    }
  }
  if (linked_count == 0) return 0.0;
  linked_strength /= static_cast<double>(linked_count);

  // Baseline: uniformly random peer pairs.
  Rng rng(seed);
  double random_strength = 0.0;
  std::size_t random_count = 0;
  for (std::size_t i = 0; i < 4000 && g.num_nodes() > 1; ++i) {
    const auto u = static_cast<PeerId>(rng.below(g.num_nodes()));
    const auto v = static_cast<PeerId>(rng.below(g.num_nodes()));
    if (u == v) continue;
    random_strength += tie.social_strength(u, v);
    ++random_count;
  }
  if (random_count == 0 || random_strength == 0.0) return 0.0;
  random_strength /= static_cast<double>(random_count);
  return linked_strength / random_strength;
}

double link_strength_lift(const overlay::RingSubstrate& ov,
                          const graph::SocialGraph& g, std::uint64_t seed) {
  graph::TieStrengthIndex tie(g);
  return link_strength_lift(ov, tie, seed);
}

}  // namespace sel::core
