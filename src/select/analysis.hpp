// RingSubstrate introspection / analysis utilities for the SELECT overlay.
// Used by the Fig. 8 harness, the overlay_explorer example and the tests to
// quantify what the protocol actually built: friend coverage, identifier
// clusters, and how well ring regions align with social communities.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.hpp"
#include "graph/tie_strength.hpp"
#include "overlay/overlay.hpp"

namespace sel::core {

struct CoverageReport {
  double one_hop_fraction = 0.0;    ///< friends reachable in 1 hop
  double two_hop_fraction = 0.0;    ///< friends reachable in exactly 2 hops
  double beyond_fraction = 0.0;     ///< the rest
  double avg_hops = 0.0;            ///< over delivered lookups
};

/// Routes every (sampled) user->friend pair and buckets by hop count —
/// the paper's "subscribers are 1 or 2 hops away" claim, quantified.
[[nodiscard]] CoverageReport friend_coverage(
    const overlay::RingSubstrate& ov, const graph::SocialGraph& g,
    std::size_t sample_pairs, std::uint64_t seed,
    const overlay::RouteOptions& opts = {});

struct IdCluster {
  double lo = 0.0;       ///< cluster start (inclusive) on the ring
  double hi = 0.0;       ///< cluster end (exclusive, may wrap past 1)
  std::size_t size = 0;  ///< peers inside
};

/// Segments the identifier ring into clusters separated by gaps larger than
/// `gap_threshold`. SELECT's reassignment should produce a handful of dense
/// clusters (social regions) — uniform ids produce ~one giant cluster at
/// small thresholds or n clusters at large ones.
[[nodiscard]] std::vector<IdCluster> id_clusters(const overlay::RingSubstrate& ov,
                                                 double gap_threshold);

/// Fraction of ring-adjacent peer pairs (successor pairs) that are social
/// friends or share at least `min_common` common friends — how "social" the
/// ring order became. On dense graphs use min_common >= 3: a single shared
/// friend is common even between random peers.
[[nodiscard]] double ring_social_coherence(const overlay::RingSubstrate& ov,
                                           graph::TieStrengthIndex& tie,
                                           std::size_t min_common = 3);

/// Convenience overload: builds a throwaway tie-strength index. Prefer the
/// index overload when calling repeatedly (sweeps, per-round sampling) so
/// the common-neighbour merges amortize.
[[nodiscard]] double ring_social_coherence(const overlay::RingSubstrate& ov,
                                           const graph::SocialGraph& g,
                                           std::size_t min_common = 3);

/// Mean social strength (Eq. 2) of established long links vs the mean over
/// uniformly random peer pairs. Much greater than 1 when links are social;
/// note the LSH picker optimizes neighbourhood *coverage*, not strength, so
/// the lift against random *friend* pairs can legitimately be below 1.
[[nodiscard]] double link_strength_lift(const overlay::RingSubstrate& ov,
                                        graph::TieStrengthIndex& tie,
                                        std::uint64_t seed);

/// Convenience overload, as for ring_social_coherence.
[[nodiscard]] double link_strength_lift(const overlay::RingSubstrate& ov,
                                        const graph::SocialGraph& g,
                                        std::uint64_t seed);

}  // namespace sel::core
