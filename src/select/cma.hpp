// Cumulative Moving Average availability tracker (paper Sec. III-F).
//
// Each peer's online behaviour is summarized as the CMA of binary
// availability samples: cma_{n+1} = cma_n + (x_{n+1} - cma_n) / (n + 1).
// A high CMA on an unresponsive peer indicates a transient failure (keep the
// link); a low CMA indicates a mostly-offline user (replace the link).
//
// The same signal drives mailbox replica placement (DESIGN.md §17): the
// weighted-rendezvous scoring below turns a candidate's CMA into a
// deterministic placement rank, so undelivered messages are stored on peers
// with a long-term-availability track record ("Towards Social Profile Based
// Overlays" motivates exactly this use of the CMA).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace sel::core {

/// Weighted rendezvous-hash placement score. `u01` is the candidate's pure
/// rendezvous draw in [0,1) (a hash of (seed, subscriber, candidate));
/// `cma` is its availability average; `bias` controls how strongly
/// availability dominates the hash (0 = pure rendezvous hashing). Uses the
/// classic u^(1/w) weighting, so scores of different candidates stay
/// comparable and the top-k set is stable under candidate-list growth —
/// adding a candidate never reshuffles the relative order of the others.
/// Higher is better.
[[nodiscard]] inline double placement_score(double cma, double u01,
                                            double bias = 2.0) noexcept {
  // Crashed-looking peers (CMA ~ 0) still get a rank — a floor keeps the
  // weight positive so exhausted candidate pools degrade gracefully instead
  // of dividing by zero.
  constexpr double kCmaFloor = 1e-3;
  const double weight = std::pow(std::max(cma, kCmaFloor), bias);
  return std::pow(std::clamp(u01, 1e-12, 1.0), 1.0 / weight);
}

class Cma {
 public:
  /// Records one availability sample (1 = online, 0 = offline).
  void update(bool online) noexcept {
    ++samples_;
    value_ += ((online ? 1.0 : 0.0) - value_) / static_cast<double>(samples_);
  }

  /// Average availability so far; peers with no samples are optimistically
  /// treated as fully available (a freshly met peer was just online).
  [[nodiscard]] double value() const noexcept {
    return samples_ == 0 ? 1.0 : value_;
  }

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  /// This peer's mailbox-placement score for a rendezvous draw (see the
  /// free function above).
  [[nodiscard]] double placement_score(double u01,
                                       double bias = 2.0) const noexcept {
    return core::placement_score(value(), u01, bias);
  }

 private:
  double value_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace sel::core
