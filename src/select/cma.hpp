// Cumulative Moving Average availability tracker (paper Sec. III-F).
//
// Each peer's online behaviour is summarized as the CMA of binary
// availability samples: cma_{n+1} = cma_n + (x_{n+1} - cma_n) / (n + 1).
// A high CMA on an unresponsive peer indicates a transient failure (keep the
// link); a low CMA indicates a mostly-offline user (replace the link).
#pragma once

#include <cstddef>

namespace sel::core {

class Cma {
 public:
  /// Records one availability sample (1 = online, 0 = offline).
  void update(bool online) noexcept {
    ++samples_;
    value_ += ((online ? 1.0 : 0.0) - value_) / static_cast<double>(samples_);
  }

  /// Average availability so far; peers with no samples are optimistically
  /// treated as fully available (a freshly met peer was just online).
  [[nodiscard]] double value() const noexcept {
    return samples_ == 0 ? 1.0 : value_;
  }

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

 private:
  double value_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace sel::core
