// Tunable parameters of the SELECT protocol (paper Sec. III).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sel::core {

struct SelectParams {
  /// Long-range link budget K (outgoing) and incoming-link cap. 0 means
  /// "use log2(N)", the paper's choice after the connection sweep (Sec IV-C).
  std::size_t k_links = 0;

  /// Bits sampled per LSH hash (bit-sampling family).
  std::size_t lsh_bits_per_hash = 12;

  /// Fraction of the way a peer moves toward its evaluatePosition() target
  /// per round. 1.0 reproduces Alg. 2 literally; < 1 damps oscillation
  /// between mutually attracted peers.
  double id_damping = 0.8;

  /// Gossip exchanges (Algs. 3-4) each peer initiates per iteration. The
  /// paper gossips every ~10 seconds; an overlay-construction iteration
  /// spans several gossip periods.
  std::size_t exchanges_per_round = 3;

  /// A round counts as "no movement" for a peer when its id moved less than
  /// this ring distance.
  double convergence_eps = 1e-5;

  /// A peer stops relocating once it is within this ring distance of its
  /// strongest social tie. Without a settle radius the repeated midpoint
  /// moves are a contraction mapping and the whole network collapses onto a
  /// single identifier; with it, communities condense into distinct regions
  /// while the ring stays covered (the Fig. 8 shape).
  double settle_radius = 0.01;

  /// The overlay is converged after this many consecutive quiet rounds
  /// (no link changes, no significant id movement).
  std::size_t stable_rounds = 2;

  /// Hard cap on topology-construction rounds.
  std::size_t max_rounds = 128;

  /// Keep an unresponsive link when the peer's CMA availability is at least
  /// this value (Sec. III-F: likely a transient failure); replace otherwise.
  double cma_keep_threshold = 0.5;

  /// Invitation-based projection (Alg. 1): invited peers are placed in
  /// their inviter's ring gap. Disabled (ablation), every peer gets a
  /// uniform-hash identifier regardless of how it joined.
  bool enable_invite_projection = true;

  /// Disable identifier reassignment (ablation: projection only).
  bool enable_id_reassignment = true;

  /// Use random friend links instead of LSH bucket selection (ablation).
  bool enable_lsh_selection = true;

  /// Disable the CMA-driven recovery (ablation: always replace dead links).
  bool enable_cma_recovery = true;

  /// Kourtellis-style centrality-weighted link selection: candidate scores
  /// in the Alg. 6 picker gain `centrality_weight * degree(candidate)`,
  /// steering long links toward hub peers. 0 (the default) reproduces the
  /// paper's coverage-only picker; > 0 selects the "select_centrality"
  /// variant in the comparison matrix.
  double centrality_weight = 0.0;
};

}  // namespace sel::core
