#include "select/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "check/memory_checks.hpp"
#include "check/overlay_checks.hpp"
#include "check/protocol_checks.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/sampler.hpp"
#include "obs/time.hpp"
#include "obs/trace.hpp"

namespace sel::core {

using overlay::PeerId;

namespace {

/// The paper assigns log2(N) direct connections per peer (Sec. IV-C).
std::size_t default_k(std::size_t n) {
  if (n < 4) return 2;
  return static_cast<std::size_t>(std::log2(static_cast<double>(n)));
}

/// Protocol telemetry (naming: `select.*`). Handles resolve once; increments
/// are relaxed sharded adds, no-ops under SEL_OBS=off.
obs::Counter& gossip_exchanges_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("select.gossip_exchanges");
  return c;
}

obs::Counter& id_reassignments_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("select.id_reassignments");
  return c;
}

obs::Counter& link_establishments_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("select.link_establishments");
  return c;
}

obs::Counter& link_reassignments_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("select.link_reassignments");
  return c;
}

obs::Counter& rounds_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("select.rounds");
  return c;
}

}  // namespace

SelectSystem::SelectSystem(const graph::SocialGraph& g, SelectParams params,
                           std::uint64_t seed, const net::NetworkModel* net)
    : RingOverlay(g, overlay::RouteOptions{}),
      params_(params),
      seed_(seed),
      k_(params.k_links != 0 ? params.k_links : default_k(g.num_nodes())),
      state_(g.num_nodes()),
      cma_(g.num_nodes()),
      tie_index_(g),
      lookahead_(overlay_) {
  // SELECT routes with gossip-maintained L_p snapshots, not live global
  // knowledge, and uses the deeper lookahead its friends' friendship
  // bitmaps afford (Sec. III-E).
  route_options_.lookahead_cache = &lookahead_;
  route_options_.lookahead_depth = 2;
  if (net != nullptr) {
    net_ = net;
  } else {
    owned_net_.emplace(g.num_nodes(), derive_seed(seed, 0x6e6574ULL));
    net_ = &*owned_net_;
  }
  for (PeerId p = 0; p < g.num_nodes(); ++p) {
    auto& st = state_[p];
    const std::size_t deg = g.degree(p);
    st.friends.resize(deg);
    for (std::size_t i = 0; i < deg; ++i) {
      auto& f = st.friends[i];
      f.bitmap = DynamicBitset(deg);
      // A friend trivially "covers" itself: seed each bitmap with the
      // friend's own position so unlearned bitmaps stay distinguishable
      // (otherwise every unknown friend would collide into one LSH bucket
      // and the link budget would collapse to a single link).
      f.bitmap.set(i);
    }
    st.rng = Rng(derive_seed(seed, 0x70656572ULL ^ p));
    if (deg > 0) {
      const std::size_t bits =
          std::min<std::size_t>(params_.lsh_bits_per_hash,
                                std::max<std::size_t>(deg, 1));
      st.index.emplace(deg, k_, bits, derive_seed(seed, 0x6c7368ULL ^ p));
    }
  }
}

std::size_t SelectSystem::friend_index(PeerId p, PeerId friend_peer) const {
  const auto nbrs = graph_->neighbors(p);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), friend_peer);
  SEL_EXPECTS(it != nbrs.end() && *it == friend_peer);
  return static_cast<std::size_t>(it - nbrs.begin());
}

void SelectSystem::join_all() {
  if (schedule_.empty()) {
    schedule_ = sim::growth_schedule(*graph_, sim::GrowthParams{},
                                     derive_seed(seed_, 0x67726f77ULL));
  }
  // Live ring view during the join phase: invited peers take the midpoint
  // of their inviter's clockwise gap (Alg. 1's "minimize distance to the
  // inviter", realized as Chord-style gap splitting). Placing them at a
  // fixed epsilon instead would stack the whole invitation tree onto one
  // point and leave the rest of the ring empty.
  std::map<double, PeerId> ring_map;
  auto place_unique = [&ring_map](net::OverlayId id) {
    double v = id.value();
    while (ring_map.contains(v)) {
      v = net::advance(net::OverlayId(v), 1e-12).value();
    }
    return net::OverlayId(v);
  };
  for (const auto& event : schedule_) {
    net::OverlayId id;
    if (params_.enable_invite_projection &&
        event.inviter != graph::kInvalidNode &&
        overlay_.joined(event.inviter)) {
      const double inviter_id = overlay_.id(event.inviter).value();
      auto next = ring_map.upper_bound(inviter_id);
      if (next == ring_map.end()) next = ring_map.begin();
      const double gap = net::clockwise_distance(
          net::OverlayId(inviter_id), net::OverlayId(next->first));
      const double effective_gap = gap > 0.0 ? gap : 1.0;
      id = place_unique(
          net::advance(net::OverlayId(inviter_id), effective_gap / 2.0));
    } else {
      id = place_unique(
          net::OverlayId::from_hash(derive_seed(seed_, event.user)));
    }
    ring_map.emplace(id.value(), event.user);
    overlay_.join(event.user, id);
    // "SELECT establishes immediately the connections between peers that
    // are socially-connected" (Sec. IV-C discussion of Fig. 5): link to up
    // to K already-joined friends right away.
    std::size_t added = 0;
    for (const graph::NodeId f : graph_->neighbors(event.user)) {
      if (added >= k_) break;
      if (overlay_.joined(f) && try_connect(event.user, f)) ++added;
    }
  }
  overlay_.rebuild_ring();
}

void SelectSystem::build() {
  SEL_TRACE_SCOPE("select.build");
  join_all();
  rounds_run_ = run_to_convergence();
  if (obs::enabled()) {
    // Last-write-wins run descriptors (the final trial of a sweep).
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("select.run.n").set(static_cast<double>(graph_->num_nodes()));
    reg.gauge("select.run.seed").set(static_cast<double>(seed_));
    reg.gauge("select.run.k").set(static_cast<double>(k_));
    reg.gauge("select.run.rounds").set(static_cast<double>(rounds_run_));
  }
}

std::size_t SelectSystem::run_to_convergence() {
  quiet_streak_ = 0;
  std::size_t rounds = 0;
  while (rounds < params_.max_rounds && !converged()) {
    run_round();
    ++rounds;
  }
  return rounds;
}

bool SelectSystem::run_round() {
  SEL_TRACE_SCOPE("select.round");
  const bool obs_on = obs::enabled();
  obs::WallTimePoint t_start{};
  if (obs_on) t_start = obs::wall_now();

  double movement = 0.0;
  std::size_t relocations = 0;
  std::size_t link_changes = 0;
  std::size_t exchanges = 0;

  for (PeerId p = 0; p < graph_->num_nodes(); ++p) {
    if (!overlay_.joined(p) || !overlay_.online(p)) continue;
    auto& st = state_[p];
    const auto nbrs = graph_->neighbors(p);
    if (nbrs.empty()) continue;

    // Active thread (Alg. 3): exchanges with random joined friends.
    for (std::size_t x = 0; x < params_.exchanges_per_round; ++x) {
      PeerId partner = overlay::kInvalidPeer;
      for (int attempts = 0; attempts < 8; ++attempts) {
        const PeerId candidate = nbrs[st.rng.below(nbrs.size())];
        if (overlay_.joined(candidate) && overlay_.online(candidate)) {
          partner = candidate;
          break;
        }
      }
      if (partner != overlay::kInvalidPeer) {
        exchange(p, partner);
        ++exchanges;
      }
    }

    if (params_.enable_id_reassignment) {
      const double step = evaluate_position(p);
      movement += step;
      if (step > 0.0) id_reassignments_counter().add(1);
      if (step > params_.settle_radius / 2.0) ++relocations;
    }
    const std::size_t changed = create_links(p);
    if (changed > 0) lookahead_.refresh(p);
    link_changes += changed;
  }

  obs::WallTimePoint t_compute{};
  if (obs_on) t_compute = obs::wall_now();

  overlay_.rebuild_ring();

  // Post-round structural invariants (Algs. 2, 5-6): the ring itself is
  // validated inside rebuild_ring; full level additionally sweeps routing
  // table symmetry across every peer once per round.
  if (check::enabled(check::Level::kFull)) {
    check::enforce(check::validate_link_symmetry(overlay_));
  }

  if (obs_on) {
    rounds_counter().add(1);
    link_reassignments_counter().add(static_cast<std::int64_t>(link_changes));
    // Round telemetry: the gossip/relink peer loop is the compute phase; the
    // ring rebuild is the delivery/synchronization phase (no barrier — the
    // loop is sequential). One gossip exchange moves two routing tables.
    const std::uint64_t tel_round = telemetry_round_++;
    const auto t_end = obs::wall_now();
    obs::MetricsRegistry::global().add_round(obs::RoundSample{
        "select.round", tel_round, obs::ms_between(t_start, t_compute), 0.0,
        obs::ms_between(t_compute, t_end),
        static_cast<std::uint64_t>(exchanges * 2)});
    // Phase timeline for the Perfetto exporter.
    auto& buf = obs::TraceBuffer::global();
    buf.add({"select.round", "compute", tel_round, obs::wall_us(t_start),
             obs::wall_us(t_compute) - obs::wall_us(t_start)});
    buf.add({"select.round", "deliver", tel_round, obs::wall_us(t_compute),
             obs::wall_us(t_end) - obs::wall_us(t_compute)});
    // Per-round time-series point: counter deltas plus protocol gauges.
    // `id_movement` also drives the rounds-to-stable-ids metric.
    obs::RoundSampler::global().sample(
        "select.round", tel_round,
        {{"id_movement", movement},
         {"relocations", static_cast<double>(relocations)},
         {"link_changes", static_cast<double>(link_changes)},
         {"exchanges", static_cast<double>(exchanges)}});
  }
  // SEL_MEM_BUDGET: one validation per protocol round covers the overlay's
  // link growth (the engine covers the message plane at publish).
  check::check_memory_budget();

  last_movement_ = movement;
  last_link_changes_ = link_changes;
  // Quiet: almost nobody relocated significantly and link churn is below
  // ~1% of peers. Gossip keeps propagating knowledge forever (a hub samples
  // one friend per round), so isolated late relocations and occasional link
  // swaps are steady-state behaviour, not construction.
  const auto joined = std::max<std::size_t>(overlay_.joined_count(), 1);
  const bool quiet =
      relocations <= std::max<std::size_t>(1, joined / 200) &&
      link_changes <= std::max<std::size_t>(2, joined / 100);
  quiet_streak_ = quiet ? quiet_streak_ + 1 : 0;
  return quiet;
}

void SelectSystem::exchange(PeerId p, PeerId u) {
  gossip_exchanges_counter().add(1);
  // Both sides learn the mutual-friend count (Alg. 4 line 3) and each
  // other's routing table (friendship bitmaps, Alg. 4 lines 5-8). The count
  // is symmetric and friend pairs repeat across rounds, so it comes from
  // the tie-strength cache rather than a fresh adjacency merge.
  const auto common =
      static_cast<double>(tie_index_.common_neighbors(p, u));
  auto& fp = state_[p].friends[friend_index(p, u)];
  fp.strength = graph_->degree(p) == 0
                    ? 0.0
                    : common / static_cast<double>(graph_->degree(p));
  auto& fu = state_[u].friends[friend_index(u, p)];
  fu.strength = graph_->degree(u) == 0
                    ? 0.0
                    : common / static_cast<double>(graph_->degree(u));
  refresh_bitmap(p, u);
  refresh_bitmap(u, p);
  // Alg. 4 lines 5-8: the exchanged routing tables also refresh what each
  // side knows about the overlay connections of *mutual* friends (u is
  // socially connected to them and relays their link state).
  const auto np = graph_->neighbors(p);
  const auto nu2 = graph_->neighbors(u);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < np.size() && j < nu2.size()) {
    if (np[i] < nu2[j]) {
      ++i;
    } else if (np[i] > nu2[j]) {
      ++j;
    } else {
      const PeerId w = np[i];
      if (overlay_.joined(w)) {
        refresh_bitmap(p, w);
        refresh_bitmap(u, w);
        lookahead_.refresh(w);
      }
      ++i;
      ++j;
    }
  }
  // The exchanged routing tables refresh the lookahead snapshots L_p too.
  lookahead_.refresh(p);
  lookahead_.refresh(u);
}

void SelectSystem::refresh_bitmap(PeerId p, PeerId u) {
  const std::size_t u_idx = friend_index(p, u);
  auto& info = state_[p].friends[u_idx];
  info.bitmap.clear_all();
  info.bitmap.set(u_idx);  // self-coverage (see constructor comment)
  const auto nbrs = graph_->neighbors(p);
  // bitmap(u, v) = 1 iff (u, v) ∈ R_u, for v ∈ C_p (paper Sec. III-D).
  auto mark = [&](PeerId v) {
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    if (it != nbrs.end() && *it == v) {
      info.bitmap.set(static_cast<std::size_t>(it - nbrs.begin()));
    }
  };
  for (const PeerId v : overlay_.out_links(u)) mark(v);
  for (const PeerId v : overlay_.in_links(u)) mark(v);
  info.bitmap_known = true;
}

double SelectSystem::evaluate_position(PeerId p) {
  const auto& st = state_[p];
  const auto nbrs = graph_->neighbors(p);
  // Top-2 known strengths (Alg. 2 lines 2-3); ties by peer id for
  // determinism.
  std::size_t best = static_cast<std::size_t>(-1);
  std::size_t second = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < st.friends.size(); ++i) {
    if (st.friends[i].strength < 0.0) continue;
    if (!overlay_.joined(nbrs[i])) continue;
    if (best == static_cast<std::size_t>(-1) ||
        st.friends[i].strength > st.friends[best].strength) {
      second = best;
      best = i;
    } else if (second == static_cast<std::size_t>(-1) ||
               st.friends[i].strength > st.friends[second].strength) {
      second = i;
    }
  }
  if (best == static_cast<std::size_t>(-1)) return 0.0;

  // Settled: already adjacent to the strongest tie. Stopping here keeps
  // communities as distinct clumps instead of letting repeated averaging
  // collapse every peer onto one point.
  if (net::ring_distance(overlay_.id(p), overlay_.id(nbrs[best])) <
      params_.settle_radius) {
    return 0.0;
  }

  net::OverlayId target;
  if (second != static_cast<std::size_t>(-1)) {
    // Alg. 2 line 4: centroid of the two strongest ties' positions.
    target = net::ring_midpoint(overlay_.id(nbrs[best]),
                                overlay_.id(nbrs[second]));
  } else {
    // Only one tie known yet: drift halfway toward it.
    target = net::ring_midpoint(overlay_.id(p), overlay_.id(nbrs[best]));
  }

  const net::OverlayId cur = overlay_.id(p);
  // Signed shortest-arc displacement toward the target, damped.
  const double cw = net::clockwise_distance(cur, target);
  const double delta = cw <= 0.5 ? cw : cw - 1.0;
  const double step = delta * params_.id_damping;
  const net::OverlayId next = net::advance(cur, step);
  if (check::enabled(check::Level::kFull)) {
    // Alg. 2 geometry: the damped move heads toward the centroid of the two
    // strongest ties and never overshoots.
    check::enforce(
        check::validate_id_step(cur, target, next, params_.id_damping));
  }
  overlay_.set_id(p, next);
  return std::fabs(step);
}

double SelectSystem::picker_score(const lsh::LshIndex::Entry& e) const {
  // Alg. 6 base score: social coverage (bitmap popcount). The Kourtellis
  // variant additionally weights candidates by degree centrality, steering
  // long links toward hub peers that shortcut many dissemination paths.
  double s = static_cast<double>(e.bitmap.count());
  if (params_.centrality_weight > 0.0) {
    s += params_.centrality_weight * static_cast<double>(graph_->degree(e.peer));
  }
  return s;
}

PeerId SelectSystem::pick_from_bucket(
    const std::vector<lsh::LshIndex::Entry>& bucket) const {
  SEL_EXPECTS(!bucket.empty());
  return rank_bucket(bucket).front();
}

bool SelectSystem::try_connect(PeerId p, PeerId u) {
  if (p == u || overlay_.linked(p, u)) return false;
  if (!overlay_.joined(p) || !overlay_.joined(u)) return false;
  if (overlay_.in_degree(u) >= k_) {
    // K incoming links reached: admit only with better bandwidth than the
    // weakest current in-link, which gets evicted (Sec. III-D).
    PeerId weakest = overlay::kInvalidPeer;
    double weakest_bw = std::numeric_limits<double>::infinity();
    for (const PeerId w : overlay_.in_links(u)) {
      const double bw = net_->uplink_bps(w);
      if (bw < weakest_bw) {
        weakest_bw = bw;
        weakest = w;
      }
    }
    if (net_->uplink_bps(p) <= weakest_bw) return false;
    overlay_.remove_long_link(weakest, u);
  }
  const bool linked = overlay_.add_long_link(p, u);
  if (linked) link_establishments_counter().add(1);
  return linked;
}

std::size_t SelectSystem::create_links(PeerId p) {
  auto& st = state_[p];
  if (!st.index.has_value()) return 0;
  const auto nbrs = graph_->neighbors(p);
  std::size_t changes = 0;

  if (!params_.enable_lsh_selection) {
    // Ablation: link to K random joined friends instead of LSH buckets.
    std::size_t have = overlay_.out_degree(p);
    for (int attempts = 0; attempts < 32 && have < k_; ++attempts) {
      const PeerId f = nbrs[st.rng.below(nbrs.size())];
      if (overlay_.joined(f) && try_connect(p, f)) {
        ++have;
        ++changes;
      }
    }
    return changes;
  }

  // Alg. 5 lines 2-4: index the neighbourhood bitmaps into |H| = K buckets.
  st.index->clear();
  for (std::size_t i = 0; i < st.friends.size(); ++i) {
    const PeerId f = nbrs[i];
    if (!overlay_.joined(f)) continue;
    st.index->insert(f, st.friends[i].bitmap);
  }

  // Alg. 5 lines 5-18: the primary pick is one peer per non-empty bucket
  // (similar-connectivity friends are redundant; one covers the zone).
  // Because the peer maintains K long-range links (Sec. III-D), remaining
  // budget is topped up with the runner-ups of each bucket, round-robin, in
  // picker order — so the desired set is deterministic given the index.
  std::vector<std::vector<PeerId>> ranked;  // per bucket, picker order
  for (std::size_t h = 0; h < st.index->num_buckets(); ++h) {
    const auto& bucket = st.index->bucket(h);
    if (bucket.empty()) continue;
    ranked.push_back(rank_bucket(bucket));
  }
  const std::vector<PeerId> outs_snapshot(overlay_.out_links(p).begin(),
                                          overlay_.out_links(p).end());
  auto is_linked_out = [&outs_snapshot](PeerId q) {
    return std::find(outs_snapshot.begin(), outs_snapshot.end(), q) !=
           outs_snapshot.end();
  };
  // Sticky primaries: a bucket whose zone is already covered by one of our
  // existing links keeps that link as its representative; only uncovered
  // buckets take their picker-ranked best. Re-picking every bucket every
  // round would thrash — friendship bitmaps keep evolving on high-degree
  // neighbourhoods, so bucket contents never freeze.
  for (auto& bucket : ranked) {
    const auto linked_it =
        std::find_if(bucket.begin(), bucket.end(), is_linked_out);
    if (linked_it != bucket.end() && linked_it != bucket.begin()) {
      std::iter_swap(bucket.begin(), linked_it);
    }
  }
  std::vector<PeerId> priority;
  priority.reserve(st.friends.size());
  std::size_t primaries = 0;
  for (std::size_t depth = 0;; ++depth) {
    bool any = false;
    for (const auto& bucket : ranked) {
      if (depth < bucket.size()) {
        any = true;
        priority.push_back(bucket[depth]);
        if (depth == 0) ++primaries;
      }
    }
    if (!any) break;
  }

  // The Alg. 5 invariant: the primary pick of every non-empty bucket is
  // linked (one representative per connectivity zone). Remaining budget is
  // filled with runner-ups, *with hysteresis*: existing links are kept in
  // preference to equal-tier newcomers. Without hysteresis the system
  // thrashes forever — link changes alter the friendship bitmaps other
  // peers gossip about, which re-ranks their buckets and changes their
  // links in turn. Links outside the final set are dropped (Alg. 5 lines
  // 12-16, generalized to budget enforcement).
  const std::vector<PeerId> outs(overlay_.out_links(p).begin(),
                                 overlay_.out_links(p).end());
  std::vector<PeerId> final_set;
  final_set.reserve(k_);
  auto in_final = [&final_set](PeerId q) {
    return std::find(final_set.begin(), final_set.end(), q) !=
           final_set.end();
  };
  // 1. Primaries (first `primaries` entries of the priority list).
  for (std::size_t i = 0; i < primaries && final_set.size() < k_; ++i) {
    const PeerId cand = priority[i];
    if (in_final(cand)) continue;
    const bool existing =
        std::find(outs.begin(), outs.end(), cand) != outs.end();
    if (existing) {
      final_set.push_back(cand);
    } else if (try_connect(p, cand)) {
      final_set.push_back(cand);
      ++changes;
    }
  }
  // 2. Hysteresis: keep existing links that are still candidates, best
  //    first.
  for (const PeerId cand : priority) {
    if (final_set.size() >= k_) break;
    if (in_final(cand)) continue;
    if (std::find(outs.begin(), outs.end(), cand) != outs.end()) {
      final_set.push_back(cand);
    }
  }
  // 3. Top up the remaining budget greedily by *marginal coverage*: pick
  //    the unlinked friend whose bitmap covers the most friends not yet
  //    reachable through the current link set ("establish connections with
  //    the maximum number of the social neighbourhood", Sec. III-A). This
  //    is what makes high-degree neighbourhoods reachable in 2 hops with
  //    only K links.
  if (final_set.size() < k_) {
    DynamicBitset covered(st.friends.size());
    auto mark_covered = [&](PeerId q) {
      const auto nbrs2 = graph_->neighbors(p);
      const auto it = std::lower_bound(nbrs2.begin(), nbrs2.end(), q);
      if (it != nbrs2.end() && *it == q) {
        const auto idx = static_cast<std::size_t>(it - nbrs2.begin());
        covered |= st.friends[idx].bitmap;
        covered.set(idx);
      }
    };
    for (const PeerId q : final_set) mark_covered(q);
    std::vector<PeerId> excluded;  // rejected by their incoming cap
    auto skip = [&excluded](PeerId q) {
      return std::find(excluded.begin(), excluded.end(), q) !=
             excluded.end();
    };
    while (final_set.size() < k_) {
      PeerId best_cand = overlay::kInvalidPeer;
      std::size_t best_gain = 0;
      for (const PeerId cand : priority) {
        if (in_final(cand) || skip(cand)) continue;
        const std::size_t idx = friend_index(p, cand);
        // |bitmap \ covered| = |bitmap| - |bitmap ∩ covered|.
        const auto& bm = st.friends[idx].bitmap;
        const std::size_t gain = bm.count() -
                                 bm.intersection_count(covered) +
                                 (covered.test(idx) ? 0 : 1);
        if (gain > best_gain) {
          best_gain = gain;
          best_cand = cand;
        }
      }
      if (best_cand == overlay::kInvalidPeer) break;
      if (try_connect(p, best_cand)) {
        final_set.push_back(best_cand);
        mark_covered(best_cand);
        ++changes;
      } else {
        excluded.push_back(best_cand);
      }
    }
  }
  for (const PeerId v : outs) {
    if (!in_final(v)) {
      if (overlay_.remove_long_link(p, v)) ++changes;
    }
  }
  if (check::enabled()) {
    // Alg. 5 bucket bound |H| = K is O(1); the full index walk and the
    // link-budget check run only at full level.
    check::enforce(check::validate_lsh_bucket_bound(*st.index, k_));
    if (check::enabled(check::Level::kFull)) {
      check::enforce(check::validate_lsh_index(*st.index, k_));
      check::enforce(check::validate_link_budget(overlay_, p, k_));
    }
  }
  return changes;
}

std::vector<PeerId> SelectSystem::rank_bucket(
    const std::vector<lsh::LshIndex::Entry>& bucket) const {
  // Alg. 6 ordering: social coverage (bitmap popcount) descending, peer id
  // as deterministic tiebreak; the bandwidth rule swaps the top two when
  // the runner-up has a strictly faster uplink.
  std::vector<PeerId> order;
  order.reserve(bucket.size());
  std::vector<const lsh::LshIndex::Entry*> sorted;
  sorted.reserve(bucket.size());
  for (const auto& e : bucket) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [this](const auto* a, const auto* b) {
              const double ca = picker_score(*a);
              const double cb = picker_score(*b);
              if (ca != cb) return ca > cb;
              return a->peer < b->peer;
            });
  if (sorted.size() > 1 &&
      net_->uplink_bps(sorted[0]->peer) < net_->uplink_bps(sorted[1]->peer)) {
    std::swap(sorted[0], sorted[1]);
  }
  for (const auto* e : sorted) order.push_back(e->peer);
  return order;
}

void SelectSystem::set_peer_online(PeerId p, bool online) {
  overlay_.set_online(p, online);
}

void SelectSystem::maintenance_round() {
  SEL_TRACE_SCOPE("select.maintenance");
  const std::size_t n = graph_->num_nodes();
  // Peers poll their routing-table friends for their state (Sec. III-F);
  // in the simulation every peer's availability gets one CMA sample per
  // maintenance round.
  for (PeerId p = 0; p < n; ++p) {
    if (!overlay_.joined(p)) continue;
    cma_[p].update(overlay_.online(p));
  }

  for (PeerId p = 0; p < n; ++p) {
    if (!overlay_.joined(p) || !overlay_.online(p)) continue;
    auto& st = state_[p];
    // Copy: replacements mutate the link set.
    const std::vector<PeerId> outs(overlay_.out_links(p).begin(),
                                   overlay_.out_links(p).end());
    for (const PeerId u : outs) {
      if (overlay_.online(u)) continue;
      if (params_.enable_cma_recovery &&
          cma_[u].value() >= params_.cma_keep_threshold) {
        // Good long-term behaviour: transient failure, keep the link and
        // avoid a chain of reassignments (Sec. III-F).
        continue;
      }
      // The peer is chronically offline: drop the dead link, then try to
      // fill the slot with a same-bucket peer from the LSH index.
      overlay_.remove_long_link(p, u);
      link_reassignments_counter().add(1);
      if (!st.index.has_value()) continue;
      PeerId replacement = overlay::kInvalidPeer;
      for (const PeerId cand : st.index->same_bucket_peers(u)) {
        if (overlay_.online(cand) && !overlay_.linked(p, cand)) {
          replacement = cand;
          break;
        }
      }
      if (replacement == overlay::kInvalidPeer) {
        // Bucket exhausted: any online, unlinked friend keeps delivery
        // alive.
        for (const PeerId cand : graph_->neighbors(p)) {
          if (overlay_.joined(cand) && overlay_.online(cand) &&
              !overlay_.linked(p, cand)) {
            replacement = cand;
            break;
          }
        }
      }
      if (replacement != overlay::kInvalidPeer) {
        try_connect(p, replacement);
      }
      lookahead_.refresh(p);
    }
  }
  // Ring repair: short-range links skip offline peers.
  overlay_.rebuild_ring(/*online_only=*/true);
  if (obs::enabled()) {
    // Maintenance points carry only counter deltas (link repairs, CMA
    // recoveries) — no movement gauge, so they never touch stability
    // tracking in the sampler.
    obs::RoundSampler::global().sample("select.maintenance",
                                       maintenance_rounds_++);
  }
}

double SelectSystem::known_strength(PeerId p, PeerId friend_peer) const {
  return state_[p].friends[friend_index(p, friend_peer)].strength;
}

}  // namespace sel::core
