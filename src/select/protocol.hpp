// The SELECT system (paper Sec. III).
//
// Pipeline:
//   1. Projection (Alg. 1): peers join per the growth schedule; invited
//      peers are placed next to their inviter in the ID space, independent
//      subscribers get a uniform hash id.
//   2. Gossip peer sampling (Algs. 3-4): every round each peer exchanges
//      its friend set and routing table with one random social friend,
//      learning social strengths and friendship bitmaps incrementally.
//   3. Identifier reassignment (Alg. 2): move to the ring midpoint of the
//      two strongest known ties (damped).
//   4. Link reassignment (Algs. 5-6): index friendship bitmaps into K LSH
//      buckets, keep one long link per bucket, picked for social coverage
//      and bandwidth; incoming links are capped at K with bandwidth-based
//      admission.
//   5. Recovery (Sec. III-F): CMA availability decides whether a dead link
//      is kept (transient) or replaced with a same-LSH-bucket peer.
//
// The pub/sub layer (Sec. III-E) lives in overlay::PubSubSystem, which
// composes over this overlay: direct links and lookahead deliver to friends
// in 1-2 hops, greedy ring routing covers the rest, and the
// subscriber_first_tree capability selects SELECT's dissemination style.
#pragma once

#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "common/rng.hpp"
#include "graph/tie_strength.hpp"
#include "lsh/lsh.hpp"
#include "net/network_model.hpp"
#include "overlay/lookahead.hpp"
#include "overlay/routing.hpp"
#include "select/cma.hpp"
#include "select/params.hpp"
#include "sim/growth.hpp"

namespace sel::core {

class SelectSystem final : public overlay::RingOverlay {
 public:
  /// `net` provides per-peer bandwidth (picker, Alg. 6); when null an
  /// internal model seeded from `seed` is created.
  SelectSystem(const graph::SocialGraph& g, SelectParams params,
               std::uint64_t seed, const net::NetworkModel* net = nullptr);

  [[nodiscard]] std::string_view name() const override {
    // The Kourtellis centrality-weighted variant is a distinct system in
    // the comparison matrix.
    return params_.centrality_weight > 0.0 ? "select_centrality" : "select";
  }

  [[nodiscard]] overlay::Capabilities capabilities() const override {
    overlay::Capabilities c = RingOverlay::capabilities();
    c.iterative_build = true;
    c.churn_maintenance = true;
    c.subscriber_first_tree = true;  // Sec. III-E dissemination
    return c;
  }

  /// Joins every user per the growth model, then runs topology rounds to
  /// convergence.
  void build() override;

  /// Join phase only (projection + initial friend links), no gossip rounds.
  /// Exposed for the convergence harness and tests.
  void join_all();

  /// One gossip round over all joined peers; returns true when the round
  /// was quiet (counts toward convergence).
  bool run_round();

  /// Rounds run by the last build()/run-to-convergence sequence.
  [[nodiscard]] std::size_t build_iterations() const override {
    return rounds_run_;
  }

  /// Runs rounds until converged or params.max_rounds; returns rounds run.
  std::size_t run_to_convergence();

  [[nodiscard]] bool converged() const noexcept {
    return quiet_streak_ >= params_.stable_rounds;
  }

  // -- churn ------------------------------------------------------------------
  void set_peer_online(overlay::PeerId p, bool online) override;

  /// Recovery round (Sec. III-F): samples availability into each CMA,
  /// repairs the ring, and replaces links to low-CMA offline peers with
  /// same-bucket alternatives.
  void maintenance_round() override;

  /// Direct availability evidence from the message plane: an acked transfer
  /// counts as an online sample for the receiving peer, a timed-out one as
  /// an offline sample — the same CMA that maintenance_round() feeds by
  /// polling (Sec. III-F). Wire this to
  /// NotificationEngine::set_availability_observer.
  void observe_availability(overlay::PeerId p, bool responsive) {
    cma_[p].update(responsive);
  }

  // -- introspection ------------------------------------------------------------
  [[nodiscard]] const SelectParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] double cma_of(overlay::PeerId p) const {
    return cma_[p].value();
  }
  /// Social strength of `friend_peer` as known to p via gossip so far
  /// (-1 when not yet learned).
  [[nodiscard]] double known_strength(overlay::PeerId p,
                                      overlay::PeerId friend_peer) const;
  /// Identifier movement (sum of ring distances) during the last round.
  [[nodiscard]] double last_round_movement() const noexcept {
    return last_movement_;
  }
  [[nodiscard]] std::size_t last_round_link_changes() const noexcept {
    return last_link_changes_;
  }
  /// The gossip-maintained L_p snapshots used for lookahead routing.
  [[nodiscard]] const overlay::LookaheadCache& lookahead() const noexcept {
    return lookahead_;
  }
  /// Hit/miss/merge accounting of the tie-strength cache the gossip loop
  /// queries through (Alg. 4 line 3). Warm-cache merge reduction is an
  /// acceptance metric — see graph_tie_strength_test.
  [[nodiscard]] const graph::TieStrengthIndex::Stats& tie_stats()
      const noexcept {
    return tie_index_.stats();
  }

 private:
  struct FriendInfo {
    double strength = -1.0;      ///< known via gossip; -1 = unknown
    DynamicBitset bitmap;        ///< R_friend ∩ C_p over C_p's index space
    bool bitmap_known = false;
  };

  struct PeerState {
    std::vector<FriendInfo> friends;           ///< aligned with g.neighbors(p)
    std::optional<lsh::LshIndex> index;        ///< persistent K-bucket index
    Rng rng;
  };

  /// Position of `friend_peer` in p's sorted neighbour list.
  [[nodiscard]] std::size_t friend_index(overlay::PeerId p,
                                         overlay::PeerId friend_peer) const;

  /// Gossip exchange between p and its friend u (Algs. 3-4): both sides
  /// learn strength + bitmap of the other.
  void exchange(overlay::PeerId p, overlay::PeerId u);

  /// Alg. 2 (damped): returns the ring distance moved.
  double evaluate_position(overlay::PeerId p);

  /// Algs. 5-6: rebuilds p's LSH index and reassigns long links. Returns
  /// the number of link changes made.
  std::size_t create_links(overlay::PeerId p);

  /// Alg. 6 candidate score: social coverage, plus degree-centrality bias
  /// when params.centrality_weight > 0 (Kourtellis variant).
  [[nodiscard]] double picker_score(const lsh::LshIndex::Entry& e) const;

  /// Alg. 6 picker over bucket candidates (already filtered to usable).
  [[nodiscard]] overlay::PeerId pick_from_bucket(
      const std::vector<lsh::LshIndex::Entry>& bucket) const;

  /// Full picker ordering of a bucket (best first, Alg. 6 semantics).
  [[nodiscard]] std::vector<overlay::PeerId> rank_bucket(
      const std::vector<lsh::LshIndex::Entry>& bucket) const;

  /// Connects p -> u honoring u's K incoming cap with bandwidth admission.
  /// Returns true when the link was established.
  bool try_connect(overlay::PeerId p, overlay::PeerId u);

  /// Refreshes p's stored bitmap for friend u from u's current links.
  void refresh_bitmap(overlay::PeerId p, overlay::PeerId u);

  SelectParams params_;
  std::uint64_t seed_;
  std::size_t k_ = 0;
  std::optional<net::NetworkModel> owned_net_;
  const net::NetworkModel* net_ = nullptr;

  std::vector<PeerState> state_;
  std::vector<Cma> cma_;
  /// Memoized |N(u) ∩ N(v)| for friend pairs; the graph is immutable so
  /// cached counts never go stale. mutable-free: exchange() is non-const.
  graph::TieStrengthIndex tie_index_;
  overlay::LookaheadCache lookahead_;
  std::vector<sim::JoinEvent> schedule_;

  std::size_t rounds_run_ = 0;
  std::size_t quiet_streak_ = 0;
  /// Monotonic gossip-round index for obs round telemetry (never resets, so
  /// repeated run_to_convergence() calls stay distinguishable).
  std::size_t telemetry_round_ = 0;
  /// Same, for maintenance rounds (their time-series label is separate).
  std::size_t maintenance_rounds_ = 0;
  double last_movement_ = 0.0;
  std::size_t last_link_changes_ = 0;
};

}  // namespace sel::core
