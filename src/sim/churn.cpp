#include "sim/churn.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sel::sim {

RoundChurn::RoundChurn(std::size_t num_peers, Params params,
                       std::uint64_t seed)
    : num_peers_(num_peers), params_(params), rng_(seed) {
  SEL_EXPECTS(params.max_fraction >= 0.0 && params.max_fraction <= 1.0);
}

std::vector<std::uint32_t> RoundChurn::draw_offline_set() {
  const auto cap = static_cast<std::size_t>(
      params_.max_fraction * static_cast<double>(num_peers_));
  // Clamp the lognormal draw in double space BEFORE rounding: with a large
  // mu/sigma the draw can exceed LLONG_MAX (even be +inf), where llround is
  // undefined behaviour. Anything at or above the cap is the cap.
  const double draw = rng_.lognormal(params_.mu, params_.sigma);
  std::size_t count =
      draw >= static_cast<double>(cap)
          ? cap
          : static_cast<std::size_t>(std::llround(draw));
  count = std::min(count, cap);
  // Floyd's algorithm would also work; with count << n, rejection is fine.
  std::vector<std::uint32_t> offline;
  offline.reserve(count);
  std::vector<bool> taken(num_peers_, false);
  while (offline.size() < count) {
    const auto p = static_cast<std::uint32_t>(rng_.below(num_peers_));
    if (!taken[p]) {
      taken[p] = true;
      offline.push_back(p);
    }
  }
  std::sort(offline.begin(), offline.end());
  return offline;
}

SessionChurn::SessionChurn(std::size_t num_peers, Params params,
                           std::uint64_t seed)
    : num_peers_(num_peers),
      params_(params),
      rng_(seed),
      session_mu_(std::log(params.session_median_s)),
      offline_mu_(std::log(params.offline_median_s)),
      online_(num_peers, true),
      next_toggle_(num_peers, 0.0),
      online_count_(num_peers) {
  SEL_EXPECTS(params.session_median_s > 0.0);
  SEL_EXPECTS(params.offline_median_s > 0.0);
  // Start everyone online with a staggered first departure so the process
  // doesn't thunder-herd at t=0.
  for (std::size_t p = 0; p < num_peers_; ++p) {
    next_toggle_[p] = rng_.uniform() * draw_session();
  }
}

void SessionChurn::advance_to(double t_s) {
  SEL_EXPECTS(t_s >= now_);
  last_departures_.clear();
  last_arrivals_.clear();
  const auto floor_count = static_cast<std::size_t>(
      std::ceil(params_.min_online_fraction * static_cast<double>(num_peers_)));
  for (std::size_t p = 0; p < num_peers_; ++p) {
    while (next_toggle_[p] <= t_s) {
      if (online_[p]) {
        if (online_count_ <= floor_count) {
          // Availability floor: postpone this departure by one session.
          next_toggle_[p] += draw_session();
          continue;
        }
        online_[p] = false;
        --online_count_;
        last_departures_.push_back(static_cast<std::uint32_t>(p));
        next_toggle_[p] += draw_offline();
      } else {
        online_[p] = true;
        ++online_count_;
        last_arrivals_.push_back(static_cast<std::uint32_t>(p));
        next_toggle_[p] += draw_session();
      }
    }
  }
  now_ = t_s;
}

}  // namespace sel::sim
