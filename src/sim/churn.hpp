// Churn models after Berta et al. [20] (paper Sec. IV).
//
// Two variants are used in the evaluation:
//
//  * RoundChurn — "at each iteration step, we select a number of peers based
//    on a log-normal distribution to be excluded from the overlay network.
//    When the iteration step is completed, the removed peers are recovered."
//    Used while measuring overlay construction under churn.
//
//  * SessionChurn — a continuous-time on/off process with log-normal session
//    (online) and absence (offline) durations, used for the ten-hour Fig. 6
//    availability experiment. The paper bounds total unavailability: "the
//    total number of peers that are available cannot be less than half of
//    the overall social network" — enforced here by refusing departures that
//    would cross the floor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sel::sim {

/// Per-iteration churn: a lognormal number of peers goes offline for exactly
/// one iteration.
class RoundChurn {
 public:
  struct Params {
    double mu = 2.0;     ///< lognormal mu of the per-round departure count
    double sigma = 1.0;  ///< lognormal sigma
    double max_fraction = 0.5;  ///< never take more than this share offline
  };

  RoundChurn(std::size_t num_peers, Params params, std::uint64_t seed);

  /// Draws the set of peers that are offline for this round.
  [[nodiscard]] std::vector<std::uint32_t> draw_offline_set();

  [[nodiscard]] std::size_t num_peers() const noexcept { return num_peers_; }

 private:
  std::size_t num_peers_;
  Params params_;
  Rng rng_;
};

/// Continuous on/off churn with lognormal session and offline durations.
class SessionChurn {
 public:
  struct Params {
    double session_median_s = 1200.0;  ///< median online session (20 min)
    double session_sigma = 1.0;
    double offline_median_s = 600.0;   ///< median offline gap (10 min)
    double offline_sigma = 1.0;
    double min_online_fraction = 0.5;  ///< availability floor (paper Sec. IV)
  };

  SessionChurn(std::size_t num_peers, Params params, std::uint64_t seed);

  /// Advances the process to absolute time `t_s` (seconds, monotone calls).
  void advance_to(double t_s);

  [[nodiscard]] bool online(std::size_t peer) const {
    return online_[peer];
  }
  [[nodiscard]] std::size_t online_count() const noexcept {
    return online_count_;
  }
  [[nodiscard]] double online_fraction() const noexcept {
    return num_peers_ == 0
               ? 1.0
               : static_cast<double>(online_count_) /
                     static_cast<double>(num_peers_);
  }
  [[nodiscard]] std::size_t num_peers() const noexcept { return num_peers_; }

  /// Peers that changed state during the last advance_to() call.
  [[nodiscard]] const std::vector<std::uint32_t>& last_departures() const {
    return last_departures_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& last_arrivals() const {
    return last_arrivals_;
  }

 private:
  /// Floor on drawn durations. A lognormal with extreme mu/sigma underflows
  /// to 0.0, which would pin next_toggle_ in place and spin advance_to()
  /// forever. Sub-second sessions are below the model's resolution anyway.
  static constexpr double kMinDurationS = 1.0;

  [[nodiscard]] double draw_session() {
    const double d = rng_.lognormal(session_mu_, params_.session_sigma);
    return d < kMinDurationS ? kMinDurationS : d;
  }
  [[nodiscard]] double draw_offline() {
    const double d = rng_.lognormal(offline_mu_, params_.offline_sigma);
    return d < kMinDurationS ? kMinDurationS : d;
  }

  std::size_t num_peers_;
  Params params_;
  Rng rng_;
  double session_mu_;
  double offline_mu_;
  double now_ = 0.0;
  std::vector<bool> online_;
  std::vector<double> next_toggle_;  ///< absolute time of next state change
  std::size_t online_count_ = 0;
  std::vector<std::uint32_t> last_departures_;
  std::vector<std::uint32_t> last_arrivals_;
};

}  // namespace sel::sim
