// Discrete-event scheduler. The round-based superstep engine drives
// topology construction (matching the paper's vertex-centric simulation);
// the *message plane* — transfers with real durations, overlapping
// disseminations — needs event-driven time. Events at equal times fire in
// scheduling order (a monotone sequence number breaks ties), so runs are
// deterministic. A non-zero tie seed replaces the FIFO tie-break with a
// seeded permutation of equal-time events — a determinism-stress mode the
// runtime layer uses to prove protocol results do not depend on accidental
// scheduling order.
//
// schedule() returns a Handle; cancel(handle) removes a pending event
// without firing it (timers whose ack arrived early, retries made moot by a
// failover). Cancellation is lazy: the entry stays in the heap until it
// would surface, but the queue maintains the invariant that the *front* of
// the heap is never a cancelled entry, so next_time()/run_next() never see
// one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace sel::sim {

class EventQueue {
 public:
  using Callback = std::function<void(double now_s)>;

  /// Opaque reference to a scheduled event, for cancel(). Default
  /// constructed handles are invalid (cancel() returns false).
  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] bool valid() const noexcept { return id_ != 0; }

   private:
    friend class EventQueue;
    explicit Handle(std::uint64_t id) noexcept : id_(id) {}
    std::uint64_t id_ = 0;  ///< seq + 1, so 0 stays the invalid sentinel
  };

  /// `tie_seed` 0 (default) breaks equal-time ties in schedule order (FIFO);
  /// non-zero seeds permute equal-time firing deterministically.
  explicit EventQueue(std::uint64_t tie_seed = 0) noexcept
      : tie_seed_(tie_seed) {}

  /// Schedules `cb` at absolute time `time_s` (must not be in the past).
  Handle schedule(double time_s, Callback cb) {
    SEL_EXPECTS(time_s >= now_);
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{time_s, tie_for(seq), seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    pending_.insert(seq);
    return Handle(seq + 1);
  }

  /// Schedules `cb` at now + delay.
  Handle schedule_in(double delay_s, Callback cb) {
    SEL_EXPECTS(delay_s >= 0.0);
    return schedule(now_ + delay_s, std::move(cb));
  }

  /// Removes a pending event without firing it. Returns false when the
  /// handle is invalid, already fired, or already cancelled.
  bool cancel(Handle h) {
    if (!h.valid() || pending_.erase(h.id_ - 1) == 0) return false;
    cancelled_.insert(h.id_ - 1);
    prune_cancelled_front();
    return true;
  }

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  /// Live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Time of the next pending event; infinity when empty.
  [[nodiscard]] double next_time() const {
    // The front is never cancelled (prune_cancelled_front invariant).
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.front().time;
  }

  /// Fires the earliest event. Returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    // pop_heap rotates the earliest entry to the back, where it is mutable
    // and can be moved out before invoking (the callback may schedule
    // more). An earlier version const_cast-moved out of
    // priority_queue::top(), which mutates the const heap top in place —
    // UB-adjacent and flagged by clang-tidy/UBSan builds.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(entry.seq);
    now_ = entry.time;
    entry.callback(now_);
    // The callback may have cancelled what is now the front, or the pop may
    // have surfaced an entry cancelled earlier.
    prune_cancelled_front();
    return true;
  }

  /// Fires every event with time <= t_s, then advances the clock to t_s.
  /// Returns the number of events fired.
  std::size_t run_until(double t_s) {
    SEL_EXPECTS(t_s >= now_);
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.front().time <= t_s) {
      run_next();
      ++fired;
    }
    now_ = t_s;
    return fired;
  }

  /// Drains the queue (bounded by max_events as a runaway backstop).
  /// Returns the number of events fired.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t fired = 0;
    while (fired < max_events && run_next()) ++fired;
    return fired;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t tie;  ///< equal-time ordering key (== seq when unseeded)
    std::uint64_t seq;
    Callback callback;
  };

  /// Max-heap comparator that puts the earliest (time, tie, seq) at the
  /// front. seq is the final disambiguator so seeded tie keys that collide
  /// still order deterministically.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t tie_for(std::uint64_t seq) const noexcept {
    return tie_seed_ == 0 ? seq : splitmix64(seq ^ tie_seed_);
  }

  /// Discards cancelled entries from the heap front until a live entry (or
  /// nothing) remains — the invariant next_time()/run_next() rely on.
  void prune_cancelled_front() {
    while (!heap_.empty() && !cancelled_.empty() &&
           cancelled_.erase(heap_.front().seq) != 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  /// Binary heap ordered by Later{} (std::push_heap/std::pop_heap).
  std::vector<Entry> heap_;
  /// Scheduled, not yet fired or cancelled (size() and cancel() source).
  std::unordered_set<std::uint64_t> pending_;
  /// Cancelled but still buried in the heap (lazy deletion).
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t tie_seed_ = 0;
  double now_ = 0.0;
};

}  // namespace sel::sim
