// Discrete-event scheduler. The round-based superstep engine drives
// topology construction (matching the paper's vertex-centric simulation);
// the *message plane* — transfers with real durations, overlapping
// disseminations — needs event-driven time. Events at equal times fire in
// scheduling order (a monotone sequence number breaks ties), so runs are
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/assert.hpp"

namespace sel::sim {

class EventQueue {
 public:
  using Callback = std::function<void(double now_s)>;

  /// Schedules `cb` at absolute time `time_s` (must not be in the past).
  void schedule(double time_s, Callback cb) {
    SEL_EXPECTS(time_s >= now_);
    heap_.push(Entry{time_s, next_seq_++, std::move(cb)});
  }

  /// Schedules `cb` at now + delay.
  void schedule_in(double delay_s, Callback cb) {
    SEL_EXPECTS(delay_s >= 0.0);
    schedule(now_ + delay_s, std::move(cb));
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Time of the next pending event; infinity when empty.
  [[nodiscard]] double next_time() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().time;
  }

  /// Fires the earliest event. Returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    // Move the entry out before invoking: the callback may schedule more.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = entry.time;
    entry.callback(now_);
    return true;
  }

  /// Fires every event with time <= t_s, then advances the clock to t_s.
  /// Returns the number of events fired.
  std::size_t run_until(double t_s) {
    SEL_EXPECTS(t_s >= now_);
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.top().time <= t_s) {
      run_next();
      ++fired;
    }
    now_ = t_s;
    return fired;
  }

  /// Drains the queue (bounded by max_events as a runaway backstop).
  /// Returns the number of events fired.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t fired = 0;
    while (fired < max_events && run_next()) ++fired;
    return fired;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback callback;

    bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace sel::sim
