// Discrete-event scheduler. The round-based superstep engine drives
// topology construction (matching the paper's vertex-centric simulation);
// the *message plane* — transfers with real durations, overlapping
// disseminations — needs event-driven time. Events at equal times fire in
// scheduling order (a monotone sequence number breaks ties), so runs are
// deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace sel::sim {

class EventQueue {
 public:
  using Callback = std::function<void(double now_s)>;

  /// Schedules `cb` at absolute time `time_s` (must not be in the past).
  void schedule(double time_s, Callback cb) {
    SEL_EXPECTS(time_s >= now_);
    heap_.push_back(Entry{time_s, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Schedules `cb` at now + delay.
  void schedule_in(double delay_s, Callback cb) {
    SEL_EXPECTS(delay_s >= 0.0);
    schedule(now_ + delay_s, std::move(cb));
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Time of the next pending event; infinity when empty.
  [[nodiscard]] double next_time() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.front().time;
  }

  /// Fires the earliest event. Returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    // pop_heap rotates the earliest entry to the back, where it is mutable
    // and can be moved out before invoking (the callback may schedule
    // more). An earlier version const_cast-moved out of
    // priority_queue::top(), which mutates the const heap top in place —
    // UB-adjacent and flagged by clang-tidy/UBSan builds.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.time;
    entry.callback(now_);
    return true;
  }

  /// Fires every event with time <= t_s, then advances the clock to t_s.
  /// Returns the number of events fired.
  std::size_t run_until(double t_s) {
    SEL_EXPECTS(t_s >= now_);
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.front().time <= t_s) {
      run_next();
      ++fired;
    }
    now_ = t_s;
    return fired;
  }

  /// Drains the queue (bounded by max_events as a runaway backstop).
  /// Returns the number of events fired.
  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t fired = 0;
    while (fired < max_events && run_next()) ++fired;
    return fired;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback callback;
  };

  /// Max-heap comparator that puts the earliest (time, seq) at the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Binary heap ordered by Later{} (std::push_heap/std::pop_heap).
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace sel::sim
