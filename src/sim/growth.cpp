#include "sim/growth.hpp"

#include <algorithm>
#include <cmath>

namespace sel::sim {

std::vector<JoinEvent> growth_schedule(const graph::SocialGraph& g,
                                       const GrowthParams& params,
                                       std::uint64_t seed) {
  SEL_EXPECTS(params.initial_rate >= 1.0);
  SEL_EXPECTS(params.decay >= 0.0);
  const std::size_t n = g.num_nodes();
  std::vector<JoinEvent> schedule;
  schedule.reserve(n);
  if (n == 0) return schedule;

  Rng rng(seed);
  std::vector<bool> joined(n, false);
  // Frontier: not-yet-joined users with at least one joined friend, stored
  // with one entry per joined friend so draws favour well-connected users
  // (users with many joined friends are likelier to be invited) — matching
  // the preferential flavour of the growth model.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> frontier;  // (user, inviter)

  std::size_t remaining = n;
  auto join = [&](graph::NodeId user, graph::NodeId inviter, std::size_t step) {
    joined[user] = true;
    --remaining;
    schedule.push_back(JoinEvent{user, inviter, step});
    for (const graph::NodeId friend_id : g.neighbors(user)) {
      if (!joined[friend_id]) frontier.emplace_back(friend_id, user);
    }
  };

  // Seed user chosen at random (paper: "selecting a social user u at random").
  join(static_cast<graph::NodeId>(rng.below(n)), graph::kInvalidNode, 0);

  std::size_t step = 1;
  while (remaining > 0) {
    const double rate =
        params.initial_rate * std::exp(-params.decay * static_cast<double>(step));
    const auto batch =
        std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(rate)));
    for (std::size_t b = 0; b < batch && remaining > 0; ++b) {
      // Draw an inviteable user; retire stale frontier entries lazily.
      graph::NodeId user = graph::kInvalidNode;
      graph::NodeId inviter = graph::kInvalidNode;
      while (!frontier.empty()) {
        const std::size_t idx = rng.below(frontier.size());
        const auto [candidate, via] = frontier[idx];
        frontier[idx] = frontier.back();
        frontier.pop_back();
        if (!joined[candidate]) {
          user = candidate;
          inviter = via;
          break;
        }
      }
      if (user == graph::kInvalidNode) {
        // No frontier: start a new component with an independent subscriber.
        // Scan from a random offset for an unjoined node.
        const std::size_t start = rng.below(n);
        for (std::size_t d = 0; d < n; ++d) {
          const auto candidate =
              static_cast<graph::NodeId>((start + d) % n);
          if (!joined[candidate]) {
            user = candidate;
            break;
          }
        }
        SEL_ASSERT(user != graph::kInvalidNode);
      }
      join(user, inviter, step);
    }
    ++step;
  }
  return schedule;
}

std::size_t schedule_steps(const std::vector<JoinEvent>& schedule) {
  std::size_t max_step = 0;
  for (const auto& e : schedule) max_step = std::max(max_step, e.step);
  return schedule.empty() ? 0 : max_step + 1;
}

}  // namespace sel::sim
