// Network-growth model after Zhu et al. [19] (paper Sec. IV):
//
//   "We initiate our experiments by selecting a social user u from the data
//    set at random. Thereafter, we insert into the social network a portion
//    of the user u's social friends [...] social users establish friendship
//    connections at high rate in the beginning of the join process, and this
//    rate decreases exponentially over time."
//
// The model produces a join schedule over an existing (final) social graph:
// each event is a user joining, together with the already-joined friend who
// invited them (feeding Alg. 1 projection), or no inviter when the user
// subscribes independently (new connected component / isolated node).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/social_graph.hpp"

namespace sel::sim {

struct JoinEvent {
  graph::NodeId user;
  /// The friend whose invitation brought this user in, or kInvalidNode when
  /// the user subscribed independently.
  graph::NodeId inviter;
  /// Index of the growth step (iteration) this join happened in.
  std::size_t step;
};

struct GrowthParams {
  /// Initial number of joins per step (decays exponentially).
  double initial_rate = 32.0;
  /// Exponential decay constant per step; rate(t) = initial * exp(-decay*t),
  /// floored at 1 join per step so growth always completes.
  double decay = 0.01;
};

/// Computes the full join schedule: every node of `g` joins exactly once.
/// Invited users join next to their inviter; users with no joined friends
/// (seeds of new components) join independently.
[[nodiscard]] std::vector<JoinEvent> growth_schedule(const graph::SocialGraph& g,
                                                     const GrowthParams& params,
                                                     std::uint64_t seed);

/// Number of growth steps in a schedule (max step + 1; 0 when empty).
[[nodiscard]] std::size_t schedule_steps(const std::vector<JoinEvent>& schedule);

}  // namespace sel::sim
