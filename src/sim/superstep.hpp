// Vertex-centric superstep engine (the paper runs SELECT on Flink/Gelly's
// vertex-centric iterative model; see Sec. IV).
//
// Semantics per round (Pregel-style):
//   1. every active vertex runs Program::compute(ctx, inbox) in parallel,
//      emitting messages through the context;
//   2. a barrier;
//   3. messages are delivered, sorted by (dst, src, emission index), so the
//      next round's inboxes are identical regardless of thread count.
//
// The engine is deliberately free of any graph knowledge: a vertex may send
// to any vertex id, which is what overlay protocols need (they message
// overlay neighbours, not social neighbours).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "check/superstep_checks.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"

namespace sel::sim {

using VertexId = std::uint32_t;

/// Message envelope. TPayload must be movable; ordering for determinism is
/// by (dst, src, seq) and never inspects the payload.
template <typename TPayload>
struct Envelope {
  VertexId dst;
  VertexId src;
  std::uint32_t seq;  ///< per-(src, round) emission index
  TPayload payload;
};

/// Per-vertex send interface handed to compute().
template <typename TPayload>
class Mailbox {
 public:
  Mailbox(VertexId src, std::vector<Envelope<TPayload>>& sink)
      : src_(src), sink_(sink) {}

  void send(VertexId dst, TPayload payload) {
    sink_.push_back(Envelope<TPayload>{dst, src_, seq_++, std::move(payload)});
  }

 private:
  VertexId src_;
  std::uint32_t seq_ = 0;
  std::vector<Envelope<TPayload>>& sink_;
};

/// Runs synchronized supersteps of a vertex program over `num_vertices`
/// vertices. Program must provide:
///   void compute(VertexId v, std::span<const Envelope<TPayload>> inbox,
///                Mailbox<TPayload>& out);
/// compute() runs in parallel across vertices; it may freely mutate
/// per-vertex state it owns but must not touch other vertices' state.
template <typename Program, typename TPayload>
class SuperstepEngine {
 public:
  SuperstepEngine(std::size_t num_vertices, Program& program,
                  ThreadPool* pool = nullptr)
      : num_vertices_(num_vertices), program_(program), pool_(pool) {
    inbox_offsets_.assign(num_vertices_ + 1, 0);
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Runs one superstep; returns the number of messages delivered for the
  /// *next* round (0 means the system went quiet).
  ///
  /// When observability is on (SEL_OBS, default on), each round records
  /// compute time (slowest busy chunk), barrier time (wall-clock compute
  /// minus that — i.e. idle waiting on stragglers), delivery time (merge +
  /// sort + offset build) and the message count into the global registry.
  std::size_t step() {
    using Clock = std::chrono::steady_clock;
    const bool obs_on = obs::enabled();
    Clock::time_point t_start{};
    if (obs_on) t_start = Clock::now();
    // Slowest chunk's busy nanoseconds; the gap to compute wall-time is the
    // barrier wait.
    std::atomic<std::int64_t> busy_max_ns{0};

    // Per-chunk outboxes avoid contention; merged and sorted afterwards.
    const std::size_t chunk_count =
        pool_ != nullptr ? std::max<std::size_t>(pool_->size(), 1) : 1;
    std::vector<std::vector<Envelope<TPayload>>> outboxes(chunk_count);

    auto run_chunk = [this, &outboxes, chunk_count, obs_on,
                      &busy_max_ns](std::size_t lo, std::size_t hi) {
      Clock::time_point chunk_start{};
      if (obs_on) chunk_start = Clock::now();
      // Identify the chunk by its start; chunks are contiguous so this is
      // collision-free.
      const std::size_t per =
          (num_vertices_ + chunk_count - 1) / chunk_count;
      const std::size_t chunk_idx = per == 0 ? 0 : lo / per;
      auto& out = outboxes[std::min(chunk_idx, chunk_count - 1)];
      for (std::size_t v = lo; v < hi; ++v) {
        const auto vid = static_cast<VertexId>(v);
        Mailbox<TPayload> mailbox(vid, out);
        program_.compute(
            vid,
            std::span<const Envelope<TPayload>>(
                inbox_.data() + inbox_offsets_[v],
                inbox_offsets_[v + 1] - inbox_offsets_[v]),
            mailbox);
      }
      if (obs_on) {
        const auto busy =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - chunk_start)
                .count();
        std::int64_t cur = busy_max_ns.load(std::memory_order_relaxed);
        while (busy > cur && !busy_max_ns.compare_exchange_weak(
                                 cur, busy, std::memory_order_relaxed)) {
        }
      }
    };

    if (pool_ != nullptr && num_vertices_ > 1) {
      pool_->parallel_for_chunks(0, num_vertices_, run_chunk);
    } else {
      run_chunk(0, num_vertices_);
    }

    Clock::time_point t_compute{};
    if (obs_on) t_compute = Clock::now();

    // Merge, then impose the deterministic delivery order.
    std::vector<Envelope<TPayload>> merged;
    std::size_t total = 0;
    for (const auto& o : outboxes) total += o.size();
    merged.reserve(total);
    for (auto& o : outboxes) {
      std::move(o.begin(), o.end(), std::back_inserter(merged));
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) {
                if (a.dst != b.dst) return a.dst < b.dst;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });

    inbox_ = std::move(merged);
    inbox_offsets_.assign(num_vertices_ + 1, 0);
    for (const auto& e : inbox_) {
      SEL_ASSERT(e.dst < num_vertices_);
      ++inbox_offsets_[e.dst + 1];
    }
    for (std::size_t v = 1; v <= num_vertices_; ++v) {
      inbox_offsets_[v] += inbox_offsets_[v - 1];
    }

    // Determinism invariant: the delivered inbox is strictly ordered by
    // (dst, src, seq) and the offset table partitions it. Cheap level
    // verifies the O(1) shape; full level walks the whole inbox.
    if (check::enabled()) {
      if (check::enabled(check::Level::kFull)) {
        check::enforce(check::validate_superstep_inbox(inbox_, inbox_offsets_,
                                                       num_vertices_));
      } else if (inbox_offsets_.front() != 0 ||
                 inbox_offsets_.back() != inbox_.size()) {
        check::enforce(check::Violation{
            "superstep.offsets.shape",
            "offset table does not span the inbox after delivery"});
      } else {
        check::enforce(std::nullopt);
      }
    }

    if (obs_on) {
      const auto t_end = Clock::now();
      const auto ns = [](auto d) {
        return static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
      };
      const double compute_wall_ms = ns(t_compute - t_start) / 1e6;
      const double compute_ms =
          static_cast<double>(busy_max_ns.load(std::memory_order_relaxed)) /
          1e6;
      auto& reg = obs::MetricsRegistry::global();
      static obs::Counter& rounds_c = reg.counter("sim.superstep.rounds");
      static obs::Counter& messages_c = reg.counter("sim.superstep.messages");
      rounds_c.add(1);
      messages_c.add(static_cast<std::int64_t>(inbox_.size()));
      reg.add_round(obs::RoundSample{
          "sim.superstep", static_cast<std::uint64_t>(round_), compute_ms,
          std::max(0.0, compute_wall_ms - compute_ms),
          ns(t_end - t_compute) / 1e6,
          static_cast<std::uint64_t>(inbox_.size())});
      // Phase timeline for the Perfetto exporter: compute / barrier /
      // deliver slices per round, on wall-clock µs.
      const std::uint64_t rd = static_cast<std::uint64_t>(round_);
      const std::int64_t start_us = obs::wall_us(t_start);
      const std::int64_t compute_us = obs::wall_us(t_compute);
      const std::int64_t end_us = obs::wall_us(t_end);
      const auto busy_us = static_cast<std::int64_t>(
          busy_max_ns.load(std::memory_order_relaxed) / 1000);
      auto& buf = obs::TraceBuffer::global();
      buf.add({"sim.superstep", "compute", rd, start_us,
               std::min(busy_us, compute_us - start_us)});
      buf.add({"sim.superstep", "barrier", rd,
               start_us + std::min(busy_us, compute_us - start_us),
               std::max<std::int64_t>(0, compute_us - start_us - busy_us)});
      buf.add({"sim.superstep", "deliver", rd, compute_us,
               end_us - compute_us});
    }
    ++round_;
    return inbox_.size();
  }

  /// Steps until quiescent (no messages) or max_rounds; returns rounds run.
  std::size_t run_until_quiescent(std::size_t max_rounds) {
    std::size_t rounds = 0;
    while (rounds < max_rounds) {
      ++rounds;
      if (step() == 0) break;
    }
    return rounds;
  }

 private:
  std::size_t num_vertices_;
  Program& program_;
  ThreadPool* pool_;
  std::size_t round_ = 0;
  std::vector<Envelope<TPayload>> inbox_;
  std::vector<std::size_t> inbox_offsets_;
};

}  // namespace sel::sim
