// Vertex-centric superstep engine (the paper runs SELECT on Flink/Gelly's
// vertex-centric iterative model; see Sec. IV).
//
// Semantics per round (Pregel-style):
//   1. every active vertex runs Program::compute(ctx, inbox) in parallel,
//      emitting messages through the context;
//   2. a barrier;
//   3. messages are delivered in (dst, src, emission index) order, so the
//      next round's inboxes are identical regardless of thread count.
//
// Delivery is a two-pass counting sort, not a comparison sort. Chunks are
// contiguous ascending vertex ranges and each vertex emits with increasing
// seq, so every chunk outbox is already sorted by (src, seq) and chunk c's
// sources all precede chunk c+1's. Scattering the outboxes in chunk order
// through a per-destination cursor table therefore lands every inbox run
// already in (src, seq) order — the exact order the old O(M log M) global
// sort produced, at O(M + V) with no comparisons. All buffers (chunk
// outboxes, the double-buffered inbox arenas, the offset/cursor tables) are
// engine members reused across rounds: after warm-up a step performs no
// heap allocation (buffer_growth_events() stops advancing — asserted by
// sim_superstep_test and BM_Superstep).
//
// The engine is deliberately free of any graph knowledge: a vertex may send
// to any vertex id, which is what overlay protocols need (they message
// overlay neighbours, not social neighbours).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/memory_checks.hpp"
#include "check/superstep_checks.hpp"
#include "common/assert.hpp"
#include "common/executor.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/time.hpp"

namespace sel::sim {

using VertexId = std::uint32_t;

/// Message envelope. TPayload must be movable and default-constructible
/// (the arena is a value buffer); ordering for determinism is by
/// (dst, src, seq) and never inspects the payload.
template <typename TPayload>
struct Envelope {
  VertexId dst;
  VertexId src;
  std::uint32_t seq;  ///< per-(src, round) emission index
  TPayload payload;
};

/// Arena storage for envelopes: heap bytes attributed to `mem.arena` via
/// the tagged allocator (obs/memory.hpp). Same layout and reallocation
/// behaviour as std::vector — the zero-steady-state-allocation guarantee
/// (buffer_growth_events) is unaffected.
template <typename TPayload>
using EnvelopeArena =
    obs::AccountedVector<Envelope<TPayload>, obs::Subsystem::kArena>;

/// Per-vertex send interface handed to compute().
template <typename TPayload>
class Mailbox {
 public:
  Mailbox(VertexId src, EnvelopeArena<TPayload>& sink)
      : src_(src), sink_(sink) {}

  void send(VertexId dst, TPayload payload) {
    sink_.push_back(Envelope<TPayload>{dst, src_, seq_++, std::move(payload)});
  }

 private:
  VertexId src_;
  std::uint32_t seq_ = 0;
  EnvelopeArena<TPayload>& sink_;
};

/// Runs synchronized supersteps of a vertex program over `num_vertices`
/// vertices. Program must provide:
///   void compute(VertexId v, std::span<const Envelope<TPayload>> inbox,
///                Mailbox<TPayload>& out);
/// compute() runs in parallel across vertices (per the Executor); it may
/// freely mutate per-vertex state it owns but must not touch other
/// vertices' state.
template <typename Program, typename TPayload>
class SuperstepEngine {
  static_assert(std::is_default_constructible_v<TPayload>,
                "the delivery arena value-initializes slots before the "
                "scatter pass; payloads must be default-constructible");

 public:
  SuperstepEngine(std::size_t num_vertices, Program& program,
                  Executor exec = {})
      : num_vertices_(num_vertices),
        program_(program),
        exec_(std::move(exec)),
        chunk_count_(std::max<std::size_t>(exec_.concurrency(), 1)),
        outboxes_(chunk_count_) {
    inbox_offsets_.assign(num_vertices_ + 1, 0);
    cursors_.assign(num_vertices_, 0);
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Times one of the engine's internal buffers grew (reallocated) during a
  /// step. Advances while message volume ramps up, then stays flat: steady
  /// state is allocation-free. Tests and BM_Superstep assert on this.
  [[nodiscard]] std::size_t buffer_growth_events() const noexcept {
    return growth_events_;
  }

  /// Runs one superstep; returns the number of messages delivered for the
  /// *next* round (0 means the system went quiet).
  ///
  /// When observability is on (SEL_OBS, default on), each round records
  /// compute time (slowest busy chunk), barrier time (wall-clock compute
  /// minus that — i.e. idle waiting on stragglers), delivery time (count +
  /// scatter + offset build) and the message count into the global registry.
  std::size_t step() {
    const bool obs_on = obs::enabled();
    obs::WallTimePoint t_start{};
    if (obs_on) t_start = obs::wall_now();
    // Slowest chunk's busy nanoseconds; the gap to compute wall-time is the
    // barrier wait.
    std::atomic<std::int64_t> busy_max_ns{0};

    const std::size_t caps_before = buffer_capacity_sum();

    auto run_chunk = [this, obs_on, &busy_max_ns](std::size_t lo,
                                                  std::size_t hi) {
      obs::WallTimePoint chunk_start{};
      if (obs_on) chunk_start = obs::wall_now();
      // Identify the chunk by its start; chunks are contiguous so this is
      // collision-free (the split mirrors ThreadPool::parallel_for_chunks).
      const std::size_t per =
          (num_vertices_ + chunk_count_ - 1) / chunk_count_;
      const std::size_t chunk_idx = per == 0 ? 0 : lo / per;
      auto& out = outboxes_[std::min(chunk_idx, chunk_count_ - 1)];
      for (std::size_t v = lo; v < hi; ++v) {
        const auto vid = static_cast<VertexId>(v);
        Mailbox<TPayload> mailbox(vid, out);
        program_.compute(
            vid,
            std::span<const Envelope<TPayload>>(
                inbox_.data() + inbox_offsets_[v],
                inbox_offsets_[v + 1] - inbox_offsets_[v]),
            mailbox);
      }
      if (obs_on) {
        const auto busy = obs::ns_between(chunk_start, obs::wall_now());
        std::int64_t cur = busy_max_ns.load(std::memory_order_relaxed);
        while (busy > cur && !busy_max_ns.compare_exchange_weak(
                                 cur, busy, std::memory_order_relaxed)) {
        }
      }
    };

    exec_.for_chunks(0, num_vertices_, run_chunk);

    obs::WallTimePoint t_compute{};
    if (obs_on) t_compute = obs::wall_now();

    deliver();

    if (caps_before != buffer_capacity_sum()) ++growth_events_;

    // Determinism invariant: the delivered inbox is strictly ordered by
    // (dst, src, seq) and the offset table partitions it. Cheap level
    // verifies the O(1) shape; full level walks the whole inbox.
    if (check::enabled()) {
      if (check::enabled(check::Level::kFull)) {
        check::enforce(check::validate_superstep_inbox(inbox_, inbox_offsets_,
                                                       num_vertices_));
      } else if (inbox_offsets_.front() != 0 ||
                 inbox_offsets_.back() != inbox_.size()) {
        check::enforce(check::Violation{
            "superstep.offsets.shape",
            "offset table does not span the inbox after delivery"});
      } else {
        check::enforce(std::nullopt);
      }
      // Soft memory budget (SEL_MEM_BUDGET): the arenas are the engine's
      // dominant allocation, so the superstep barrier is a natural trip
      // point.
      check::check_memory_budget();
    }

    if (obs_on) {
      const auto t_end = obs::wall_now();
      const double compute_wall_ms = obs::ms_between(t_start, t_compute);
      const double compute_ms =
          static_cast<double>(busy_max_ns.load(std::memory_order_relaxed)) /
          1e6;
      auto& reg = obs::MetricsRegistry::global();
      static obs::Counter& rounds_c = reg.counter("sim.superstep.rounds");
      static obs::Counter& messages_c = reg.counter("sim.superstep.messages");
      rounds_c.add(1);
      messages_c.add(static_cast<std::int64_t>(inbox_.size()));
      reg.add_round(obs::RoundSample{
          "sim.superstep", static_cast<std::uint64_t>(round_), compute_ms,
          std::max(0.0, compute_wall_ms - compute_ms),
          obs::ms_between(t_compute, t_end),
          static_cast<std::uint64_t>(inbox_.size())});
      // Phase timeline for the Perfetto exporter: compute / barrier /
      // deliver slices per round, on wall-clock µs.
      const std::uint64_t rd = static_cast<std::uint64_t>(round_);
      const std::int64_t start_us = obs::wall_us(t_start);
      const std::int64_t compute_us = obs::wall_us(t_compute);
      const std::int64_t end_us = obs::wall_us(t_end);
      const auto busy_us = static_cast<std::int64_t>(
          busy_max_ns.load(std::memory_order_relaxed) / 1000);
      auto& buf = obs::TraceBuffer::global();
      buf.add({"sim.superstep", "compute", rd, start_us,
               std::min(busy_us, compute_us - start_us)});
      buf.add({"sim.superstep", "barrier", rd,
               start_us + std::min(busy_us, compute_us - start_us),
               std::max<std::int64_t>(0, compute_us - start_us - busy_us)});
      buf.add({"sim.superstep", "deliver", rd, compute_us,
               end_us - compute_us});
    }
    ++round_;
    return inbox_.size();
  }

  /// Steps until quiescent (no messages) or max_rounds; returns rounds run.
  std::size_t run_until_quiescent(std::size_t max_rounds) {
    std::size_t rounds = 0;
    while (rounds < max_rounds) {
      ++rounds;
      if (step() == 0) break;
    }
    return rounds;
  }

 private:
  /// Counting-sort delivery. Pass 1 histograms destinations into the offset
  /// table; pass 2 scatters the chunk outboxes (in chunk order, which is
  /// ascending src order — see the file comment) through per-destination
  /// cursors into the spare arena, then the arenas swap roles.
  void deliver() {
    std::fill(inbox_offsets_.begin(), inbox_offsets_.end(), 0);
    std::size_t total = 0;
    for (const auto& o : outboxes_) {
      total += o.size();
      for (const auto& e : o) {
        SEL_ASSERT(e.dst < num_vertices_);
        ++inbox_offsets_[e.dst + 1];
      }
    }
    for (std::size_t v = 1; v <= num_vertices_; ++v) {
      inbox_offsets_[v] += inbox_offsets_[v - 1];
    }

    scatter_.resize(total);  // grows only while volume ramps up
    std::copy(inbox_offsets_.begin(), inbox_offsets_.end() - 1,
              cursors_.begin());
    for (auto& o : outboxes_) {
      for (auto& e : o) {
        scatter_[cursors_[e.dst]++] = std::move(e);
      }
      o.clear();  // keeps capacity for the next round
    }
    std::swap(inbox_, scatter_);
  }

  /// Capacity fingerprint of every internal buffer; any reallocation grows
  /// it (capacities never shrink), which is how growth events are detected.
  [[nodiscard]] std::size_t buffer_capacity_sum() const noexcept {
    std::size_t sum = inbox_.capacity() + scatter_.capacity();
    for (const auto& o : outboxes_) sum += o.capacity();
    return sum;
  }

  std::size_t num_vertices_;
  Program& program_;
  Executor exec_;
  std::size_t chunk_count_;
  std::size_t round_ = 0;
  std::size_t growth_events_ = 0;
  std::vector<EnvelopeArena<TPayload>> outboxes_;  ///< per chunk
  EnvelopeArena<TPayload> inbox_;    ///< delivered, (dst,src,seq) order
  EnvelopeArena<TPayload> scatter_;  ///< spare arena (double buffer)
  obs::AccountedVector<std::size_t, obs::Subsystem::kArena>
      inbox_offsets_;  ///< per-vertex inbox runs
  obs::AccountedVector<std::size_t, obs::Subsystem::kArena>
      cursors_;  ///< scatter write positions
};

}  // namespace sel::sim
