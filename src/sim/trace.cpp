#include "sim/trace.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <ostream>

#include "common/assert.hpp"

namespace sel::sim {

ChurnTrace::ChurnTrace(std::vector<ChurnEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time_s < b.time_s;
                   });
}

ChurnTrace ChurnTrace::record(SessionChurn& churn, double horizon_s,
                              double step_s) {
  SEL_EXPECTS(horizon_s >= 0.0);
  SEL_EXPECTS(step_s > 0.0);
  std::vector<ChurnEvent> events;
  // Snapshot-diff per window: a peer that toggled multiple times within one
  // sampling window contributes at most one event (its net transition), so
  // replaying the trace reproduces the sampled states exactly.
  std::vector<bool> prev(churn.num_peers(), true);
  for (double t = step_s; t <= horizon_s; t += step_s) {
    churn.advance_to(t);
    for (std::size_t p = 0; p < churn.num_peers(); ++p) {
      const bool now = churn.online(p);
      if (now != prev[p]) {
        events.push_back(ChurnEvent{t, static_cast<std::uint32_t>(p), now});
        prev[p] = now;
      }
    }
  }
  return ChurnTrace(std::move(events));
}

bool ChurnTrace::save(std::ostream& out) const {
  out.precision(17);
  for (const auto& e : events_) {
    out << e.time_s << ' ' << e.peer << ' ' << (e.online ? 1 : 0) << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<ChurnTrace> ChurnTrace::load(std::istream& in) {
  std::vector<ChurnEvent> events;
  double prev = -1.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    double t = 0.0;
    std::uint32_t peer = 0;
    int online = -1;
    if (!(fields >> t >> peer >> online)) return std::nullopt;  // truncated
    std::string extra;
    if (fields >> extra) return std::nullopt;  // trailing garbage
    if (t < prev || (online != 0 && online != 1)) return std::nullopt;
    prev = t;
    events.push_back(ChurnEvent{t, peer, online == 1});
  }
  return ChurnTrace(std::move(events));
}

TraceReplayer::TraceReplayer(const ChurnTrace& trace, std::size_t num_peers)
    : trace_(&trace), online_(num_peers, true), online_count_(num_peers) {}

std::vector<ChurnEvent> TraceReplayer::advance_to(double t_s) {
  std::vector<ChurnEvent> applied;
  const auto& events = trace_->events();
  while (cursor_ < events.size() && events[cursor_].time_s <= t_s) {
    const auto& e = events[cursor_++];
    SEL_EXPECTS(e.peer < online_.size());
    if (online_[e.peer] != e.online) {
      online_[e.peer] = e.online;
      online_count_ += e.online ? 1 : -1;
    }
    applied.push_back(e);
  }
  return applied;
}

}  // namespace sel::sim
