// Churn trace record/replay.
//
// A trace is a time-ordered list of (time, peer, online) transitions. The
// SessionChurn process can be recorded into a trace and replayed later —
// so a churn scenario can be shared between experiments (or swapped for a
// real measured trace) with bit-identical behaviour.
//
// Text format, one event per line:  <time_s> <peer> <0|1>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/churn.hpp"

namespace sel::sim {

struct ChurnEvent {
  double time_s;
  std::uint32_t peer;
  bool online;
};

class ChurnTrace {
 public:
  ChurnTrace() = default;
  explicit ChurnTrace(std::vector<ChurnEvent> events);

  [[nodiscard]] const std::vector<ChurnEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] double duration_s() const noexcept {
    return events_.empty() ? 0.0 : events_.back().time_s;
  }

  /// Records a SessionChurn process sampled at `step_s` for `horizon_s`.
  [[nodiscard]] static ChurnTrace record(SessionChurn& churn,
                                         double horizon_s, double step_s);

  bool save(std::ostream& out) const;
  [[nodiscard]] static std::optional<ChurnTrace> load(std::istream& in);

 private:
  std::vector<ChurnEvent> events_;  ///< sorted by time
};

/// Replays a trace: apply() advances to a time and returns the transitions
/// in (time) order since the previous call; online() tracks current state.
class TraceReplayer {
 public:
  TraceReplayer(const ChurnTrace& trace, std::size_t num_peers);

  /// Applies all events with time <= t_s; returns them.
  std::vector<ChurnEvent> advance_to(double t_s);

  [[nodiscard]] bool online(std::size_t peer) const { return online_[peer]; }
  [[nodiscard]] std::size_t online_count() const noexcept {
    return online_count_;
  }
  [[nodiscard]] bool finished() const noexcept {
    return cursor_ >= trace_->events().size();
  }

 private:
  const ChurnTrace* trace_;
  std::size_t cursor_ = 0;
  std::vector<bool> online_;
  std::size_t online_count_;
};

}  // namespace sel::sim
