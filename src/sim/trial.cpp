#include "sim/trial.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sel::sim {

double TrialSummary::mean(const std::string& name) const {
  const auto it = metrics.find(name);
  SEL_EXPECTS(it != metrics.end());
  return it->second.mean();
}

double TrialSummary::ci95(const std::string& name) const {
  const auto it = metrics.find(name);
  SEL_EXPECTS(it != metrics.end());
  return it->second.ci95_halfwidth();
}

TrialSummary run_trials(std::size_t trials, std::uint64_t root_seed,
                        const std::function<MetricMap(std::uint64_t)>& body,
                        const std::string& label, const Executor& exec) {
  SEL_EXPECTS(trials > 0);
  static obs::Counter& trials_c =
      obs::MetricsRegistry::global().counter("sim.trials_run");
  // Trials run per the executor, but results are collected per index and
  // folded in trial order below: the RunningStats stream is identical to a
  // sequential run regardless of executor width.
  std::vector<MetricMap> results(trials);
  exec.for_each(0, trials, [&](std::size_t t) {
    const std::uint64_t trial_seed = derive_seed(root_seed, t);
    {
      SEL_TRACE_SCOPE("sim.trial");
      results[t] = body(trial_seed);
    }
    trials_c.add(1);
    if (!label.empty() && !exec.is_pooled()) {
      log_info(label + ": trial " + std::to_string(t + 1) + "/" +
               std::to_string(trials) + " done");
    }
  });
  TrialSummary summary;
  for (const auto& result : results) {
    for (const auto& [name, value] : result) {
      summary.metrics[name].add(value);
    }
  }
  if (!label.empty() && exec.is_pooled()) {
    log_info(label + ": " + std::to_string(trials) + " trials done");
  }
  return summary;
}

}  // namespace sel::sim
