#include "sim/trial.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sel::sim {

double TrialSummary::mean(const std::string& name) const {
  const auto it = metrics.find(name);
  SEL_EXPECTS(it != metrics.end());
  return it->second.mean();
}

double TrialSummary::ci95(const std::string& name) const {
  const auto it = metrics.find(name);
  SEL_EXPECTS(it != metrics.end());
  return it->second.ci95_halfwidth();
}

TrialSummary run_trials(std::size_t trials, std::uint64_t root_seed,
                        const std::function<MetricMap(std::uint64_t)>& body,
                        const std::string& label) {
  SEL_EXPECTS(trials > 0);
  TrialSummary summary;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t trial_seed = derive_seed(root_seed, t);
    MetricMap result;
    {
      SEL_TRACE_SCOPE("sim.trial");
      result = body(trial_seed);
    }
    static obs::Counter& trials_c =
        obs::MetricsRegistry::global().counter("sim.trials_run");
    trials_c.add(1);
    for (const auto& [name, value] : result) {
      summary.metrics[name].add(value);
    }
    if (!label.empty()) {
      log_info(label + ": trial " + std::to_string(t + 1) + "/" +
               std::to_string(trials) + " done");
    }
  }
  return summary;
}

}  // namespace sel::sim
