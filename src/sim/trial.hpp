// Multi-trial experiment runner. The paper reports every metric as the
// average of 100 independent trials; this wraps the seed derivation,
// aggregation and progress logging that every harness shares.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/executor.hpp"
#include "common/stats.hpp"

namespace sel::sim {

/// A single trial reports named scalar metrics.
using MetricMap = std::map<std::string, double>;

struct TrialSummary {
  std::map<std::string, RunningStats> metrics;

  [[nodiscard]] double mean(const std::string& name) const;
  [[nodiscard]] double ci95(const std::string& name) const;
};

/// Runs `body(trial_seed)` for `trials` independent trials. Trial seeds are
/// derived from `root_seed` with SplitMix64, so any subset of trials can be
/// reproduced in isolation.
///
/// A pooled `exec` fans the trial bodies out across workers; results are
/// still folded into the summary sequentially in trial order, so the
/// aggregates are bit-identical for any executor width (RunningStats is
/// order-sensitive in floating point). With a pooled executor `body` must
/// be safe to call concurrently with itself (global obs/check machinery
/// is; per-trial state must not be shared).
[[nodiscard]] TrialSummary run_trials(
    std::size_t trials, std::uint64_t root_seed,
    const std::function<MetricMap(std::uint64_t)>& body,
    const std::string& label = "", const Executor& exec = {});

}  // namespace sel::sim
