#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sel::sim {

PublicationWorkload::PublicationWorkload(const graph::SocialGraph& g,
                                         WorkloadParams params,
                                         std::uint64_t seed) {
  SEL_EXPECTS(params.median_posts_per_hour > 0.0);
  SEL_EXPECTS(params.publisher_fraction > 0.0 &&
              params.publisher_fraction <= 1.0);
  Rng rng(seed);
  const std::size_t n = g.num_nodes();
  rates_.assign(n, 0.0);
  const double median_rate_s = params.median_posts_per_hour / 3600.0;
  for (std::size_t u = 0; u < n; ++u) {
    if (!rng.chance(params.publisher_fraction)) continue;
    // Zipf-weighted multiplier around the median rate. zipf(1000, s) has
    // median near ~2 for s=1; normalize so typical draws sit around 1.
    double multiplier = 1.0;
    if (params.rate_skew > 0.0) {
      multiplier = static_cast<double>(rng.zipf(1000, params.rate_skew)) / 2.0;
    }
    rates_[u] = median_rate_s * multiplier;
  }
}

std::vector<Post> PublicationWorkload::generate(double horizon_s,
                                                std::uint64_t seed) const {
  SEL_EXPECTS(horizon_s >= 0.0);
  Rng rng(seed);
  std::vector<Post> posts;
  for (graph::NodeId u = 0; u < rates_.size(); ++u) {
    const double rate = rates_[u];
    if (rate <= 0.0) continue;
    // Poisson process: exponential inter-arrival times.
    double t = rng.exponential(rate);
    while (t < horizon_s) {
      posts.push_back(Post{t, u});
      t += rng.exponential(rate);
    }
  }
  std::sort(posts.begin(), posts.end(),
            [](const Post& a, const Post& b) { return a.time_s < b.time_s; });
  return posts;
}

std::vector<graph::NodeId> PublicationWorkload::sample_publishers(
    std::size_t count, std::uint64_t seed) const {
  Rng rng(seed);
  double total = 0.0;
  for (const double r : rates_) total += r;
  std::vector<graph::NodeId> out;
  out.reserve(count);
  if (total <= 0.0) return out;
  // Cumulative-rate inversion per draw; count is small in the harnesses.
  std::vector<double> cumulative(rates_.size());
  double acc = 0.0;
  for (std::size_t u = 0; u < rates_.size(); ++u) {
    acc += rates_[u];
    cumulative[u] = acc;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double pick = rng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), pick);
    out.push_back(static_cast<graph::NodeId>(it - cumulative.begin()));
  }
  return out;
}

std::size_t PublicationWorkload::num_publishers() const noexcept {
  std::size_t count = 0;
  for (const double r : rates_) {
    if (r > 0.0) ++count;
  }
  return count;
}

}  // namespace sel::sim
