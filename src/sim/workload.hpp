// Publication workload after Jiang et al. [21] (paper Sec. IV): "each
// publisher posts messages at exponential rate". Publisher activity in OSNs
// is heavy-tailed, so per-publisher rates are drawn from a Zipf-weighted
// range — a few users post constantly, most rarely.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/social_graph.hpp"

namespace sel::sim {

struct Post {
  double time_s;
  graph::NodeId publisher;
};

struct WorkloadParams {
  /// Mean posts per hour for the *median* publisher.
  double median_posts_per_hour = 2.0;
  /// Zipf exponent for the per-publisher rate skew (0 = uniform rates).
  double rate_skew = 1.0;
  /// Fraction of users that ever publish.
  double publisher_fraction = 1.0;
};

class PublicationWorkload {
 public:
  /// Assigns each user a posting rate (possibly zero).
  PublicationWorkload(const graph::SocialGraph& g, WorkloadParams params,
                      std::uint64_t seed);

  /// Posts in [0, horizon_s), sorted by time.
  [[nodiscard]] std::vector<Post> generate(double horizon_s,
                                           std::uint64_t seed) const;

  /// Exactly `count` posts, publishers drawn proportionally to rate.
  [[nodiscard]] std::vector<graph::NodeId> sample_publishers(
      std::size_t count, std::uint64_t seed) const;

  [[nodiscard]] double rate_per_s(graph::NodeId user) const {
    return rates_[user];
  }
  [[nodiscard]] std::size_t num_publishers() const noexcept;

 private:
  std::vector<double> rates_;  ///< posts per second per user
};

}  // namespace sel::sim
