#include "baselines/bayeux.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "overlay/system.hpp"
#include "pubsub/metrics.hpp"

namespace sel::baselines {
namespace {

using overlay::PeerId;

graph::SocialGraph test_graph(std::size_t n, std::uint64_t seed) {
  return graph::holme_kim(n, 4, 0.6, seed);
}

TEST(Bayeux, DigitCountSizedToNetwork) {
  const auto g = test_graph(1000, 1);
  BayeuxSystem sys(g, BayeuxParams{}, 1);
  sys.build();
  // 16^d >= 16 * 1000 -> d >= 4 (digits_ also floors at 2).
  EXPECT_GE(sys.digits(), 4u);
}

TEST(Bayeux, ExplicitDigitsHonored) {
  const auto g = test_graph(100, 2);
  BayeuxSystem sys(g, BayeuxParams{.digits = 8}, 2);
  sys.build();
  EXPECT_EQ(sys.digits(), 8u);
}

TEST(Bayeux, SelfRouteSucceeds) {
  const auto g = test_graph(200, 3);
  BayeuxSystem sys(g, BayeuxParams{}, 3);
  sys.build();
  const auto r = sys.route(7, 7);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Bayeux, AllPairsRoutable) {
  const auto g = test_graph(300, 4);
  BayeuxSystem sys(g, BayeuxParams{}, 4);
  sys.build();
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<PeerId>(rng.below(300));
    const auto b = static_cast<PeerId>(rng.below(300));
    const auto r = sys.route(a, b);
    EXPECT_TRUE(r.success) << a << " -> " << b;
    EXPECT_EQ(r.path.front(), a);
    EXPECT_EQ(r.path.back(), b);
  }
}

TEST(Bayeux, HopsBoundedByDigits) {
  const auto g = test_graph(400, 5);
  BayeuxSystem sys(g, BayeuxParams{}, 5);
  sys.build();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<PeerId>(rng.below(400));
    const auto b = static_cast<PeerId>(rng.below(400));
    const auto r = sys.route(a, b);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.hops(), sys.digits() + 1);
  }
}

TEST(Bayeux, RendezvousRootIsDeterministic) {
  const auto g = test_graph(200, 6);
  BayeuxSystem sys(g, BayeuxParams{}, 6);
  sys.build();
  EXPECT_EQ(sys.rendezvous_root(3), sys.rendezvous_root(3));
  // Different topics usually map to different roots.
  std::set<PeerId> roots;
  for (PeerId b = 0; b < 20; ++b) roots.insert(sys.rendezvous_root(b));
  EXPECT_GT(roots.size(), 10u);
}

TEST(Bayeux, TreeRoutesThroughRendezvous) {
  const auto g = test_graph(300, 7);
  BayeuxSystem sys(g, BayeuxParams{}, 7);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const PeerId publisher = 0;
  const auto tree = ps.build_tree(publisher);
  EXPECT_EQ(tree.root(), publisher);
  const PeerId root = sys.rendezvous_root(publisher);
  EXPECT_TRUE(tree.contains(root));
  const auto subs = ps.subscribers_of(publisher);
  std::size_t covered = 0;
  for (const PeerId s : subs) {
    if (tree.contains(s)) ++covered;
  }
  EXPECT_GE(covered, subs.size() * 9 / 10);
}

TEST(Bayeux, RelayHeavyDissemination) {
  // The defining Bayeux weakness (Fig. 3): most tree nodes are relays.
  const auto g = test_graph(400, 8);
  BayeuxSystem sys(g, BayeuxParams{}, 8);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  std::vector<PeerId> publishers{0, 17, 42, 99, 123};
  const auto relays = pubsub::measure_relays(ps, publishers);
  EXPECT_GT(relays.relays_per_path.mean(), 1.0);
}

TEST(Bayeux, OfflinePeersBlockRouting) {
  const auto g = test_graph(100, 9);
  BayeuxSystem sys(g, BayeuxParams{}, 9);
  sys.build();
  sys.set_peer_online(5, false);
  EXPECT_FALSE(sys.peer_online(5));
  EXPECT_FALSE(sys.route(0, 5).success);
}

TEST(Bayeux, NonIterative) {
  const auto g = test_graph(100, 10);
  BayeuxSystem sys(g, BayeuxParams{}, 10);
  sys.build();
  EXPECT_EQ(sys.build_iterations(), 0u);
}

TEST(Bayeux, Deterministic) {
  const auto g = test_graph(200, 11);
  BayeuxSystem a(g, BayeuxParams{}, 11);
  BayeuxSystem b(g, BayeuxParams{}, 11);
  a.build();
  b.build();
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto x = static_cast<PeerId>(rng.below(200));
    const auto y = static_cast<PeerId>(rng.below(200));
    EXPECT_EQ(a.route(x, y).path, b.route(x, y).path);
  }
}

}  // namespace
}  // namespace sel::baselines
