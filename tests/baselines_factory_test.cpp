#include "baselines/factory.hpp"

#include <gtest/gtest.h>

#include "baselines/symphony.hpp"
#include "graph/profiles.hpp"
#include "select/protocol.hpp"

namespace sel::baselines {
namespace {

graph::SocialGraph small_graph(std::uint64_t seed) {
  return graph::make_dataset_graph(graph::profile_by_name("facebook"), 200,
                                   seed);
}

TEST(Factory, ListsThePaperComparisonOrder) {
  const auto& names = all_system_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "select");
  EXPECT_EQ(names[1], "symphony");
  EXPECT_EQ(names[2], "bayeux");
  EXPECT_EQ(names[3], "vitis");
  EXPECT_EQ(names[4], "omen");
}

TEST(Factory, EveryListedNameConstructs) {
  const auto g = small_graph(1);
  for (const auto name : all_system_names()) {
    auto sys = make_system(name, g, {.seed = 1});
    ASSERT_NE(sys, nullptr);
    EXPECT_EQ(sys->name(), name);
    EXPECT_EQ(&sys->social(), &g);
  }
}

TEST(Factory, RandomControlConstructs) {
  const auto g = small_graph(2);
  auto sys = make_system("random", g, {.seed = 2});
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->name(), "random");
}

TEST(Factory, KOverridePropagates) {
  const auto g = small_graph(3);
  auto sys = make_system("symphony", g, {.seed = 3, .k_links = 4});
  sys->build();
  const auto* symphony = dynamic_cast<const SymphonySystem*>(&sys->overlay());
  ASSERT_NE(symphony, nullptr);
  for (overlay::PeerId p = 0; p < g.num_nodes(); ++p) {
    EXPECT_LE(symphony->overlay().out_degree(p), 4u);
  }
}

TEST(Factory, SelectUsesProvidedNetworkModel) {
  const auto g = small_graph(4);
  net::NetworkModel net(g.num_nodes(), 99);
  auto sys = make_system("select", g, {.seed = 4, .net = &net});
  sys->build();  // must not crash; bandwidth decisions read `net`
  EXPECT_EQ(sys->name(), "select");
}

TEST(Factory, SeparateInstancesAreIndependent) {
  const auto g = small_graph(5);
  auto a = make_system("select", g, {.seed = 5});
  auto b = make_system("select", g, {.seed = 5});
  a->build();
  b->build();
  a->set_peer_online(0, false);
  EXPECT_FALSE(a->peer_online(0));
  EXPECT_TRUE(b->peer_online(0));
}

}  // namespace
}  // namespace sel::baselines
