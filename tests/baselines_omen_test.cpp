#include "baselines/omen.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "overlay/system.hpp"
#include "pubsub/metrics.hpp"

namespace sel::baselines {
namespace {

using overlay::PeerId;

graph::SocialGraph test_graph(std::size_t n, std::uint64_t seed) {
  return graph::holme_kim(n, 4, 0.6, seed);
}

TEST(Omen, IterativeConstruction) {
  const auto g = test_graph(300, 1);
  OmenSystem sys(g, OmenParams{}, 1);
  sys.build();
  EXPECT_GT(sys.build_iterations(), 0u);
}

TEST(Omen, MostTopicsBecomeConnected) {
  const auto g = test_graph(300, 2);
  OmenSystem sys(g, OmenParams{}, 2);
  sys.build();
  EXPECT_GT(sys.topic_connectivity(), 0.6);
}

TEST(Omen, DegreeBudgetRespectedDuringGm) {
  const auto g = test_graph(400, 3);
  OmenParams params;
  params.degree_budget = 10;
  OmenSystem sys(g, params, 3);
  sys.build();
  for (PeerId p = 0; p < 400; ++p) {
    // GM stops adding once the budget is reached; the last accepted edge
    // may land exactly on the boundary.
    EXPECT_LE(sys.overlay().out_degree(p) + sys.overlay().in_degree(p), 11u);
  }
}

TEST(Omen, TcoEdgesConnectTopicMates) {
  const auto g = test_graph(300, 4);
  OmenSystem sys(g, OmenParams{}, 4);
  sys.build();
  // Every TCO edge must share at least one topic (common neighbour or
  // direct friendship).
  for (PeerId p = 0; p < 300; ++p) {
    for (const PeerId q : sys.overlay().out_links(p)) {
      EXPECT_TRUE(g.common_neighbors(p, q) > 0 || g.has_edge(p, q))
          << p << " - " << q;
    }
  }
}

TEST(Omen, LowRelayDissemination) {
  const auto g = test_graph(400, 5);
  OmenSystem sys(g, OmenParams{}, 5);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  std::vector<PeerId> publishers{0, 13, 77, 200};
  const auto relays = pubsub::measure_relays(ps, publishers);
  EXPECT_GT(relays.coverage.mean(), 0.95);
  EXPECT_LT(relays.relays_per_path.mean(), 1.5);
}

TEST(Omen, ShadowSetsMendChurn) {
  const auto g = test_graph(300, 6);
  OmenSystem sys(g, OmenParams{}, 6);
  sys.build();
  // Take a linked peer offline; maintenance should replace links to it.
  PeerId victim = overlay::kInvalidPeer;
  for (PeerId p = 0; p < 300; ++p) {
    if (sys.overlay().in_degree(p) >= 1) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, overlay::kInvalidPeer);
  const std::size_t before = sys.overlay().in_degree(victim);
  sys.set_peer_online(victim, false);
  sys.maintenance_round();
  EXPECT_LT(sys.overlay().in_degree(victim), before + 1);
  // Peers that replaced the victim used shadow peers (still have links).
}

TEST(Omen, IterationsGrowWithSize) {
  const auto small_g = test_graph(200, 7);
  OmenSystem small_sys(small_g, OmenParams{}, 7);
  small_sys.build();
  const auto big_g = test_graph(1600, 7);
  OmenSystem big_sys(big_g, OmenParams{}, 7);
  big_sys.build();
  EXPECT_GE(big_sys.build_iterations(), small_sys.build_iterations());
}

TEST(Omen, Deterministic) {
  const auto g = test_graph(200, 8);
  OmenSystem a(g, OmenParams{}, 8);
  OmenSystem b(g, OmenParams{}, 8);
  a.build();
  b.build();
  EXPECT_EQ(a.build_iterations(), b.build_iterations());
  EXPECT_DOUBLE_EQ(a.topic_connectivity(), b.topic_connectivity());
}

}  // namespace
}  // namespace sel::baselines
