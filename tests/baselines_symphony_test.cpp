#include "baselines/symphony.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "overlay/system.hpp"
#include "pubsub/metrics.hpp"

namespace sel::baselines {
namespace {

using overlay::PeerId;

graph::SocialGraph test_graph(std::size_t n, std::uint64_t seed) {
  return graph::holme_kim(n, 4, 0.6, seed);
}

TEST(Symphony, BuildJoinsEveryoneWithUniformIds) {
  const auto g = test_graph(512, 1);
  SymphonySystem sys(g, SymphonyParams{}, 1);
  sys.build();
  // Uniform ids: mean near 0.5, spread over the ring.
  double sum = 0.0;
  for (PeerId p = 0; p < 512; ++p) {
    EXPECT_TRUE(sys.overlay().joined(p));
    sum += sys.overlay().id(p).value();
  }
  EXPECT_NEAR(sum / 512.0, 0.5, 0.05);
}

TEST(Symphony, EstablishesAboutLogNLinks) {
  const auto g = test_graph(512, 2);
  SymphonySystem sys(g, SymphonyParams{}, 2);
  sys.build();
  // k = log2(512) = 9; harmonic draws may collide, so allow slack.
  EXPECT_GT(sys.overlay().average_long_degree(), 6.0);
  for (PeerId p = 0; p < 512; ++p) {
    EXPECT_LE(sys.overlay().out_degree(p), 9u);
  }
}

TEST(Symphony, ExplicitLinkBudgetHonored) {
  const auto g = test_graph(256, 3);
  SymphonySystem sys(g, SymphonyParams{.k_links = 4}, 3);
  sys.build();
  for (PeerId p = 0; p < 256; ++p) {
    EXPECT_LE(sys.overlay().out_degree(p), 4u);
  }
}

TEST(Symphony, NonIterativeConstruction) {
  const auto g = test_graph(128, 4);
  SymphonySystem sys(g, SymphonyParams{}, 4);
  sys.build();
  EXPECT_EQ(sys.build_iterations(), 0u);
}

TEST(Symphony, AllLookupsSucceed) {
  const auto g = test_graph(512, 5);
  SymphonySystem sys(g, SymphonyParams{}, 5);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto hops = pubsub::measure_hops(ps, 300, 5);
  EXPECT_DOUBLE_EQ(hops.success_rate(), 1.0);
}

TEST(Symphony, HopsGrowWithNetworkSize) {
  // O(log n) routing: hops at 4096 peers should exceed hops at 128.
  const auto small_g = test_graph(128, 6);
  SymphonySystem small_sys(small_g, SymphonyParams{}, 6);
  small_sys.build();
  const auto big_g = test_graph(4096, 6);
  SymphonySystem big_sys(big_g, SymphonyParams{}, 6);
  big_sys.build();
  const overlay::PubSubSystem small_ps(small_sys);
  const overlay::PubSubSystem big_ps(big_sys);
  const double small_hops = pubsub::measure_hops(small_ps, 200, 6).hops.mean();
  const double big_hops = pubsub::measure_hops(big_ps, 200, 6).hops.mean();
  EXPECT_GT(big_hops, small_hops);
}

TEST(Symphony, Deterministic) {
  const auto g = test_graph(256, 7);
  SymphonySystem a(g, SymphonyParams{}, 7);
  SymphonySystem b(g, SymphonyParams{}, 7);
  a.build();
  b.build();
  for (PeerId p = 0; p < 256; ++p) {
    EXPECT_DOUBLE_EQ(a.overlay().id(p).value(), b.overlay().id(p).value());
    EXPECT_EQ(a.overlay().out_degree(p), b.overlay().out_degree(p));
  }
}

TEST(Symphony, TreesReachSubscribers) {
  const auto g = test_graph(512, 8);
  SymphonySystem sys(g, SymphonyParams{}, 8);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto tree = ps.build_tree(0);
  const auto subs = ps.subscribers_of(0);
  std::size_t covered = 0;
  for (const PeerId s : subs) {
    if (tree.contains(s)) ++covered;
  }
  EXPECT_EQ(covered, subs.size());
}

TEST(Symphony, ChurnHooksWork) {
  const auto g = test_graph(128, 9);
  SymphonySystem sys(g, SymphonyParams{}, 9);
  sys.build();
  sys.set_peer_online(5, false);
  EXPECT_FALSE(sys.peer_online(5));
  sys.set_peer_online(5, true);
  EXPECT_TRUE(sys.peer_online(5));
}

}  // namespace
}  // namespace sel::baselines
