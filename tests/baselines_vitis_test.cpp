#include "baselines/vitis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "overlay/system.hpp"
#include "pubsub/metrics.hpp"

namespace sel::baselines {
namespace {

using overlay::PeerId;

graph::SocialGraph test_graph(std::size_t n, std::uint64_t seed) {
  return graph::holme_kim(n, 4, 0.6, seed);
}

TEST(Vitis, IterativeConstructionConverges) {
  const auto g = test_graph(300, 1);
  VitisSystem sys(g, VitisParams{}, 1);
  sys.build();
  EXPECT_GT(sys.build_iterations(), 0u);
  EXPECT_LT(sys.build_iterations(), VitisParams{}.max_rounds);
}

TEST(Vitis, AllLookupsSucceed) {
  const auto g = test_graph(400, 2);
  VitisSystem sys(g, VitisParams{}, 2);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  const auto hops = pubsub::measure_hops(ps, 300, 2);
  EXPECT_DOUBLE_EQ(hops.success_rate(), 1.0);
}

TEST(Vitis, ClusterLinksFavorSimilarPeers) {
  const auto g = test_graph(400, 3);
  VitisSystem sys(g, VitisParams{}, 3);
  sys.build();
  // Cluster links should have far more common neighbours than random pairs.
  double linked_sim = 0.0;
  std::size_t linked_count = 0;
  for (PeerId p = 0; p < 400; ++p) {
    for (const PeerId q : sys.overlay().out_links(p)) {
      linked_sim += static_cast<double>(g.common_neighbors(p, q));
      ++linked_count;
    }
  }
  linked_sim /= static_cast<double>(linked_count);
  Rng rng(3);
  double random_sim = 0.0;
  for (int i = 0; i < 1000; ++i) {
    random_sim += static_cast<double>(g.common_neighbors(
        static_cast<PeerId>(rng.below(400)),
        static_cast<PeerId>(rng.below(400))));
  }
  random_sim /= 1000.0;
  EXPECT_GT(linked_sim, random_sim * 2.0);
}

TEST(Vitis, HubInDegreeIsCappedButConcentrated) {
  const auto g = test_graph(500, 4);
  VitisSystem sys(g, VitisParams{}, 4);
  sys.build();
  const std::size_t k = 8;  // log2(500) ~ 8
  std::size_t max_in = 0;
  for (PeerId p = 0; p < 500; ++p) {
    max_in = std::max(max_in, sys.overlay().in_degree(p));
  }
  // Hubs hit the 2k cap (+ base harmonic in-links, which are unbounded but
  // few); concentration is the Vitis signature, the cap is capacity.
  EXPECT_GE(max_in, k);
  EXPECT_LE(max_in, 2 * k + 12);
}

TEST(Vitis, IterationsGrowWithNetworkSize) {
  const auto small_g = test_graph(200, 5);
  VitisSystem small_sys(small_g, VitisParams{}, 5);
  small_sys.build();
  const auto big_g = test_graph(1600, 5);
  VitisSystem big_sys(big_g, VitisParams{}, 5);
  big_sys.build();
  EXPECT_GT(big_sys.build_iterations(), small_sys.build_iterations());
}

TEST(Vitis, Deterministic) {
  const auto g = test_graph(200, 6);
  VitisSystem a(g, VitisParams{}, 6);
  VitisSystem b(g, VitisParams{}, 6);
  a.build();
  b.build();
  EXPECT_EQ(a.build_iterations(), b.build_iterations());
  for (PeerId p = 0; p < 200; ++p) {
    EXPECT_EQ(a.overlay().out_degree(p), b.overlay().out_degree(p));
  }
}

TEST(Vitis, TreesCoverSubscribers) {
  const auto g = test_graph(400, 7);
  VitisSystem sys(g, VitisParams{}, 7);
  sys.build();
  const overlay::PubSubSystem ps(sys);
  std::vector<PeerId> publishers{0, 31, 99};
  const auto relays = pubsub::measure_relays(ps, publishers);
  EXPECT_GT(relays.coverage.mean(), 0.95);
}

}  // namespace
}  // namespace sel::baselines
