// Tests for the SEL_CHECK invariant-checker layer (src/check/).
//
// Structure: every validator first passes on a healthy structure, then
// detects a violation seeded through check/corrupt.hpp (the production API
// cannot create one). Off-mode tests pin the contract that SEL_CHECK=off
// adds no counters or validation work on wired call sites, and the
// full-level integration tests run each wired layer end-to-end.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "check/corrupt.hpp"
#include "check/overlay_checks.hpp"
#include "check/protocol_checks.hpp"
#include "check/superstep_checks.hpp"
#include "check/tree_checks.hpp"
#include "graph/profiles.hpp"
#include "lsh/lsh.hpp"
#include "net/network_model.hpp"
#include "obs/metrics.hpp"
#include "overlay/overlay.hpp"
#include "overlay/tree.hpp"
#include "pubsub/engine.hpp"
#include "select/protocol.hpp"
#include "sim/superstep.hpp"

namespace sel::check {
namespace {

using overlay::RingSubstrate;
using overlay::PeerId;
using testing::Corruptor;

RingSubstrate ring_overlay(std::size_t n) {
  RingSubstrate ov(n);
  for (PeerId p = 0; p < n; ++p) {
    ov.join(p, net::OverlayId(static_cast<double>(p) / static_cast<double>(n)));
  }
  ov.rebuild_ring();
  return ov;
}

// -- levels and failure routing ----------------------------------------------

TEST(CheckLevel, ScopedOverrideAndEnabled) {
  const ScopedLevel full(Level::kFull);
  EXPECT_TRUE(enabled(Level::kCheap));
  EXPECT_TRUE(enabled(Level::kFull));
  {
    const ScopedLevel off(Level::kOff);
    EXPECT_FALSE(enabled(Level::kCheap));
    EXPECT_FALSE(enabled(Level::kFull));
  }
  EXPECT_TRUE(enabled(Level::kFull));
}

TEST(CheckEnforce, RoutesViolationsToCapture) {
  const ScopedFailureCapture capture;
  EXPECT_TRUE(enforce(std::nullopt));
  EXPECT_TRUE(capture.empty());
  EXPECT_FALSE(enforce(Violation{"test.invariant", "seeded"}));
  ASSERT_EQ(capture.violations().size(), 1u);
  EXPECT_EQ(capture.violations()[0].invariant, "test.invariant");
}

// -- overlay: ring ------------------------------------------------------------

TEST(CheckRing, HealthyRingPasses) {
  const auto ov = ring_overlay(8);
  EXPECT_FALSE(validate_ring(ov).has_value());
  EXPECT_FALSE(validate_ring_sample(ov).has_value());
}

TEST(CheckRing, DetectsCorruptedSuccessor) {
  auto ov = ring_overlay(8);
  Corruptor::set_successor(ov, 0, 5);
  const auto v = validate_ring(ov);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "overlay.ring.symmetry");
  // The cheap sample sweep sees it too (stride 1 at this size).
  EXPECT_TRUE(validate_ring_sample(ov).has_value());
}

TEST(CheckRing, DetectsUnsortedIds) {
  auto ov = ring_overlay(8);
  // Stale links after a reassignment: mutually consistent walk, ids out of
  // order until rebuild_ring().
  ov.set_id(3, net::OverlayId(0.9));
  const auto v = validate_ring(ov);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "overlay.ring.sorted");
}

// -- overlay: long-link symmetry ----------------------------------------------

TEST(CheckLinks, HealthyLinksPass) {
  auto ov = ring_overlay(8);
  ASSERT_TRUE(ov.add_long_link(1, 4));
  ASSERT_TRUE(ov.add_long_link(2, 6));
  EXPECT_FALSE(validate_peer_links(ov, 1).has_value());
  EXPECT_FALSE(validate_link_symmetry(ov).has_value());
}

TEST(CheckLinks, DetectsAsymmetricLink) {
  auto ov = ring_overlay(8);
  ASSERT_TRUE(ov.add_long_link(1, 4));
  Corruptor::drop_in_link(ov, 1, 4);
  const auto v = validate_peer_links(ov, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "overlay.links.symmetry");
  EXPECT_TRUE(validate_link_symmetry(ov).has_value());
}

// -- protocol: id reassignment, LSH, link budget ------------------------------

TEST(CheckIdStep, DampedStepTowardCentroidPasses) {
  EXPECT_FALSE(validate_id_step(net::OverlayId(0.0), net::OverlayId(0.3),
                                net::OverlayId(0.1), 0.5)
                   .has_value());
}

TEST(CheckIdStep, DetectsMoveAwayFromCentroid) {
  const auto v = validate_id_step(net::OverlayId(0.0), net::OverlayId(0.3),
                                  net::OverlayId(0.9), 0.5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "select.reassign.monotone");
}

TEST(CheckIdStep, DetectsOvershoot) {
  const auto v = validate_id_step(net::OverlayId(0.0), net::OverlayId(0.3),
                                  net::OverlayId(0.28), 0.5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "select.reassign.overshoot");
}

TEST(CheckLsh, HealthyIndexPasses) {
  lsh::LshIndex index(/*dim=*/16, /*buckets=*/4, /*bits_per_hash=*/3,
                      /*seed=*/11);
  for (std::uint32_t p = 0; p < 10; ++p) {
    DynamicBitset bm(16);
    bm.set(p % 16);
    bm.set((3 * p + 1) % 16);
    index.insert(p, bm);
  }
  EXPECT_FALSE(validate_lsh_bucket_bound(index, 4).has_value());
  EXPECT_FALSE(validate_lsh_index(index, 4).has_value());
}

TEST(CheckLsh, DetectsBucketCountMismatch) {
  const lsh::LshIndex index(16, 4, 3, 11);
  const auto v = validate_lsh_bucket_bound(index, 5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "select.lsh.bucket_count");
}

TEST(CheckLinkBudget, DetectsOverBudgetDegree) {
  auto ov = ring_overlay(8);
  ASSERT_TRUE(ov.add_long_link(1, 4));
  ASSERT_TRUE(ov.add_long_link(1, 6));
  EXPECT_FALSE(validate_link_budget(ov, 1, 2).has_value());
  const auto v = validate_link_budget(ov, 1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "select.links.out_budget");
}

// -- tree: acyclicity and exactly-once ----------------------------------------

overlay::DisseminationTree small_tree() {
  overlay::DisseminationTree tree(0);
  const PeerId path1[] = {0, 1, 2};
  const PeerId path2[] = {0, 3};
  tree.add_path(path1);
  tree.add_path(path2);
  return tree;
}

TEST(CheckTree, HealthyTreePasses) {
  const auto tree = small_tree();
  EXPECT_FALSE(validate_tree(tree).has_value());
}

TEST(CheckTree, DetectsDuplicateDeliveryNode) {
  auto tree = small_tree();
  Corruptor::add_duplicate_child(tree, 0, 2);
  const auto v = validate_tree(tree);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "tree.unique_nodes");
}

TEST(CheckTree, DetectsParentChildMismatch) {
  auto tree = small_tree();
  Corruptor::make_cycle(tree, 2, 3);
  EXPECT_TRUE(validate_tree(tree).has_value());
}

TEST(CheckTree, DetectsParentChainCycle) {
  // Chain 0 -> 1 -> 2 -> 3, then reparent 1 under its descendant 3: the
  // parent/children tables stay mutually consistent, so only the bounded
  // walk to the root exposes the cycle.
  overlay::DisseminationTree tree(0);
  const PeerId chain[] = {0, 1, 2, 3};
  tree.add_path(chain);
  Corruptor::reparent(tree, 1, 3);
  const auto v = validate_tree(tree);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "tree.acyclic");
}

TEST(CheckDelivery, CountsWithinBoundsPass) {
  EXPECT_FALSE(validate_delivery_count(/*delivered=*/3, /*max_deliveries=*/5,
                                       /*wanted=*/3, /*completed=*/true)
                   .has_value());
  // Churn revival: more deliveries than were wanted at publish time is fine
  // as long as the tree-membership bound holds.
  EXPECT_FALSE(validate_delivery_count(4, 5, 3, true).has_value());
}

TEST(CheckDelivery, DetectsDuplicateDelivery) {
  const auto v = validate_delivery_count(6, 5, 3, false);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "pubsub.exactly_once");
}

TEST(CheckDelivery, DetectsIncompleteCompletion) {
  const auto v = validate_delivery_count(2, 5, 3, true);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "pubsub.completion");
}

// -- superstep inbox ----------------------------------------------------------

using Envelope = sim::Envelope<int>;

TEST(CheckSuperstep, SortedPartitionedInboxPasses) {
  const std::vector<Envelope> inbox = {
      {0, 0, 0, 1}, {0, 1, 0, 2}, {1, 0, 0, 3}, {2, 2, 1, 4}};
  const std::vector<std::size_t> offsets = {0, 2, 3, 4};
  EXPECT_FALSE(validate_superstep_inbox(inbox, offsets, 3).has_value());
}

TEST(CheckSuperstep, DetectsDuplicateEmission) {
  const std::vector<Envelope> inbox = {{0, 1, 0, 1}, {0, 1, 0, 1}};
  const std::vector<std::size_t> offsets = {0, 2, 2};
  const auto v = validate_superstep_inbox(inbox, offsets, 2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "superstep.inbox.sorted");
}

TEST(CheckSuperstep, DetectsOffsetShapeMismatch) {
  const std::vector<Envelope> inbox = {{0, 0, 0, 1}};
  const std::vector<std::size_t> offsets = {0, 1};  // claims 1 vertex, not 2
  const auto v = validate_superstep_inbox(inbox, offsets, 2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "superstep.offsets.shape");
}

TEST(CheckSuperstep, DetectsMisfiledMessage) {
  const std::vector<Envelope> inbox = {{1, 0, 0, 1}};
  const std::vector<std::size_t> offsets = {0, 1, 1};
  const auto v = validate_superstep_inbox(inbox, offsets, 2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "superstep.offsets.partition");
}

// -- off-mode cost contract ---------------------------------------------------

TEST(CheckOffMode, WiredSitesAddNoCounters) {
  const ScopedLevel off(Level::kOff);
  auto& validations =
      obs::MetricsRegistry::global().counter("check.validations");
  auto& violations = obs::MetricsRegistry::global().counter("check.violations");
  const auto v0 = validations.value();
  const auto f0 = violations.value();

  auto ov = ring_overlay(32);     // wired: rebuild_ring
  ov.add_long_link(1, 4);         // wired: add_long_link
  ov.remove_long_link(1, 4);      // wired: remove_long_link
  EXPECT_EQ(validations.value(), v0);
  EXPECT_EQ(violations.value(), f0);
}

TEST(CheckOffMode, CheapLevelCountsValidations) {
  const ScopedLevel cheap(Level::kCheap);
  auto& validations =
      obs::MetricsRegistry::global().counter("check.validations");
  const auto v0 = validations.value();
  auto ov = ring_overlay(32);
  EXPECT_GT(validations.value(), v0);
}

// -- full-level integration: every wired layer end-to-end ---------------------

TEST(CheckFullIntegration, BuildAndPublishHoldAllInvariants) {
  const ScopedLevel full(Level::kFull);
  const ScopedFailureCapture capture;

  const auto g =
      graph::make_dataset_graph(graph::profile_by_name("facebook"), 200, 7);
  net::NetworkModel net(g.num_nodes(), 7);
  core::SelectSystem sys(g, core::SelectParams{}, 7, &net);
  sys.build();  // protocol rounds: id steps, LSH bounds, link symmetry, ring
  const overlay::PubSubSystem ps(sys);
  pubsub::NotificationEngine engine(ps, net);
  engine.publish(0, 0.0);
  engine.run_all();  // tree validation + delivery accounting

  EXPECT_TRUE(capture.empty())
      << capture.violations().front().invariant << ": "
      << capture.violations().front().detail;
}

struct RingProgram {
  explicit RingProgram(std::size_t n) : sums(n, 0), rounds_left(n, 3) {}
  std::vector<long long> sums;
  std::vector<int> rounds_left;

  void compute(sim::VertexId v, std::span<const Envelope> inbox,
               sim::Mailbox<int>& out) {
    for (const auto& msg : inbox) sums[v] += msg.payload;
    if (rounds_left[v] > 0) {
      --rounds_left[v];
      out.send(static_cast<sim::VertexId>((v + 1) % sums.size()),
               static_cast<int>(v));
    }
  }
};

TEST(CheckFullIntegration, SuperstepRoundsHoldInboxInvariant) {
  const ScopedLevel full(Level::kFull);
  const ScopedFailureCapture capture;

  RingProgram program(16);
  sim::SuperstepEngine<RingProgram, int> engine(16, program);
  engine.run_until_quiescent(100);

  EXPECT_TRUE(capture.empty())
      << capture.violations().front().invariant << ": "
      << capture.violations().front().detail;
}

}  // namespace
}  // namespace sel::check
