#include "common/bitset.hpp"

#include <gtest/gtest.h>

namespace sel {
namespace {

TEST(DynamicBitset, StartsAllClear) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetAndTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
}

TEST(DynamicBitset, ResetClearsBit) {
  DynamicBitset b(10);
  b.set(5);
  EXPECT_TRUE(b.test(5));
  b.reset(5);
  EXPECT_FALSE(b.test(5));
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynamicBitset, AssignSelectsOperation) {
  DynamicBitset b(4);
  b.assign(2, true);
  EXPECT_TRUE(b.test(2));
  b.assign(2, false);
  EXPECT_FALSE(b.test(2));
}

TEST(DynamicBitset, ClearAll) {
  DynamicBitset b(130);
  for (std::size_t i = 0; i < 130; i += 3) b.set(i);
  EXPECT_GT(b.count(), 0u);
  b.clear_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynamicBitset, HammingDistance) {
  DynamicBitset a(65);
  DynamicBitset b(65);
  a.set(0);
  a.set(64);
  b.set(0);
  b.set(10);
  EXPECT_EQ(a.hamming_distance(b), 2u);  // 64 and 10 differ
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(DynamicBitset, IntersectionAndUnionCounts) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(3);
  b.set(4);
  EXPECT_EQ(a.intersection_count(b), 1u);
  EXPECT_EQ(a.union_count(b), 4u);
}

TEST(DynamicBitset, JaccardSimilarity) {
  DynamicBitset a(8);
  DynamicBitset b(8);
  a.set(0);
  a.set(1);
  b.set(1);
  b.set(2);
  EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0 / 3.0);
}

TEST(DynamicBitset, JaccardOfEmptySetsIsOne) {
  DynamicBitset a(8);
  DynamicBitset b(8);
  EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0);
}

TEST(DynamicBitset, BitwiseOps) {
  DynamicBitset a(6);
  DynamicBitset b(6);
  a.set(0);
  a.set(1);
  b.set(1);
  b.set(2);
  auto c = a;
  c |= b;
  EXPECT_EQ(c.count(), 3u);
  auto d = a;
  d &= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
  auto e = a;
  e ^= b;
  EXPECT_EQ(e.count(), 2u);
  EXPECT_TRUE(e.test(0));
  EXPECT_TRUE(e.test(2));
}

TEST(DynamicBitset, EqualityComparesContent) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, ResizeGrowsWithClearBits) {
  DynamicBitset b(4);
  b.set(3);
  b.resize(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_TRUE(b.test(3));
  EXPECT_FALSE(b.test(100));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, ResizeShrinkTrimsTrailingBits) {
  DynamicBitset b(128);
  b.set(100);
  b.set(3);
  b.resize(64);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(b.count(), 1u);  // bit 100 gone
  b.resize(128);
  EXPECT_FALSE(b.test(100));  // does not resurrect
}

TEST(DynamicBitset, ToStringRendering) {
  DynamicBitset b(5);
  b.set(0);
  b.set(4);
  EXPECT_EQ(b.to_string(), "10001");
}

TEST(DynamicBitset, EmptyBitset) {
  DynamicBitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.to_string(), "");
}

// Property sweep over sizes including word boundaries.
class BitsetSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizeSweep, CountMatchesSetBits) {
  const std::size_t n = GetParam();
  DynamicBitset b(n);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; i += 7) {
    b.set(i);
    ++expected;
  }
  EXPECT_EQ(b.count(), expected);
}

TEST_P(BitsetSizeSweep, HammingToSelfIsZeroAndToComplementIsN) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  DynamicBitset a(n);
  for (std::size_t i = 0; i < n; i += 2) a.set(i);
  DynamicBitset b(n);
  for (std::size_t i = 0; i < n; ++i) b.assign(i, !a.test(i));
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_EQ(a.hamming_distance(b), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizeSweep,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           1000));

}  // namespace
}  // namespace sel
