#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/table.hpp"

namespace sel {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/select_csv_test.csv";
  {
    CsvWriter w(path, {"n", "hops"});
    ASSERT_TRUE(w.ok());
    w.row({100.0, 2.5});
    w.row({200.0, 3.0});
  }
  const std::string content = read_file(path);
  EXPECT_EQ(content, "n,hops\n100,2.5\n200,3\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, StringRows) {
  const std::string path = ::testing::TempDir() + "/select_csv_str.csv";
  {
    CsvWriter w(path, {"name", "value"});
    w.row(std::vector<std::string>{"a,b", "1"});
  }
  EXPECT_EQ(read_file(path), "name,value\n\"a,b\",1\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnopenableFileDegradesGracefully) {
  CsvWriter w("/nonexistent_dir_xyz/file.csv", {"a"});
  EXPECT_FALSE(w.ok());
  w.row({1.0});  // must not crash
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"system", "hops"});
  t.add_row({"select", "1.5"});
  t.add_row({"symphony", "3.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("select"), std::string::npos);
  EXPECT_NE(out.find("symphony"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, NumericRowFormatsPrecision) {
  TablePrinter t({"label", "a", "b"});
  t.add_row_numeric("x", {1.23456, 2.0}, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(Fmt, FormatsWithPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Scaled, AppliesScaleAndFloor) {
  ::setenv("SELECT_BENCH_SCALE", "0.5", 1);
  EXPECT_EQ(scaled(1000, 32), 500u);
  EXPECT_EQ(scaled(10, 32), 32u);  // floor
  ::setenv("SELECT_BENCH_SCALE", "2", 1);
  EXPECT_EQ(scaled(1000, 32), 2000u);
  ::unsetenv("SELECT_BENCH_SCALE");
  EXPECT_EQ(scaled(1000, 32), 1000u);
}

TEST(TrialCount, RespectsEnvAndFallback) {
  ::unsetenv("SELECT_TRIALS");
  EXPECT_EQ(trial_count(5), 5u);
  ::setenv("SELECT_TRIALS", "9", 1);
  EXPECT_EQ(trial_count(5), 9u);
  ::setenv("SELECT_TRIALS", "-1", 1);
  EXPECT_EQ(trial_count(5), 5u);
  ::unsetenv("SELECT_TRIALS");
}

}  // namespace
}  // namespace sel
