#include "common/env.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

namespace sel {
namespace {

bool knob_registered(const std::string& name) {
  const auto& knobs = env_knobs();
  return std::any_of(knobs.begin(), knobs.end(),
                     [&name](const EnvKnob& k) { return name == k.name; });
}

bool flagged_unknown(const std::string& name) {
  const auto unknown = unknown_sel_env_vars();
  return std::find(unknown.begin(), unknown.end(), name) != unknown.end();
}

TEST(EnvKnobs, RegistryCoversTheRuntimeSurface) {
  for (const char* name :
       {"SEL_OBS", "SEL_CHECK", "SEL_TRACE_SAMPLE", "SEL_FAULT", "SEL_RETRY",
        "SEL_RETRY_MAX", "SEL_RETRY_TIMEOUT_S", "SEL_RETRY_BACKOFF",
        "SEL_RETRY_JITTER", "SELECT_BENCH_SCALE", "SELECT_TRIALS"}) {
    EXPECT_TRUE(knob_registered(name)) << name << " missing from env_knobs()";
  }
  for (const auto& k : env_knobs()) {
    EXPECT_NE(k.summary, nullptr);
    EXPECT_GT(std::string(k.summary).size(), 0u) << k.name;
  }
}

TEST(EnvKnobs, UnknownSelVariableIsReported) {
  ASSERT_EQ(setenv("SEL_FUALT", "drop=0.5", 1), 0);  // the classic typo
  EXPECT_TRUE(flagged_unknown("SEL_FUALT"));
  ASSERT_EQ(unsetenv("SEL_FUALT"), 0);
  EXPECT_FALSE(flagged_unknown("SEL_FUALT"));
}

TEST(EnvKnobs, RegisteredVariablesAreNotFlagged) {
  ASSERT_EQ(setenv("SEL_FAULT", "drop=0.01", 1), 0);
  EXPECT_FALSE(flagged_unknown("SEL_FAULT"));
  ASSERT_EQ(unsetenv("SEL_FAULT"), 0);
}

TEST(EnvKnobs, SelectPrefixIsOutsideTheScan) {
  // SELECT_* is a distinct prefix (4th char differs); harness-private
  // variables there must not trip the warning.
  ASSERT_EQ(setenv("SELECT_PRIVATE_TEST_ONLY", "1", 1), 0);
  EXPECT_FALSE(flagged_unknown("SELECT_PRIVATE_TEST_ONLY"));
  ASSERT_EQ(unsetenv("SELECT_PRIVATE_TEST_ONLY"), 0);
}

TEST(EnvKnobs, UnknownListIsSortedAndDuplicateFree) {
  ASSERT_EQ(setenv("SEL_ZZZ_TEST", "1", 1), 0);
  ASSERT_EQ(setenv("SEL_AAA_TEST", "1", 1), 0);
  const auto unknown = unknown_sel_env_vars();
  EXPECT_TRUE(std::is_sorted(unknown.begin(), unknown.end()));
  EXPECT_EQ(std::adjacent_find(unknown.begin(), unknown.end()),
            unknown.end());
  EXPECT_TRUE(flagged_unknown("SEL_AAA_TEST"));
  EXPECT_TRUE(flagged_unknown("SEL_ZZZ_TEST"));
  ASSERT_EQ(unsetenv("SEL_ZZZ_TEST"), 0);
  ASSERT_EQ(unsetenv("SEL_AAA_TEST"), 0);
}

TEST(EnvKnobs, WarnOnceIsIdempotent) {
  warn_unknown_sel_env_once();
  warn_unknown_sel_env_once();  // second call must be a cheap no-op
}

// -- typed accessors ----------------------------------------------------------

TEST(EnvTyped, IntFallbackParseAndRange) {
  ::unsetenv("SELECT_TEST_INT_XYZ");
  EXPECT_EQ(env::get_int("SELECT_TEST_INT_XYZ", 7), 7);
  ::setenv("SELECT_TEST_INT_XYZ", "42", 1);
  EXPECT_EQ(env::get_int("SELECT_TEST_INT_XYZ", 7), 42);
  // Unparsable keeps the historical silent-fallback behaviour.
  ::setenv("SELECT_TEST_INT_XYZ", "not_a_number", 1);
  EXPECT_EQ(env::get_int("SELECT_TEST_INT_XYZ", 7), 7);
  // Out of range: warn + fallback, never clamp.
  ::setenv("SELECT_TEST_INT_XYZ", "500", 1);
  EXPECT_EQ(env::get_int("SELECT_TEST_INT_XYZ", 7, 0, 100), 7);
  ::setenv("SELECT_TEST_INT_XYZ", "-3", 1);
  EXPECT_EQ(env::get_int("SELECT_TEST_INT_XYZ", 7, 0, 100), 7);
  ::setenv("SELECT_TEST_INT_XYZ", "100", 1);
  EXPECT_EQ(env::get_int("SELECT_TEST_INT_XYZ", 7, 0, 100), 100);  // inclusive
  ::unsetenv("SELECT_TEST_INT_XYZ");
}

TEST(EnvTyped, DoubleFallbackParseAndRange) {
  ::unsetenv("SELECT_TEST_DBL_XYZ");
  EXPECT_DOUBLE_EQ(env::get_double("SELECT_TEST_DBL_XYZ", 1.5), 1.5);
  ::setenv("SELECT_TEST_DBL_XYZ", "2.5", 1);
  EXPECT_DOUBLE_EQ(env::get_double("SELECT_TEST_DBL_XYZ", 1.5), 2.5);
  ::setenv("SELECT_TEST_DBL_XYZ", "garbage", 1);
  EXPECT_DOUBLE_EQ(env::get_double("SELECT_TEST_DBL_XYZ", 1.5), 1.5);
  ::setenv("SELECT_TEST_DBL_XYZ", "2.0", 1);
  EXPECT_DOUBLE_EQ(env::get_double("SELECT_TEST_DBL_XYZ", 1.5, 0.0, 1.0),
                   1.5);  // out of range -> fallback
  ::unsetenv("SELECT_TEST_DBL_XYZ");
}

TEST(EnvTyped, BoolRecognizesBothAliasSets) {
  ::unsetenv("SELECT_TEST_BOOL_XYZ");
  EXPECT_TRUE(env::get_bool("SELECT_TEST_BOOL_XYZ", true));
  EXPECT_FALSE(env::get_bool("SELECT_TEST_BOOL_XYZ", false));
  for (const char* v : {"0", "off", "false", "no", "OFF", "No"}) {
    ::setenv("SELECT_TEST_BOOL_XYZ", v, 1);
    EXPECT_FALSE(env::get_bool("SELECT_TEST_BOOL_XYZ", true)) << v;
  }
  for (const char* v : {"1", "on", "true", "yes", "ON", "True"}) {
    ::setenv("SELECT_TEST_BOOL_XYZ", v, 1);
    EXPECT_TRUE(env::get_bool("SELECT_TEST_BOOL_XYZ", false)) << v;
  }
  ::setenv("SELECT_TEST_BOOL_XYZ", "maybe", 1);
  EXPECT_TRUE(env::get_bool("SELECT_TEST_BOOL_XYZ", true));
  EXPECT_FALSE(env::get_bool("SELECT_TEST_BOOL_XYZ", false));
  ::unsetenv("SELECT_TEST_BOOL_XYZ");
}

TEST(EnvTyped, StringReturnsRawValue) {
  ::unsetenv("SELECT_TEST_STR_XYZ");
  EXPECT_EQ(env::get_string("SELECT_TEST_STR_XYZ", "x"), "x");
  ::setenv("SELECT_TEST_STR_XYZ", "hello", 1);
  EXPECT_EQ(env::get_string("SELECT_TEST_STR_XYZ", "x"), "hello");
  // Empty counts as unset (consistent with every other accessor).
  ::setenv("SELECT_TEST_STR_XYZ", "", 1);
  EXPECT_EQ(env::get_string("SELECT_TEST_STR_XYZ", "x"), "x");
  ::unsetenv("SELECT_TEST_STR_XYZ");
}

TEST(EnvTyped, EnumMatchesPipeSeparatedAliases) {
  ::unsetenv("SELECT_TEST_ENUM_XYZ");
  const auto levels = {"off|0|false", "cheap|1", "full|2"};
  EXPECT_EQ(env::get_enum("SELECT_TEST_ENUM_XYZ", levels, 1), 1u);
  ::setenv("SELECT_TEST_ENUM_XYZ", "full", 1);
  EXPECT_EQ(env::get_enum("SELECT_TEST_ENUM_XYZ", levels, 1), 2u);
  ::setenv("SELECT_TEST_ENUM_XYZ", "0", 1);  // alias of "off"
  EXPECT_EQ(env::get_enum("SELECT_TEST_ENUM_XYZ", levels, 1), 0u);
  ::setenv("SELECT_TEST_ENUM_XYZ", "FULL", 1);  // case-insensitive
  EXPECT_EQ(env::get_enum("SELECT_TEST_ENUM_XYZ", levels, 1), 2u);
  ::setenv("SELECT_TEST_ENUM_XYZ", "bogus", 1);
  EXPECT_EQ(env::get_enum("SELECT_TEST_ENUM_XYZ", levels, 1), 1u);
  ::unsetenv("SELECT_TEST_ENUM_XYZ");
}

}  // namespace
}  // namespace sel
