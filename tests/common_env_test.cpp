#include "common/env.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

namespace sel {
namespace {

bool knob_registered(const std::string& name) {
  const auto& knobs = env_knobs();
  return std::any_of(knobs.begin(), knobs.end(),
                     [&name](const EnvKnob& k) { return name == k.name; });
}

bool flagged_unknown(const std::string& name) {
  const auto unknown = unknown_sel_env_vars();
  return std::find(unknown.begin(), unknown.end(), name) != unknown.end();
}

TEST(EnvKnobs, RegistryCoversTheRuntimeSurface) {
  for (const char* name :
       {"SEL_OBS", "SEL_CHECK", "SEL_TRACE_SAMPLE", "SEL_FAULT", "SEL_RETRY",
        "SEL_RETRY_MAX", "SEL_RETRY_TIMEOUT_S", "SEL_RETRY_BACKOFF",
        "SEL_RETRY_JITTER", "SELECT_BENCH_SCALE", "SELECT_TRIALS"}) {
    EXPECT_TRUE(knob_registered(name)) << name << " missing from env_knobs()";
  }
  for (const auto& k : env_knobs()) {
    EXPECT_NE(k.summary, nullptr);
    EXPECT_GT(std::string(k.summary).size(), 0u) << k.name;
  }
}

TEST(EnvKnobs, UnknownSelVariableIsReported) {
  ASSERT_EQ(setenv("SEL_FUALT", "drop=0.5", 1), 0);  // the classic typo
  EXPECT_TRUE(flagged_unknown("SEL_FUALT"));
  ASSERT_EQ(unsetenv("SEL_FUALT"), 0);
  EXPECT_FALSE(flagged_unknown("SEL_FUALT"));
}

TEST(EnvKnobs, RegisteredVariablesAreNotFlagged) {
  ASSERT_EQ(setenv("SEL_FAULT", "drop=0.01", 1), 0);
  EXPECT_FALSE(flagged_unknown("SEL_FAULT"));
  ASSERT_EQ(unsetenv("SEL_FAULT"), 0);
}

TEST(EnvKnobs, SelectPrefixIsOutsideTheScan) {
  // SELECT_* is a distinct prefix (4th char differs); harness-private
  // variables there must not trip the warning.
  ASSERT_EQ(setenv("SELECT_PRIVATE_TEST_ONLY", "1", 1), 0);
  EXPECT_FALSE(flagged_unknown("SELECT_PRIVATE_TEST_ONLY"));
  ASSERT_EQ(unsetenv("SELECT_PRIVATE_TEST_ONLY"), 0);
}

TEST(EnvKnobs, UnknownListIsSortedAndDuplicateFree) {
  ASSERT_EQ(setenv("SEL_ZZZ_TEST", "1", 1), 0);
  ASSERT_EQ(setenv("SEL_AAA_TEST", "1", 1), 0);
  const auto unknown = unknown_sel_env_vars();
  EXPECT_TRUE(std::is_sorted(unknown.begin(), unknown.end()));
  EXPECT_EQ(std::adjacent_find(unknown.begin(), unknown.end()),
            unknown.end());
  EXPECT_TRUE(flagged_unknown("SEL_AAA_TEST"));
  EXPECT_TRUE(flagged_unknown("SEL_ZZZ_TEST"));
  ASSERT_EQ(unsetenv("SEL_ZZZ_TEST"), 0);
  ASSERT_EQ(unsetenv("SEL_AAA_TEST"), 0);
}

TEST(EnvKnobs, WarnOnceIsIdempotent) {
  warn_unknown_sel_env_once();
  warn_unknown_sel_env_once();  // second call must be a cheap no-op
}

}  // namespace
}  // namespace sel
