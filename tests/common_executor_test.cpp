#include "common/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sel {
namespace {

TEST(Executor, DefaultIsInlineWithConcurrencyOne) {
  const Executor exec;
  EXPECT_FALSE(exec.is_pooled());
  EXPECT_EQ(exec.concurrency(), 1u);
}

TEST(Executor, InlineRunsWholeRangeAsOneChunk) {
  const Executor exec = Executor::inline_exec();
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  exec.for_chunks(3, 40, [&chunks](std::size_t lo, std::size_t hi) {
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  const std::pair<std::size_t, std::size_t> whole{3, 40};
  EXPECT_EQ(chunks[0], whole);
}

TEST(Executor, EmptyRangeNeverInvokesBody) {
  for (const Executor& exec : {Executor(), Executor::pooled(2u)}) {
    bool called = false;
    exec.for_chunks(5, 5, [&called](std::size_t, std::size_t) {
      called = true;
    });
    EXPECT_FALSE(called);
  }
}

TEST(Executor, PooledReportsPoolWidth) {
  const Executor exec = Executor::pooled(3u);
  EXPECT_TRUE(exec.is_pooled());
  EXPECT_EQ(exec.concurrency(), 3u);
}

TEST(Executor, PooledChunksCoverRangeExactlyOnce) {
  const Executor exec = Executor::pooled(4u);
  std::vector<std::atomic<int>> hits(503);
  exec.for_chunks(0, hits.size(), [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, BorrowedPoolIsUsed) {
  ThreadPool pool(2);
  const Executor exec = Executor::pooled(pool);
  EXPECT_TRUE(exec.is_pooled());
  EXPECT_EQ(exec.concurrency(), pool.size());
}

TEST(Executor, CopiesShareTheOwnedPool) {
  const Executor original = Executor::pooled(2u);
  const Executor copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.is_pooled());
  EXPECT_EQ(copy.concurrency(), original.concurrency());
  std::atomic<int> ran{0};
  copy.for_chunks(0, 10, [&ran](std::size_t lo, std::size_t hi) {
    ran.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(Executor, ForEachVisitsEveryIndex) {
  for (const Executor& exec : {Executor(), Executor::pooled(4u)}) {
    std::vector<std::atomic<int>> seen(100);
    exec.for_each(0, seen.size(), [&seen](std::size_t i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(Executor, GlobalPoolExecutorTargetsTheSingleton) {
  const Executor exec = Executor::global_pool();
  EXPECT_TRUE(exec.is_pooled());
  EXPECT_EQ(exec.concurrency(), ThreadPool::global().size());
}

TEST(Executor, InlineExceptionPropagates) {
  const Executor exec;
  EXPECT_THROW(
      exec.for_chunks(0, 5,
                      [](std::size_t, std::size_t) {
                        throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(Executor, PooledExceptionPropagates) {
  const Executor exec = Executor::pooled(2u);
  EXPECT_THROW(
      exec.for_chunks(0, 100,
                      [](std::size_t lo, std::size_t) {
                        if (lo == 0) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

}  // namespace
}  // namespace sel
