#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sel {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);
  h.add(0.15);
  h.add(0.95);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0, 2.5);
  h.add(1.5, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 3.0);
}

TEST(Histogram, FractionNormalizes) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.2);
  h.add(0.7);
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.6);
  h.add(0.6);
  h.add(0.1);
  EXPECT_EQ(h.mode_bin(), 2u);
}

TEST(Histogram, ClumpinessZeroForUniform) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 4; ++i) h.add(0.125 + 0.25 * i);
  EXPECT_NEAR(h.clumpiness(), 0.0, 1e-12);
}

TEST(Histogram, ClumpinessHighForSpike) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.55);
  EXPECT_GT(h.clumpiness(), 2.0);
}

TEST(Histogram, EntropyOfUniformIsLogBins) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 8; ++i) h.add((i + 0.5) / 8.0);
  EXPECT_NEAR(h.entropy_bits(), 3.0, 1e-12);
}

TEST(Histogram, EntropyOfSpikeIsZero) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 50; ++i) h.add(0.3);
  EXPECT_NEAR(h.entropy_bits(), 0.0, 1e-12);
}

TEST(Histogram, RenderContainsOneLinePerBin) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.5);
  const std::string out = h.render();
  std::size_t lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
}

}  // namespace
}  // namespace sel
