#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace sel {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

TEST(SplitMix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) outputs.insert(splitmix64(i));
  EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(SplitMix64, SpreadsBits) {
  // Consecutive inputs should not produce correlated high bits.
  std::size_t high_set = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (splitmix64(i) >> 63) ++high_set;
  }
  EXPECT_GT(high_set, 400u);
  EXPECT_LT(high_set, 600u);
}

TEST(DeriveSeed, IndependentStreamsDiffer) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(37);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(41);
  std::vector<double> xs;
  const int n = 50'001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(1.0), 0.1);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(43);
  for (int i = 0; i < 10'000; ++i) {
    const auto z = rng.zipf(100, 1.2);
    EXPECT_GE(z, 1u);
    EXPECT_LE(z, 100u);
  }
}

TEST(Rng, ZipfIsHeavyTailed) {
  // Rank 1 should be drawn far more often than rank 50.
  Rng rng(47);
  int rank1 = 0;
  int rank50 = 0;
  for (int i = 0; i < 100'000; ++i) {
    const auto z = rng.zipf(100, 1.0);
    if (z == 1) ++rank1;
    if (z == 50) ++rank50;
  }
  EXPECT_GT(rank1, rank50 * 10);
}

TEST(Rng, ZipfDegenerateN1) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 1.0), 1u);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng root(59);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Shuffle, ProducesPermutation) {
  Rng rng(61);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Shuffle, EmptyAndSingleton) {
  Rng rng(67);
  std::vector<int> empty;
  shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  shuffle(one, rng);
  EXPECT_EQ(one, std::vector<int>{42});
}

// Property sweep: statistical sanity for many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, BelowNeverExceeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t n = 1 + rng.below(1000);
    EXPECT_LT(rng.below(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL, 0x123456789abcdefULL));

}  // namespace
}  // namespace sel
